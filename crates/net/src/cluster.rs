//! A threaded, wall-clock cluster runtime with link-fault injection and
//! round-latency observability.
//!
//! Runs the same [`meba_sim::Actor`] state machines as the lockstep
//! simulator, but with one OS thread per process, bounded crossbeam
//! channels as authenticated links, and real time: round `r` spans
//! `[start + r·δ, start + (r+1)·δ)` and a message sent during round `r` is
//! processed by its recipient in round `r + 1`.
//!
//! Since the engine refactor this module is a thin instantiation of
//! [`meba_engine`]: the per-process round loop, crash-restart fate
//! execution, stop coordination, overrun escalation, and all accounting
//! live in [`meba_engine::run_threaded_cluster`], driven here over a
//! [`meba_engine::ChannelTransport`] mesh. The configuration and report
//! types are re-exported from the engine crate, so existing callers are
//! unaffected.
//!
//! Beyond the happy path, the runtime models the network the paper's
//! synchrony assumption abstracts away:
//!
//! * **Link faults** — a per-sender [`meba_sim::faults::LinkPolicy`]
//!   ([`ClusterConfig::link_policy`]) can drop, delay, or partition
//!   directed links; the protocols must ride out the loss (or the caller
//!   asserts they don't).
//! * **Observability** — every thread records its per-round processing
//!   latency into [`Metrics::round_latency`](meba_sim::Metrics) and every
//!   directed link's sent/delivered/dropped/delayed counts into
//!   [`Metrics::per_link`](meba_sim::Metrics).
//! * **Backpressure** — links are bounded
//!   ([`ClusterConfig::channel_capacity`]); a full link blocks the sender
//!   (counted in [`ClusterReport::backpressure`]) instead of ballooning
//!   memory.
//! * **Graceful degradation** — when processing overruns δ for
//!   [`ClusterConfig::overrun_window`] consecutive rounds, the coordinator
//!   either stretches δ ([`OverrunAction::Escalate`]) or stops the run
//!   with a structured [`ClusterDiagnostic`] ([`OverrunAction::Abort`]).
//!
//! # Coordination
//!
//! Thread 0 doubles as the coordinator: after finishing round `r` it
//! publishes exactly one decision — stop after `r` (recording whether the
//! run completed) or approve round `r + 1`. Worker threads never execute
//! a round that was not approved, so every thread executes the same set
//! of rounds and [`ClusterReport::completed`] is the coordinator's own
//! recorded verdict rather than a racy post-join recomputation.

use meba_crypto::ProcessId;
use meba_engine::{channel_mesh, LinkPolicySendAdapter, SendPolicy};
use meba_sim::{AnyActor, Message};

pub use meba_engine::{
    AbortReason, ActorRebuilder, AdvanceCause, ClusterConfig, ClusterDiagnostic, ClusterReport,
    Escalation, LinkPolicyFactory, OverrunAction, ProcessFate, ProcessFateFactory, RebuiltActor,
    RoundDriverConfig,
};

/// Runs `actors` as a real-time cluster until every correct actor is done,
/// the round budget is exhausted, or the overrun policy stops the run.
///
/// # Panics
///
/// Panics if `actors` is empty or ids are not `p0..p(n-1)` in order.
///
/// # Examples
///
/// See the `threaded_cluster` and `fault_injection` examples at the
/// workspace root.
pub fn run_cluster<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    config: ClusterConfig,
) -> ClusterReport<M> {
    run_cluster_with_recovery(actors, None, config)
}

/// [`run_cluster`] with a crash-recovery path: processes whose
/// [`ProcessFate`] is [`ProcessFate::CrashRestart`] lose their in-memory
/// state at the crash round, stay dead (inbound traffic discarded, no
/// sends) for the configured window, and are then rebuilt by `rebuilder`
/// — typically by replaying a durable `meba-journal` write-ahead log —
/// and fast-forwarded back to the cluster's current round with empty
/// inboxes, as if every message during the outage was dropped. Recovery
/// counters land in [`Metrics::recovery`](meba_sim::Metrics).
pub fn run_cluster_with_recovery<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    config: ClusterConfig,
) -> ClusterReport<M> {
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    let transports = channel_mesh::<M>(n, config.channel_capacity);
    let policies: Vec<Option<Box<dyn SendPolicy>>> = (0..n)
        .map(|i| {
            config.link_policy.as_ref().map(|f| {
                Box::new(LinkPolicySendAdapter(f(ProcessId(i as u32)))) as Box<dyn SendPolicy>
            })
        })
        .collect();
    meba_engine::run_threaded_cluster(actors, transports, policies, rebuilder, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::ProcessId;
    use meba_sim::faults::{Link, LinkFate, LinkPolicy};
    use meba_sim::{Actor, IdleActor, Message, Metrics, Round, RoundCtx};
    use std::sync::Arc;

    #[derive(Clone, Debug)]
    struct Ping(#[allow(dead_code)] u64);
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Gossip {
        id: ProcessId,
        heard: usize,
        target: usize,
    }
    impl Actor for Gossip {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            if ctx.round() == Round(0) {
                ctx.broadcast(Ping(self.id.0 as u64));
            }
            self.heard += ctx.inbox().len();
        }
        fn done(&self) -> bool {
            self.heard >= self.target
        }
    }

    fn gossips(targets: &[usize]) -> Vec<Box<dyn AnyActor<Msg = Ping>>> {
        targets
            .iter()
            .enumerate()
            .map(|(i, &t)| Box::new(Gossip { id: ProcessId(i as u32), heard: 0, target: t }) as _)
            .collect()
    }

    #[test]
    fn cluster_delivers_broadcasts_next_round() {
        let n = 4;
        let report = run_cluster(gossips(&[n; 4]), ClusterConfig::default());
        assert!(report.completed);
        assert!(report.aborted.is_none());
        for a in &report.actors {
            let g: &Gossip = a.as_any().downcast_ref().unwrap();
            assert_eq!(g.heard, n, "every broadcast (incl. own) delivered once");
        }
        // 4 broadcasts × 3 remote copies.
        assert_eq!(report.metrics.correct.words, 12);
    }

    #[test]
    fn event_driven_cluster_delivers_and_records_advance_causes() {
        // Same gossip scenario under the quorum-or-timeout driver: the
        // decisions and word totals must match lockstep, and every
        // advance must have a recorded cause.
        let n = 4;
        let cfg =
            ClusterConfig { driver: RoundDriverConfig::quorum_or_timeout(), ..Default::default() };
        let report = run_cluster(gossips(&[n; 4]), cfg);
        assert!(report.completed);
        assert!(report.aborted.is_none());
        for a in &report.actors {
            let g: &Gossip = a.as_any().downcast_ref().unwrap();
            assert_eq!(g.heard, n, "every broadcast (incl. own) delivered once");
        }
        assert_eq!(report.metrics.correct.words, 12);
        assert!(
            report.metrics.advance.total() > 0,
            "event-driven rounds record their advance cause"
        );
    }

    #[test]
    fn event_driven_cluster_times_out_silent_rounds() {
        // Readiness counts the local process plus buffered senders, so
        // with two silent peers a full-inbox quorum of 3 can never
        // assemble (self + the one gossiping sender = 2): every advance
        // must be a local timeout, and the cluster still terminates on
        // its own clocks.
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Gossip { id: ProcessId(0), heard: 0, target: 3 }),
            Box::new(IdleActor::new(ProcessId(1))),
            Box::new(IdleActor::new(ProcessId(2))),
        ];
        let cfg = ClusterConfig {
            driver: RoundDriverConfig::QuorumOrTimeout { quorum: Some(3), timeout_factor: 1.0 },
            max_rounds: 8,
            ..Default::default()
        };
        let report = run_cluster(actors, cfg);
        assert_eq!(
            report.metrics.advance.quorum, 0,
            "two silent peers can never complete a full inbox of 3"
        );
        assert!(report.metrics.advance.timeout > 0);
    }

    #[test]
    fn cluster_respects_corrupt_accounting() {
        let cfg = ClusterConfig { corrupt: vec![ProcessId(1)], ..Default::default() };
        let report = run_cluster(gossips(&[3; 3]), cfg);
        assert_eq!(report.metrics.correct.words, 4); // 2 correct × 2 remote
        assert_eq!(report.metrics.byzantine.words, 2);
    }

    #[test]
    fn cluster_stops_at_round_budget() {
        let cfg = ClusterConfig { max_rounds: 5, ..Default::default() };
        let report = run_cluster(gossips(&[99]), cfg);
        assert!(!report.completed);
        assert_eq!(report.rounds, 5);
    }

    #[test]
    fn idle_actors_count_as_done() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Gossip { id: ProcessId(0), heard: 0, target: 1 }),
            Box::new(IdleActor::new(ProcessId(1))),
        ];
        let report = run_cluster(actors, ClusterConfig::default());
        assert!(report.completed);
    }

    #[test]
    fn latency_histogram_and_link_counters_are_recorded() {
        let report = run_cluster(gossips(&[2; 2]), ClusterConfig::default());
        assert!(report.completed);
        // Two threads × ≥ 2 rounds: at least 4 latency samples.
        assert!(report.metrics.round_latency.count() >= 4);
        // Each process broadcast once; one message per directed link.
        let l01 = report.metrics.link(ProcessId(0), ProcessId(1));
        let l10 = report.metrics.link(ProcessId(1), ProcessId(0));
        assert_eq!((l01.sent, l01.delivered, l01.dropped), (1, 1, 0));
        assert_eq!((l10.sent, l10.delivered, l10.dropped), (1, 1, 0));
        // Self-links are never recorded.
        assert!(report
            .metrics
            .per_link
            .keys()
            .all(|k| { k != &Metrics::link_key(ProcessId(0), ProcessId(0)) }));
    }

    #[test]
    fn dropped_links_are_counted_and_not_delivered() {
        use meba_sim::faults::ReliableLinks;
        // p1's outbound links all drop; inbound links to p1 are fine.
        let factory: LinkPolicyFactory = Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                Box::new(|_l: Link, _r: u64| LinkFate::Drop) as Box<dyn LinkPolicy>
            } else {
                Box::new(ReliableLinks)
            }
        });
        // p0/p2 can only ever hear themselves + each other; p1 hears all 3.
        let cfg = ClusterConfig { link_policy: Some(factory), ..Default::default() };
        let report = run_cluster(gossips(&[2, 3, 2]), cfg);
        assert!(report.completed, "gossip must finish without p1's traffic");
        let l10 = report.metrics.link(ProcessId(1), ProcessId(0));
        assert_eq!((l10.sent, l10.dropped, l10.delivered), (1, 1, 0));
        let l01 = report.metrics.link(ProcessId(0), ProcessId(1));
        assert_eq!((l01.sent, l01.dropped, l01.delivered), (1, 0, 1));
        assert_eq!(report.metrics.total_dropped(), 2);
        // Dropped messages still count as sent words (3 × 2 remote).
        assert_eq!(report.metrics.correct.words, 6);
    }

    #[test]
    fn delayed_links_arrive_late_and_are_counted() {
        let factory: LinkPolicyFactory = Arc::new(|_me: ProcessId| {
            Box::new(|l: Link, _r: u64| {
                if l.from == ProcessId(0) {
                    LinkFate::DelayRounds(2)
                } else {
                    LinkFate::Deliver
                }
            }) as Box<dyn LinkPolicy>
        });
        let cfg = ClusterConfig { link_policy: Some(factory), ..Default::default() };
        let report = run_cluster(gossips(&[2, 2]), cfg);
        assert!(report.completed);
        let l01 = report.metrics.link(ProcessId(0), ProcessId(1));
        assert_eq!((l01.delayed, l01.delivered), (1, 1), "delayed but eventually delivered");
        // The delayed message surfaces ≥ 2 rounds late, so the run lasts
        // strictly longer than the fault-free 2-round gossip.
        assert!(report.rounds > 2, "rounds = {}", report.rounds);
    }

    #[test]
    fn report_debug_is_informative() {
        let report = run_cluster(gossips(&[1]), ClusterConfig::default());
        let s = format!("{report:?}");
        assert!(s.contains("completed"));
        assert!(s.contains("backpressure"));
    }

    /// Counts rounds; broadcasts a heartbeat each round until done.
    struct Ticker {
        id: ProcessId,
        rounds: u64,
        target: u64,
        rejoined_at: Option<u64>,
    }
    impl Actor for Ticker {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            self.rounds += 1;
            if !self.done() {
                ctx.broadcast(Ping(self.rounds));
            }
        }
        fn done(&self) -> bool {
            self.rounds >= self.target
        }
        fn on_rejoin(&mut self, round: meba_sim::Round) {
            self.rejoined_at = Some(round.as_u64());
        }
    }

    #[test]
    fn crash_restart_rebuilds_and_completes() {
        let n = 3;
        let target = 8u64;
        let mk = move |i: u32| -> Box<dyn AnyActor<Msg = Ping>> {
            Box::new(Ticker { id: ProcessId(i), rounds: 0, target, rejoined_at: None })
        };
        let fate: ProcessFateFactory = Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                ProcessFate::CrashRestart { at_round: 2, rejoin_after: 2 }
            } else {
                ProcessFate::Run
            }
        });
        // The rebuilder returns a fresh Ticker: the fast-forward then
        // replays rounds 0..rejoin with empty inboxes, so its round
        // counter catches back up with the cluster clock.
        let rebuilder: ActorRebuilder<Ping> = Arc::new(move |me: ProcessId| RebuiltActor {
            actor: mk(me.0),
            resume_step: 0,
            replayed_records: 5,
            journal_fsyncs: 2,
        });
        let cfg = ClusterConfig { process_fate: Some(fate), max_rounds: 50, ..Default::default() };
        let report = run_cluster_with_recovery((0..n).map(mk).collect(), Some(rebuilder), cfg);
        assert!(report.completed, "restarted process must finish: {report:?}");
        assert_eq!(report.metrics.recovery.crash_restarts, 1);
        assert_eq!(report.metrics.recovery.replayed_records, 5);
        assert_eq!(report.metrics.recovery.journal_fsyncs, 2);
        assert!(report.metrics.recovery.recovery_rounds > 0, "rejoined before done");
        let t: &Ticker = report.actors[1].as_any().downcast_ref().unwrap();
        assert!(t.rounds >= target, "rebuilt actor caught up to the cluster clock");
        // The rejoin signal carries the first live round (crash at 2 +
        // rejoin_after 2), after the empty-inbox fast-forward.
        assert_eq!(t.rejoined_at, Some(4), "on_rejoin fired with the first live round");
    }

    #[test]
    fn crash_without_rebuilder_is_permanent() {
        let fate: ProcessFateFactory = Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                ProcessFate::CrashRestart { at_round: 1, rejoin_after: 1 }
            } else {
                ProcessFate::Run
            }
        });
        let cfg = ClusterConfig { process_fate: Some(fate), max_rounds: 6, ..Default::default() };
        // p1 dies at round 1 and never rejoins: the run exhausts its
        // round budget instead of completing.
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = (0..2)
            .map(|i| {
                Box::new(Ticker { id: ProcessId(i), rounds: 0, target: 4, rejoined_at: None }) as _
            })
            .collect();
        let report = run_cluster_with_recovery(actors, None, cfg);
        assert!(!report.completed);
        assert_eq!(report.metrics.recovery.crash_restarts, 1);
    }
}

#[cfg(test)]
mod overrun_tests {
    use super::*;
    use meba_crypto::ProcessId;
    use meba_sim::{Actor, Message};
    use std::time::Duration;

    #[derive(Clone, Debug)]
    struct Noop;
    impl Message for Noop {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Sleeper {
        id: ProcessId,
        rounds: u64,
        sleep: Duration,
        done_after: u64,
    }
    impl Actor for Sleeper {
        type Msg = Noop;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, _ctx: &mut meba_sim::RoundCtx<'_, Noop>) {
            self.rounds += 1;
            // Deliberately exceed the configured round duration.
            std::thread::sleep(self.sleep);
        }
        fn done(&self) -> bool {
            self.rounds >= self.done_after
        }
    }

    fn sleeper(sleep: Duration, done_after: u64) -> Vec<Box<dyn AnyActor<Msg = Noop>>> {
        vec![Box::new(Sleeper { id: ProcessId(0), rounds: 0, sleep, done_after })]
    }

    #[test]
    fn overruns_are_detected() {
        let report = run_cluster(
            sleeper(Duration::from_millis(3), 3),
            ClusterConfig { delta: Duration::from_millis(1), max_rounds: 10, ..Default::default() },
        );
        assert!(report.overruns > 0, "slow rounds must be flagged");
        assert!(report.aborted.is_none(), "default action only counts");
    }

    #[test]
    fn fast_rounds_do_not_overrun() {
        #[derive(Debug)]
        struct Quick {
            id: ProcessId,
            rounds: u64,
        }
        impl Actor for Quick {
            type Msg = Noop;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_round(&mut self, _ctx: &mut meba_sim::RoundCtx<'_, Noop>) {
                self.rounds += 1;
            }
            fn done(&self) -> bool {
                self.rounds >= 3
            }
        }
        let actors: Vec<Box<dyn AnyActor<Msg = Noop>>> =
            vec![Box::new(Quick { id: ProcessId(0), rounds: 0 })];
        let report = run_cluster(
            actors,
            ClusterConfig {
                delta: Duration::from_millis(20),
                max_rounds: 10,
                ..Default::default()
            },
        );
        assert_eq!(report.overruns, 0);
        assert!(report.metrics.round_latency.max_us() < 20_000);
    }

    #[test]
    fn sustained_overruns_abort_with_diagnostic() {
        let report = run_cluster(
            sleeper(Duration::from_millis(4), 1_000),
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 200,
                overrun_window: 2,
                overrun_action: OverrunAction::Abort,
                ..Default::default()
            },
        );
        assert!(!report.completed);
        let diag = report.aborted.expect("abort must attach a diagnostic");
        match diag.reason {
            AbortReason::SustainedOverruns { consecutive, window } => {
                assert_eq!(window, 2);
                assert!(consecutive >= 2);
            }
            other => panic!("unexpected abort reason {other:?}"),
        }
        assert!(diag.overruns >= 2);
        assert_eq!(diag.delta, Duration::from_millis(1));
        assert!(report.rounds < 200, "abort must stop the run early");
        let rendered = diag.to_string();
        assert!(rendered.contains("consecutive overrunning rounds"), "{rendered}");
    }

    #[test]
    fn escalation_stretches_delta_until_rounds_fit() {
        let report = run_cluster(
            sleeper(Duration::from_millis(3), 12),
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 100,
                overrun_window: 1,
                overrun_action: OverrunAction::Escalate {
                    multiplier: 4,
                    max_delta: Duration::from_millis(64),
                },
                ..Default::default()
            },
        );
        assert!(report.completed, "escalation must let the sleeper finish");
        assert!(report.aborted.is_none());
        assert!(!report.escalations.is_empty(), "δ must have been escalated");
        for e in &report.escalations {
            assert!(e.new_delta > e.old_delta);
            assert!(e.new_delta <= Duration::from_millis(64));
        }
    }

    #[test]
    fn escalation_respects_max_delta_cap() {
        let report = run_cluster(
            sleeper(Duration::from_millis(3), 6),
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 50,
                overrun_window: 1,
                overrun_action: OverrunAction::Escalate {
                    multiplier: 100,
                    max_delta: Duration::from_millis(2),
                },
                ..Default::default()
            },
        );
        // The cap keeps δ at 2 ms (< 3 ms sleep), so overruns persist, but
        // the run still finishes — escalation never aborts.
        assert!(report.completed);
        assert!(report.escalations.len() <= 1, "capped δ can only escalate once");
    }
}
