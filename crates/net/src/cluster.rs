//! A threaded, wall-clock cluster runtime.
//!
//! Runs the same [`meba_sim::Actor`] state machines as the lockstep simulator, but
//! with one OS thread per process, crossbeam channels as reliable
//! authenticated links, and real time: round `r` spans
//! `[start + r·δ, start + (r+1)·δ)`. A message sent during round `r` is
//! processed by its recipient in round `r + 1` (matching the synchrony
//! assumption as long as `δ` comfortably exceeds scheduling jitter plus
//! processing time; the runtime asserts this by construction because
//! channels deliver in microseconds).

use crossbeam::channel::{unbounded, Receiver, Sender};
use meba_crypto::ProcessId;
use meba_sim::{AnyActor, Dest, Envelope, Message, Metrics, Round, RoundCtx};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight, tagged with its send round.
struct Wire<M> {
    from: ProcessId,
    sent_round: u64,
    msg: M,
}

/// Outcome of a cluster run.
pub struct ClusterReport<M: Message> {
    /// Accumulated communication metrics (same accounting as the
    /// simulator).
    pub metrics: Metrics,
    /// Rounds executed before the cluster stopped.
    pub rounds: u64,
    /// The actors, returned for decision inspection.
    pub actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    /// Whether every correct actor reported done before the round budget
    /// ran out.
    pub completed: bool,
    /// Rounds in which some thread finished its processing *after* the
    /// round's deadline — synchrony-assumption violations. A non-zero
    /// count means `δ` is too small for this machine/protocol and the
    /// run's synchrony guarantees were at risk.
    pub overruns: u64,
}

/// Configuration of a [`run_cluster`] invocation.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Round duration `δ`.
    pub delta: Duration,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Byzantine identities (excluded from correct-word accounting and
    /// from the done-check).
    pub corrupt: Vec<ProcessId>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { delta: Duration::from_millis(2), max_rounds: 10_000, corrupt: Vec::new() }
    }
}

/// Runs `actors` as a real-time cluster until every correct actor is done
/// or the round budget is exhausted.
///
/// # Panics
///
/// Panics if `actors` is empty or ids are not `p0..p(n-1)` in order.
///
/// # Examples
///
/// See the `threaded_cluster` example at the workspace root.
pub fn run_cluster<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    config: ClusterConfig,
) -> ClusterReport<M> {
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }
    let mut txs: Vec<Sender<Wire<M>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<Wire<M>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let metrics = Arc::new(Mutex::new(Metrics::default()));
    let overruns = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let done_flags: Arc<Vec<AtomicBool>> =
        Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let start = Instant::now() + Duration::from_millis(5);
    let corrupt: Arc<Vec<bool>> = Arc::new(
        (0..n).map(|i| config.corrupt.iter().any(|c| c.index() == i)).collect(),
    );

    let mut handles = Vec::with_capacity(n);
    for (i, mut actor) in actors.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let rx = rxs.remove(0);
        let txs = txs.clone();
        let metrics = metrics.clone();
        let overruns = overruns.clone();
        let stop = stop.clone();
        let done_flags = done_flags.clone();
        let corrupt = corrupt.clone();
        let delta = config.delta;
        let max_rounds = config.max_rounds;
        let handle = std::thread::spawn(move || {
            let mut buffer: Vec<Wire<M>> = Vec::new();
            let mut round = 0u64;
            while round < max_rounds && !stop.load(Ordering::SeqCst) {
                let round_start = start + delta * round as u32;
                let now = Instant::now();
                if round_start > now {
                    std::thread::sleep(round_start - now);
                }
                buffer.extend(rx.try_iter());
                let mut inbox: Vec<Envelope<M>> = Vec::new();
                let mut keep: Vec<Wire<M>> = Vec::new();
                for w in buffer.drain(..) {
                    if w.sent_round < round {
                        inbox.push(Envelope { from: w.from, msg: w.msg });
                    } else {
                        keep.push(w);
                    }
                }
                buffer = keep;
                let mut ctx = RoundCtx::new(Round(round), me, n, &inbox);
                actor.on_round(&mut ctx);
                let outbox = ctx.take_outbox();
                let sender_correct = !corrupt[i];
                for (dest, msg) in outbox {
                    let words = msg.words().max(1);
                    let sigs = msg.constituent_sigs();
                    let component = msg.component();
                    let targets: Vec<usize> = match dest {
                        Dest::To(p) if p.index() < n => vec![p.index()],
                        Dest::To(_) => vec![],
                        Dest::All => (0..n).collect(),
                    };
                    for target in targets {
                        if target != i {
                            metrics.lock().record(
                                me,
                                sender_correct,
                                component,
                                round,
                                words,
                                sigs,
                            );
                        }
                        let _ = txs[target].send(Wire {
                            from: me,
                            sent_round: round,
                            msg: msg.clone(),
                        });
                    }
                }
                // Synchrony monitoring: processing past the round's
                // deadline means a peer may have missed this round's
                // messages.
                if Instant::now() > round_start + delta {
                    overruns.fetch_add(1, Ordering::Relaxed);
                }
                done_flags[i].store(actor.done(), Ordering::SeqCst);
                // The lowest-indexed thread doubles as the coordinator.
                if i == 0 {
                    let all_done = (0..n)
                        .filter(|&j| !corrupt[j])
                        .all(|j| done_flags[j].load(Ordering::SeqCst));
                    if all_done {
                        stop.store(true, Ordering::SeqCst);
                    }
                }
                round += 1;
            }
            (actor, round)
        });
        handles.push(handle);
    }

    let mut actors_back: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::with_capacity(n);
    let mut max_round = 0;
    for h in handles {
        let (actor, rounds) = h.join().expect("cluster thread panicked");
        max_round = max_round.max(rounds);
        actors_back.push(actor);
    }
    actors_back.sort_by_key(|a| a.id().index());
    let completed = (0..n)
        .filter(|&j| !corrupt[j])
        .all(|j| done_flags[j].load(Ordering::SeqCst));
    let mut metrics = Arc::try_unwrap(metrics)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());
    metrics.rounds = max_round;
    ClusterReport {
        metrics,
        rounds: max_round,
        actors: actors_back,
        completed,
        overruns: overruns.load(Ordering::Relaxed),
    }
}

impl<M: Message> std::fmt::Debug for ClusterReport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterReport")
            .field("rounds", &self.rounds)
            .field("completed", &self.completed)
            .field("correct_words", &self.metrics.correct.words)
            .field("overruns", &self.overruns)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::{Actor, IdleActor};

    #[derive(Clone, Debug)]
    struct Ping(#[allow(dead_code)] u64);
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Gossip {
        id: ProcessId,
        heard: usize,
        target: usize,
    }
    impl Actor for Gossip {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            if ctx.round() == Round(0) {
                ctx.broadcast(Ping(self.id.0 as u64));
            }
            self.heard += ctx.inbox().len();
        }
        fn done(&self) -> bool {
            self.heard >= self.target
        }
    }

    #[test]
    fn cluster_delivers_broadcasts_next_round() {
        let n = 4;
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = (0..n)
            .map(|i| {
                Box::new(Gossip { id: ProcessId(i as u32), heard: 0, target: n }) as _
            })
            .collect();
        let report = run_cluster(actors, ClusterConfig::default());
        assert!(report.completed);
        for a in &report.actors {
            let g: &Gossip = a.as_any().downcast_ref().unwrap();
            assert_eq!(g.heard, n, "every broadcast (incl. own) delivered once");
        }
        // 4 broadcasts × 3 remote copies.
        assert_eq!(report.metrics.correct.words, 12);
    }

    #[test]
    fn cluster_respects_corrupt_accounting() {
        let n = 3;
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = (0..n)
            .map(|i| {
                Box::new(Gossip { id: ProcessId(i as u32), heard: 0, target: n }) as _
            })
            .collect();
        let cfg = ClusterConfig { corrupt: vec![ProcessId(1)], ..Default::default() };
        let report = run_cluster(actors, cfg);
        assert_eq!(report.metrics.correct.words, 4); // 2 correct × 2 remote
        assert_eq!(report.metrics.byzantine.words, 2);
    }

    #[test]
    fn cluster_stops_at_round_budget() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> =
            vec![Box::new(Gossip { id: ProcessId(0), heard: 0, target: 99 })];
        let cfg = ClusterConfig { max_rounds: 5, ..Default::default() };
        let report = run_cluster(actors, cfg);
        assert!(!report.completed);
        assert_eq!(report.rounds, 5);
    }

    #[test]
    fn idle_actors_count_as_done() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Gossip { id: ProcessId(0), heard: 0, target: 1 }),
            Box::new(IdleActor::new(ProcessId(1))),
        ];
        let report = run_cluster(actors, ClusterConfig::default());
        assert!(report.completed);
    }
}

#[cfg(test)]
mod overrun_tests {
    use super::*;
    use meba_sim::Actor;

    #[derive(Clone, Debug)]
    struct Noop;
    impl Message for Noop {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Sleeper {
        id: ProcessId,
        rounds: u64,
    }
    impl Actor for Sleeper {
        type Msg = Noop;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, _ctx: &mut meba_sim::RoundCtx<'_, Noop>) {
            self.rounds += 1;
            // Deliberately exceed the 1 ms round duration.
            std::thread::sleep(Duration::from_millis(3));
        }
        fn done(&self) -> bool {
            self.rounds >= 3
        }
    }

    #[test]
    fn overruns_are_detected() {
        let actors: Vec<Box<dyn AnyActor<Msg = Noop>>> =
            vec![Box::new(Sleeper { id: ProcessId(0), rounds: 0 })];
        let report = run_cluster(
            actors,
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 10,
                corrupt: vec![],
            },
        );
        assert!(report.overruns > 0, "slow rounds must be flagged");
    }

    #[test]
    fn fast_rounds_do_not_overrun() {
        #[derive(Debug)]
        struct Quick {
            id: ProcessId,
            rounds: u64,
        }
        impl Actor for Quick {
            type Msg = Noop;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_round(&mut self, _ctx: &mut meba_sim::RoundCtx<'_, Noop>) {
                self.rounds += 1;
            }
            fn done(&self) -> bool {
                self.rounds >= 3
            }
        }
        let actors: Vec<Box<dyn AnyActor<Msg = Noop>>> =
            vec![Box::new(Quick { id: ProcessId(0), rounds: 0 })];
        let report = run_cluster(
            actors,
            ClusterConfig {
                delta: Duration::from_millis(20),
                max_rounds: 10,
                corrupt: vec![],
            },
        );
        assert_eq!(report.overruns, 0);
    }
}
