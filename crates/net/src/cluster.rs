//! A threaded, wall-clock cluster runtime with link-fault injection and
//! round-latency observability.
//!
//! Runs the same [`meba_sim::Actor`] state machines as the lockstep
//! simulator, but with one OS thread per process, bounded crossbeam
//! channels as authenticated links, and real time: round `r` spans
//! `[start + r·δ, start + (r+1)·δ)` and a message sent during round `r` is
//! processed by its recipient in round `r + 1`.
//!
//! Beyond the happy path, the runtime models the network the paper's
//! synchrony assumption abstracts away:
//!
//! * **Link faults** — a per-sender [`LinkPolicy`]
//!   ([`ClusterConfig::link_policy`]) can drop, delay, or partition
//!   directed links; the protocols must ride out the loss (or the caller
//!   asserts they don't).
//! * **Observability** — every thread records its per-round processing
//!   latency into [`Metrics::round_latency`] and every directed link's
//!   sent/delivered/dropped/delayed counts into [`Metrics::per_link`].
//! * **Backpressure** — links are bounded
//!   ([`ClusterConfig::channel_capacity`]); a full link blocks the sender
//!   (counted in [`ClusterReport::backpressure`]) instead of ballooning
//!   memory.
//! * **Graceful degradation** — when processing overruns δ for
//!   [`ClusterConfig::overrun_window`] consecutive rounds, the coordinator
//!   either stretches δ ([`OverrunAction::Escalate`]) or stops the run
//!   with a structured [`ClusterDiagnostic`] ([`OverrunAction::Abort`]).
//!
//! # Coordination
//!
//! Thread 0 doubles as the coordinator: after finishing round `r` it
//! publishes exactly one decision — stop after `r` (recording whether the
//! run completed) or approve round `r + 1`. Worker threads never execute
//! a round that was not approved, so every thread executes the same set
//! of rounds and [`ClusterReport::completed`] is the coordinator's own
//! recorded verdict rather than a racy post-join recomputation.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use meba_crypto::ProcessId;
use meba_sim::faults::{Link, LinkFate, LinkPolicy};
use meba_sim::{AnyActor, Dest, Envelope, Message, Metrics, Round, RoundCtx};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight, tagged with its send round.
struct Wire<M> {
    from: ProcessId,
    sent_round: u64,
    msg: M,
}

/// Per-sender factory for [`LinkPolicy`] instances: called once per
/// process thread with that process's id; the returned policy governs all
/// of its outbound links.
pub type LinkPolicyFactory = Arc<dyn Fn(ProcessId) -> Box<dyn LinkPolicy> + Send + Sync>;

/// Process-level fault injection: what happens to one process over the
/// run (see [`ClusterConfig::process_fate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessFate {
    /// Run normally for the whole run (the default).
    Run,
    /// Crash at the start of round `at_round`: all in-memory state and
    /// buffered messages are lost and inbound traffic is discarded while
    /// down. After `rejoin_after` dead rounds the process restarts via
    /// the run's [`ActorRebuilder`] (replaying its durable journal) and
    /// rejoins live. Without a rebuilder the crash is permanent — the
    /// process behaves like a crash-faulty one from `at_round` on.
    CrashRestart {
        /// First round the process is down for.
        at_round: u64,
        /// Dead rounds before the restart attempt.
        rejoin_after: u64,
    },
}

/// Per-process factory assigning each process its [`ProcessFate`].
pub type ProcessFateFactory = Arc<dyn Fn(ProcessId) -> ProcessFate + Send + Sync>;

/// A restarted actor as rebuilt from its durable journal, plus the
/// recovery statistics the runtime folds into
/// [`meba_sim::metrics::RecoveryStats`].
pub struct RebuiltActor<M: Message> {
    /// The reconstructed actor (e.g. a `LockstepAdapter` over
    /// `meba-core`'s `Recoverable` wrapper recovered from its journal).
    pub actor: Box<dyn AnyActor<Msg = M>>,
    /// First step the actor will execute live; everything below was
    /// reconstructed by journal replay.
    pub resume_step: u64,
    /// Journal records replayed during reconstruction.
    pub replayed_records: u64,
    /// fsync batches the journal had performed pre-crash.
    pub journal_fsyncs: u64,
}

/// Rebuilds a crashed process from its durable state. Called once per
/// rejoin, on the process's own thread.
pub type ActorRebuilder<M> = Arc<dyn Fn(ProcessId) -> RebuiltActor<M> + Send + Sync>;

/// What the coordinator does about sustained synchrony overruns (see
/// [`ClusterConfig::overrun_window`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverrunAction {
    /// Keep running and only count overruns (the default).
    Count,
    /// Multiply δ by `multiplier` (capped at `max_delta`) and keep going —
    /// the run trades latency for restored synchrony.
    Escalate {
        /// Factor applied to the current δ on each escalation.
        multiplier: u32,
        /// Upper bound on the escalated δ.
        max_delta: Duration,
    },
    /// Stop the run and report a [`ClusterDiagnostic`].
    Abort,
}

/// Why a run was aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Processing overran δ for `consecutive` coordinator rounds, meeting
    /// the configured `window`.
    SustainedOverruns {
        /// Consecutive overrunning rounds observed.
        consecutive: u32,
        /// The configured [`ClusterConfig::overrun_window`].
        window: u32,
    },
    /// A worker thread waited unreasonably long for the coordinator to
    /// approve its next round — the coordinator stalled or died.
    CoordinatorStalled,
}

/// Structured diagnostic attached to an aborted run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterDiagnostic {
    /// What went wrong.
    pub reason: AbortReason,
    /// Last round that was executed before the stop.
    pub round: u64,
    /// Total overruns observed at the time of the abort.
    pub overruns: u64,
    /// Effective δ when the run stopped.
    pub delta: Duration,
}

impl fmt::Display for ClusterDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            AbortReason::SustainedOverruns { consecutive, window } => write!(
                f,
                "aborted at round {}: {} consecutive overrunning rounds (window {}), \
                 {} total overruns, δ = {:?}",
                self.round, consecutive, window, self.overruns, self.delta
            ),
            AbortReason::CoordinatorStalled => write!(
                f,
                "aborted at round {}: coordinator stalled (δ = {:?}, {} overruns)",
                self.round, self.delta, self.overruns
            ),
        }
    }
}

/// One δ-escalation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Escalation {
    /// First round paced with the new δ.
    pub at_round: u64,
    /// δ before the escalation.
    pub old_delta: Duration,
    /// δ after the escalation.
    pub new_delta: Duration,
}

/// Outcome of a cluster run.
pub struct ClusterReport<M: Message> {
    /// Accumulated communication metrics (same word accounting as the
    /// simulator), including the per-round processing-latency histogram
    /// ([`Metrics::round_latency`]) and per-link delivery counters
    /// ([`Metrics::per_link`]).
    pub metrics: Metrics,
    /// Rounds executed before the cluster stopped.
    pub rounds: u64,
    /// The actors, returned for decision inspection.
    pub actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    /// Whether every correct actor reported done before the round budget
    /// ran out — the coordinator's recorded stop verdict.
    pub completed: bool,
    /// Rounds in which some thread finished its processing *after* the
    /// round's deadline — synchrony-assumption violations. A non-zero
    /// count means δ is tight for this machine/protocol.
    pub overruns: u64,
    /// Times a sender blocked on a full link (bounded-channel
    /// backpressure).
    pub backpressure: u64,
    /// δ-escalations performed under [`OverrunAction::Escalate`].
    pub escalations: Vec<Escalation>,
    /// Present iff the run was stopped early by the overrun policy or a
    /// coordinator stall.
    pub aborted: Option<ClusterDiagnostic>,
}

/// Configuration of a [`run_cluster`] invocation.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Round duration δ.
    pub delta: Duration,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Byzantine identities (excluded from correct-word accounting and
    /// from the done-check).
    pub corrupt: Vec<ProcessId>,
    /// Link-fault injection: each sender thread instantiates one policy
    /// for its outbound links. `None` means reliable links.
    ///
    /// Stock policies and determinism guarantees live in
    /// [`meba_sim::faults`]. Self-links are never consulted.
    pub link_policy: Option<LinkPolicyFactory>,
    /// Capacity of each process's inbound channel. A full channel blocks
    /// senders (backpressure) rather than dropping or buffering without
    /// bound. Must comfortably exceed `n ×` the per-round message volume;
    /// the default (1024) is generous for the protocols in this
    /// workspace.
    pub channel_capacity: usize,
    /// Number of consecutive overrunning coordinator rounds that triggers
    /// [`ClusterConfig::overrun_action`].
    pub overrun_window: u32,
    /// Reaction to sustained overruns.
    pub overrun_action: OverrunAction,
    /// Process-level fault injection (crash-restart). `None` means every
    /// process runs for the whole run. Restarts additionally need an
    /// [`ActorRebuilder`] (see [`run_cluster_with_recovery`]).
    pub process_fate: Option<ProcessFateFactory>,
    /// Upper bound on the TCP mesh's exponential reconnect backoff
    /// (ignored by the in-memory runtime; `meba-wire` threads it into
    /// its dialer). Crash-restart tests lower it so rejoining processes
    /// re-establish links quickly; the default matches the mesh's
    /// long-standing hard-coded cap.
    pub reconnect_backoff_cap: Duration,
    /// Maximum deterministic jitter added per reconnect attempt (TCP
    /// runtime only). Spreads simultaneous redials after a restart;
    /// zero (the default) preserves the historical behaviour.
    pub reconnect_jitter: Duration,
}

impl fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("delta", &self.delta)
            .field("max_rounds", &self.max_rounds)
            .field("corrupt", &self.corrupt)
            .field("link_policy", &self.link_policy.as_ref().map(|_| "<factory>"))
            .field("channel_capacity", &self.channel_capacity)
            .field("overrun_window", &self.overrun_window)
            .field("overrun_action", &self.overrun_action)
            .field("process_fate", &self.process_fate.as_ref().map(|_| "<factory>"))
            .field("reconnect_backoff_cap", &self.reconnect_backoff_cap)
            .field("reconnect_jitter", &self.reconnect_jitter)
            .finish()
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            delta: Duration::from_millis(2),
            max_rounds: 10_000,
            corrupt: Vec::new(),
            link_policy: None,
            channel_capacity: 1024,
            overrun_window: 3,
            overrun_action: OverrunAction::Count,
            process_fate: None,
            reconnect_backoff_cap: Duration::from_millis(250),
            reconnect_jitter: Duration::ZERO,
        }
    }
}

/// One pacing regime: rounds from `from_round` on start at
/// `offset_ns + (r - from_round) · delta_ns` nanoseconds past the cluster
/// epoch. All arithmetic is `u128`, so no round index can truncate or
/// wrap the schedule.
#[derive(Clone, Copy)]
struct Segment {
    from_round: u64,
    offset_ns: u128,
    delta_ns: u128,
}

/// Deadline schedule shared by all threads; escalations append segments.
struct Pacer {
    epoch: Instant,
    segments: RwLock<Vec<Segment>>,
}

impl Pacer {
    fn new(epoch: Instant, delta: Duration) -> Self {
        let seg = Segment { from_round: 0, offset_ns: 0, delta_ns: delta.as_nanos().max(1) };
        Pacer { epoch, segments: RwLock::new(vec![seg]) }
    }

    fn segment_for(&self, round: u64) -> Segment {
        let segments = self.segments.read();
        *segments.iter().rev().find(|s| s.from_round <= round).unwrap_or(&segments[0])
    }

    /// Wall-clock start of `round` (== deadline of `round - 1`).
    fn round_start(&self, round: u64) -> Instant {
        let s = self.segment_for(round);
        let ns = s.offset_ns + u128::from(round - s.from_round) * s.delta_ns;
        self.epoch + Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Effective δ for `round`.
    fn delta_at(&self, round: u64) -> Duration {
        let ns = self.segment_for(round).delta_ns;
        Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Re-paces rounds from `from_round` on with `new_delta`. Rounds
    /// before `from_round` keep their schedule, so already-approved
    /// deadlines never move.
    fn escalate(&self, from_round: u64, new_delta: Duration) {
        let mut segments = self.segments.write();
        let last = *segments.last().expect("pacer always has a segment");
        debug_assert!(from_round >= last.from_round);
        let offset_ns = last.offset_ns + u128::from(from_round - last.from_round) * last.delta_ns;
        segments.push(Segment { from_round, offset_ns, delta_ns: new_delta.as_nanos().max(1) });
    }
}

/// Coordinator's stop verdict, written exactly once.
struct Outcome {
    completed: bool,
    rounds: u64,
    aborted: Option<ClusterDiagnostic>,
}

/// State shared by all cluster threads.
struct Control {
    pacer: Pacer,
    /// Number of rounds approved for execution; round `r` may run iff
    /// `r < approved`.
    approved: AtomicU64,
    /// First round that must NOT be executed (`u64::MAX` while running).
    stop_at: AtomicU64,
    outcome: Mutex<Option<Outcome>>,
    overruns: AtomicU64,
    backpressure: AtomicU64,
    done_flags: Vec<AtomicBool>,
    escalations: Mutex<Vec<Escalation>>,
    metrics: Mutex<Metrics>,
}

impl Control {
    fn record_outcome(&self, outcome: Outcome, stop_at: u64) {
        let mut slot = self.outcome.lock();
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.stop_at.store(stop_at, Ordering::SeqCst);
    }
}

/// What a worker learned while waiting for round approval.
enum Approval {
    Go,
    Stop,
}

/// Runs `actors` as a real-time cluster until every correct actor is done,
/// the round budget is exhausted, or the overrun policy stops the run.
///
/// # Panics
///
/// Panics if `actors` is empty or ids are not `p0..p(n-1)` in order.
///
/// # Examples
///
/// See the `threaded_cluster` and `fault_injection` examples at the
/// workspace root.
pub fn run_cluster<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    config: ClusterConfig,
) -> ClusterReport<M> {
    run_cluster_with_recovery(actors, None, config)
}

/// [`run_cluster`] with a crash-recovery path: processes whose
/// [`ProcessFate`] is [`ProcessFate::CrashRestart`] lose their in-memory
/// state at the crash round, stay dead (inbound traffic discarded, no
/// sends) for the configured window, and are then rebuilt by `rebuilder`
/// — typically by replaying a durable `meba-journal` write-ahead log —
/// and fast-forwarded back to the cluster's current round with empty
/// inboxes, as if every message during the outage was dropped. Recovery
/// counters land in [`Metrics::recovery`](meba_sim::Metrics).
pub fn run_cluster_with_recovery<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    config: ClusterConfig,
) -> ClusterReport<M> {
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }
    let mut txs: Vec<Sender<Wire<M>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<Wire<M>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded(config.channel_capacity.max(1));
        txs.push(tx);
        rxs.push(rx);
    }
    let ctrl = Arc::new(Control {
        pacer: Pacer::new(Instant::now() + Duration::from_millis(5), config.delta),
        approved: AtomicU64::new(1),
        stop_at: AtomicU64::new(u64::MAX),
        outcome: Mutex::new(None),
        overruns: AtomicU64::new(0),
        backpressure: AtomicU64::new(0),
        done_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
        escalations: Mutex::new(Vec::new()),
        metrics: Mutex::new(Metrics::default()),
    });
    let corrupt: Arc<Vec<bool>> =
        Arc::new((0..n).map(|i| config.corrupt.iter().any(|c| c.index() == i)).collect());

    let mut handles = Vec::with_capacity(n);
    for (i, actor) in actors.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let rx = rxs.remove(0);
        let txs = txs.clone();
        let ctrl = ctrl.clone();
        let corrupt = corrupt.clone();
        let policy = config.link_policy.as_ref().map(|f| f(me));
        let fate = config.process_fate.as_ref().map_or(ProcessFate::Run, |f| f(me));
        let rebuilder = rebuilder.clone();
        let cfg = WorkerConfig {
            max_rounds: config.max_rounds,
            overrun_window: config.overrun_window,
            overrun_action: config.overrun_action.clone(),
            fate,
        };
        handles.push(std::thread::spawn(move || {
            run_process(me, actor, rx, txs, policy, ctrl, corrupt, cfg, rebuilder)
        }));
    }
    drop(txs);

    let mut actors_back: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::with_capacity(n);
    let mut max_round = 0;
    for h in handles {
        let (actor, rounds) = h.join().expect("cluster thread panicked");
        max_round = max_round.max(rounds);
        actors_back.push(actor);
    }
    actors_back.sort_by_key(|a| a.id().index());

    let ctrl = Arc::try_unwrap(ctrl).unwrap_or_else(|_| panic!("cluster threads still alive"));
    let outcome = ctrl.outcome.into_inner();
    let (completed, rounds, aborted) = match outcome {
        Some(o) => (o.completed, o.rounds, o.aborted),
        // Only reachable if every thread exited on the max_rounds
        // belt-and-braces check before the coordinator could decide.
        None => (false, max_round, None),
    };
    let mut metrics = ctrl.metrics.into_inner();
    metrics.rounds = rounds.max(max_round);
    ClusterReport {
        metrics,
        rounds: rounds.max(max_round),
        actors: actors_back,
        completed,
        overruns: ctrl.overruns.into_inner(),
        backpressure: ctrl.backpressure.into_inner(),
        escalations: ctrl.escalations.into_inner(),
        aborted,
    }
}

/// Per-thread slice of the cluster configuration.
struct WorkerConfig {
    max_rounds: u64,
    overrun_window: u32,
    overrun_action: OverrunAction,
    fate: ProcessFate,
}

#[allow(clippy::too_many_arguments)]
fn run_process<M: Message>(
    me: ProcessId,
    mut actor: Box<dyn AnyActor<Msg = M>>,
    rx: Receiver<Wire<M>>,
    txs: Vec<Sender<Wire<M>>>,
    mut policy: Option<Box<dyn LinkPolicy>>,
    ctrl: Arc<Control>,
    corrupt: Arc<Vec<bool>>,
    cfg: WorkerConfig,
    rebuilder: Option<ActorRebuilder<M>>,
) -> (Box<dyn AnyActor<Msg = M>>, u64) {
    let n = txs.len();
    let i = me.index();
    let is_coordinator = i == 0;
    let sender_correct = !corrupt[i];
    // Messages received early (sent_round >= current round) wait here.
    let mut buffer: Vec<Wire<M>> = Vec::new();
    // Fault-delayed outbound messages, keyed by their transmit round.
    let mut pending: BTreeMap<u64, Vec<(usize, Wire<M>)>> = BTreeMap::new();
    // Coordinator-only escalation bookkeeping.
    let mut overruns_seen = 0u64;
    let mut consecutive_overruns = 0u32;
    let mut round = 0u64;
    // Crash-restart bookkeeping.
    let mut dead = false;
    let mut rejoin_round: Option<u64> = None;

    'rounds: while round < cfg.max_rounds {
        if ctrl.stop_at.load(Ordering::SeqCst) <= round {
            break;
        }
        if !is_coordinator {
            match wait_for_approval(&ctrl, round) {
                Approval::Go => {}
                Approval::Stop => break 'rounds,
            }
        }
        let round_start = ctrl.pacer.round_start(round);
        let now = Instant::now();
        if round_start > now {
            std::thread::sleep(round_start - now);
        }

        // --- Crash-restart fault injection.
        if let ProcessFate::CrashRestart { at_round, rejoin_after } = cfg.fate {
            if !dead && rejoin_round.is_none() && round == at_round {
                // Crash: in-memory state, buffered inbox, and pending
                // delayed sends are all lost.
                dead = true;
                buffer.clear();
                pending.clear();
                ctrl.done_flags[i].store(false, Ordering::SeqCst);
                ctrl.metrics.lock().recovery.crash_restarts += 1;
            }
            if let Some(rebuild) =
                rebuilder.as_ref().filter(|_| dead && round >= at_round + rejoin_after)
            {
                // Restart: rebuild from the durable journal, then
                // fast-forward to the cluster's current round with empty
                // inboxes. Steps below the resume point are no-ops inside
                // the recovery wrapper; the missed live rounds degrade to
                // omissions, which the help machinery compensates for.
                let rb = rebuild(me);
                actor = rb.actor;
                {
                    let mut m = ctrl.metrics.lock();
                    m.recovery.replayed_records += rb.replayed_records;
                    m.recovery.journal_fsyncs += rb.journal_fsyncs;
                }
                let empty: Vec<Envelope<M>> = Vec::new();
                for r in 0..round {
                    let mut ctx = RoundCtx::new(Round(r), me, n, &empty);
                    actor.on_round(&mut ctx);
                    drop(ctx.take_outbox());
                }
                dead = false;
                rejoin_round = Some(round);
            }
        }
        if dead {
            // Down: discard all inbound traffic, send nothing. The
            // coordinator keeps pacing rounds so live peers advance.
            for _ in rx.try_iter() {}
            if is_coordinator {
                coordinate(
                    &ctrl,
                    &corrupt,
                    &cfg,
                    round,
                    &mut overruns_seen,
                    &mut consecutive_overruns,
                );
            }
            round += 1;
            continue 'rounds;
        }

        let proc_start = Instant::now();

        // Transmit fault-delayed messages whose release round arrived.
        // They keep their original sent_round, so the recipient processes
        // them on arrival — `delay` rounds past the synchrony bound.
        if let Some(due) = pending.remove(&round) {
            for (target, wire) in due {
                send_wire(&txs[target], wire, &ctrl);
            }
        }

        // Drain the inbound link into this round's inbox; record
        // deliveries per link.
        buffer.extend(rx.try_iter());
        let mut inbox: Vec<Envelope<M>> = Vec::new();
        let mut keep: Vec<Wire<M>> = Vec::new();
        {
            let mut metrics = ctrl.metrics.lock();
            for w in buffer.drain(..) {
                if w.sent_round < round {
                    if w.from != me {
                        metrics.link_mut(w.from, me).delivered += 1;
                    }
                    inbox.push(Envelope { from: w.from, msg: w.msg });
                } else {
                    keep.push(w);
                }
            }
        }
        buffer = keep;

        let mut ctx = RoundCtx::new(Round(round), me, n, &inbox);
        actor.on_round(&mut ctx);
        let outbox = ctx.take_outbox();
        for (dest, msg) in outbox {
            let words = msg.words().max(1);
            let sigs = msg.constituent_sigs();
            let bytes = msg.wire_bytes();
            let component = msg.component();
            let session = msg.session();
            let targets: Vec<usize> = match dest {
                Dest::To(p) if p.index() < n => vec![p.index()],
                Dest::To(_) => vec![],
                Dest::All => (0..n).collect(),
            };
            for target in targets {
                let wire = Wire { from: me, sent_round: round, msg: msg.clone() };
                if target == i {
                    // Self-delivery: process memory, not a link — no
                    // policy, no per-link stats, no word accounting.
                    send_wire(&txs[target], wire, &ctrl);
                    continue;
                }
                let to = ProcessId(target as u32);
                let fate = match &mut policy {
                    Some(p) => p.fate(Link { from: me, to }, round),
                    None => LinkFate::Deliver,
                };
                {
                    let mut metrics = ctrl.metrics.lock();
                    metrics.record(
                        me,
                        sender_correct,
                        component,
                        session,
                        round,
                        words,
                        sigs,
                        bytes,
                    );
                    let stats = metrics.link_mut(me, to);
                    stats.sent += 1;
                    stats.bytes += bytes;
                    match fate {
                        LinkFate::Deliver => {}
                        LinkFate::Drop => stats.dropped += 1,
                        LinkFate::DelayRounds(_) => stats.delayed += 1,
                    }
                }
                match fate {
                    LinkFate::Deliver => send_wire(&txs[target], wire, &ctrl),
                    LinkFate::Drop => {}
                    LinkFate::DelayRounds(k) => {
                        pending.entry(round + k).or_default().push((target, wire));
                    }
                }
            }
        }

        // Observability: per-round processing latency and synchrony
        // monitoring. Processing past the round's deadline means a peer
        // may have missed this round's messages.
        let proc_end = Instant::now();
        let latency_us =
            u64::try_from(proc_end.duration_since(proc_start).as_micros()).unwrap_or(u64::MAX);
        ctrl.metrics.lock().round_latency.record_us(latency_us);
        let deadline = ctrl.pacer.round_start(round + 1);
        if proc_end > deadline {
            ctrl.overruns.fetch_add(1, Ordering::Relaxed);
        }
        ctrl.done_flags[i].store(actor.done(), Ordering::SeqCst);
        // Recovery latency: rounds from rejoin until this process is done.
        if actor.done() {
            if let Some(rj) = rejoin_round.take() {
                ctrl.metrics.lock().recovery.recovery_rounds += round - rj;
            }
        }

        if is_coordinator {
            coordinate(&ctrl, &corrupt, &cfg, round, &mut overruns_seen, &mut consecutive_overruns);
        }
        round += 1;
    }
    let refused = actor.refused_equivocations();
    if refused > 0 {
        ctrl.metrics.lock().recovery.refused_equivocations += refused;
    }
    (actor, round)
}

/// Sends one wire message, counting backpressure blocks. A disconnected
/// link (the peer already stopped) loses the message, which is fine: the
/// run is over for that peer.
fn send_wire<M: Message>(tx: &Sender<Wire<M>>, wire: Wire<M>, ctrl: &Control) {
    match tx.try_send(wire) {
        Ok(()) => {}
        Err(TrySendError::Full(wire)) => {
            ctrl.backpressure.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(wire);
        }
        Err(TrySendError::Disconnected(_)) => {}
    }
}

/// The coordinator's end-of-round decision: stop (exactly one recorded
/// outcome) or approve the next round, possibly escalating δ first.
fn coordinate(
    ctrl: &Control,
    corrupt: &[bool],
    cfg: &WorkerConfig,
    round: u64,
    overruns_seen: &mut u64,
    consecutive_overruns: &mut u32,
) {
    let n = corrupt.len();
    let all_done =
        (0..n).filter(|&j| !corrupt[j]).all(|j| ctrl.done_flags[j].load(Ordering::SeqCst));
    if all_done {
        ctrl.record_outcome(
            Outcome { completed: true, rounds: round + 1, aborted: None },
            round + 1,
        );
        return;
    }
    if round + 1 >= cfg.max_rounds {
        ctrl.record_outcome(
            Outcome { completed: false, rounds: round + 1, aborted: None },
            round + 1,
        );
        return;
    }

    // Overrun bookkeeping: "this round overran" means the global counter
    // moved since the coordinator last looked. (Laggard threads may
    // attribute an overrun to the next coordinator round — the window is
    // a sustained-degradation heuristic, not an exact per-round flag.)
    let overruns_now = ctrl.overruns.load(Ordering::Relaxed);
    if overruns_now > *overruns_seen {
        *consecutive_overruns += 1;
    } else {
        *consecutive_overruns = 0;
    }
    *overruns_seen = overruns_now;

    if *consecutive_overruns >= cfg.overrun_window {
        match &cfg.overrun_action {
            OverrunAction::Count => {}
            OverrunAction::Escalate { multiplier, max_delta } => {
                let old_delta = ctrl.pacer.delta_at(round + 1);
                let new_delta = old_delta.saturating_mul((*multiplier).max(2)).min(*max_delta);
                if new_delta > old_delta {
                    // Round r+1 is already approved under the old pacing;
                    // the new δ takes effect at r+2.
                    ctrl.pacer.escalate(round + 2, new_delta);
                    ctrl.escalations.lock().push(Escalation {
                        at_round: round + 2,
                        old_delta,
                        new_delta,
                    });
                }
                *consecutive_overruns = 0;
            }
            OverrunAction::Abort => {
                ctrl.record_outcome(
                    Outcome {
                        completed: false,
                        rounds: round + 1,
                        aborted: Some(ClusterDiagnostic {
                            reason: AbortReason::SustainedOverruns {
                                consecutive: *consecutive_overruns,
                                window: cfg.overrun_window,
                            },
                            round,
                            overruns: overruns_now,
                            delta: ctrl.pacer.delta_at(round),
                        }),
                    },
                    round + 1,
                );
                return;
            }
        }
    }
    ctrl.approved.store(round + 2, Ordering::SeqCst);
}

/// Blocks a worker until its next round is approved or the run stops. A
/// multi-minute wait means the coordinator died mid-run; the worker then
/// stops the cluster with a [`AbortReason::CoordinatorStalled`]
/// diagnostic instead of spinning forever.
fn wait_for_approval(ctrl: &Control, round: u64) -> Approval {
    let stall_after = ctrl.pacer.delta_at(round).saturating_mul(64).max(Duration::from_secs(60));
    let wait_start = Instant::now();
    loop {
        if ctrl.stop_at.load(Ordering::SeqCst) <= round {
            return Approval::Stop;
        }
        if ctrl.approved.load(Ordering::SeqCst) > round {
            return Approval::Go;
        }
        if wait_start.elapsed() > stall_after {
            ctrl.record_outcome(
                Outcome {
                    completed: false,
                    rounds: round,
                    aborted: Some(ClusterDiagnostic {
                        reason: AbortReason::CoordinatorStalled,
                        round,
                        overruns: ctrl.overruns.load(Ordering::Relaxed),
                        delta: ctrl.pacer.delta_at(round),
                    }),
                },
                round,
            );
            return Approval::Stop;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
}

impl<M: Message> std::fmt::Debug for ClusterReport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterReport")
            .field("rounds", &self.rounds)
            .field("completed", &self.completed)
            .field("correct_words", &self.metrics.correct.words)
            .field("overruns", &self.overruns)
            .field("backpressure", &self.backpressure)
            .field("escalations", &self.escalations.len())
            .field("aborted", &self.aborted)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::{Actor, IdleActor};

    #[derive(Clone, Debug)]
    struct Ping(#[allow(dead_code)] u64);
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Gossip {
        id: ProcessId,
        heard: usize,
        target: usize,
    }
    impl Actor for Gossip {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            if ctx.round() == Round(0) {
                ctx.broadcast(Ping(self.id.0 as u64));
            }
            self.heard += ctx.inbox().len();
        }
        fn done(&self) -> bool {
            self.heard >= self.target
        }
    }

    fn gossips(targets: &[usize]) -> Vec<Box<dyn AnyActor<Msg = Ping>>> {
        targets
            .iter()
            .enumerate()
            .map(|(i, &t)| Box::new(Gossip { id: ProcessId(i as u32), heard: 0, target: t }) as _)
            .collect()
    }

    #[test]
    fn cluster_delivers_broadcasts_next_round() {
        let n = 4;
        let report = run_cluster(gossips(&[n; 4]), ClusterConfig::default());
        assert!(report.completed);
        assert!(report.aborted.is_none());
        for a in &report.actors {
            let g: &Gossip = a.as_any().downcast_ref().unwrap();
            assert_eq!(g.heard, n, "every broadcast (incl. own) delivered once");
        }
        // 4 broadcasts × 3 remote copies.
        assert_eq!(report.metrics.correct.words, 12);
    }

    #[test]
    fn cluster_respects_corrupt_accounting() {
        let cfg = ClusterConfig { corrupt: vec![ProcessId(1)], ..Default::default() };
        let report = run_cluster(gossips(&[3; 3]), cfg);
        assert_eq!(report.metrics.correct.words, 4); // 2 correct × 2 remote
        assert_eq!(report.metrics.byzantine.words, 2);
    }

    #[test]
    fn cluster_stops_at_round_budget() {
        let cfg = ClusterConfig { max_rounds: 5, ..Default::default() };
        let report = run_cluster(gossips(&[99]), cfg);
        assert!(!report.completed);
        assert_eq!(report.rounds, 5);
    }

    #[test]
    fn idle_actors_count_as_done() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Gossip { id: ProcessId(0), heard: 0, target: 1 }),
            Box::new(IdleActor::new(ProcessId(1))),
        ];
        let report = run_cluster(actors, ClusterConfig::default());
        assert!(report.completed);
    }

    #[test]
    fn latency_histogram_and_link_counters_are_recorded() {
        let report = run_cluster(gossips(&[2; 2]), ClusterConfig::default());
        assert!(report.completed);
        // Two threads × ≥ 2 rounds: at least 4 latency samples.
        assert!(report.metrics.round_latency.count() >= 4);
        // Each process broadcast once; one message per directed link.
        let l01 = report.metrics.link(ProcessId(0), ProcessId(1));
        let l10 = report.metrics.link(ProcessId(1), ProcessId(0));
        assert_eq!((l01.sent, l01.delivered, l01.dropped), (1, 1, 0));
        assert_eq!((l10.sent, l10.delivered, l10.dropped), (1, 1, 0));
        // Self-links are never recorded.
        assert!(report
            .metrics
            .per_link
            .keys()
            .all(|k| { k != &Metrics::link_key(ProcessId(0), ProcessId(0)) }));
    }

    #[test]
    fn dropped_links_are_counted_and_not_delivered() {
        use meba_sim::faults::ReliableLinks;
        // p1's outbound links all drop; inbound links to p1 are fine.
        let factory: LinkPolicyFactory = Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                Box::new(|_l: Link, _r: u64| LinkFate::Drop) as Box<dyn LinkPolicy>
            } else {
                Box::new(ReliableLinks)
            }
        });
        // p0/p2 can only ever hear themselves + each other; p1 hears all 3.
        let cfg = ClusterConfig { link_policy: Some(factory), ..Default::default() };
        let report = run_cluster(gossips(&[2, 3, 2]), cfg);
        assert!(report.completed, "gossip must finish without p1's traffic");
        let l10 = report.metrics.link(ProcessId(1), ProcessId(0));
        assert_eq!((l10.sent, l10.dropped, l10.delivered), (1, 1, 0));
        let l01 = report.metrics.link(ProcessId(0), ProcessId(1));
        assert_eq!((l01.sent, l01.dropped, l01.delivered), (1, 0, 1));
        assert_eq!(report.metrics.total_dropped(), 2);
        // Dropped messages still count as sent words (3 × 2 remote).
        assert_eq!(report.metrics.correct.words, 6);
    }

    #[test]
    fn delayed_links_arrive_late_and_are_counted() {
        let factory: LinkPolicyFactory = Arc::new(|_me: ProcessId| {
            Box::new(|l: Link, _r: u64| {
                if l.from == ProcessId(0) {
                    LinkFate::DelayRounds(2)
                } else {
                    LinkFate::Deliver
                }
            }) as Box<dyn LinkPolicy>
        });
        let cfg = ClusterConfig { link_policy: Some(factory), ..Default::default() };
        let report = run_cluster(gossips(&[2, 2]), cfg);
        assert!(report.completed);
        let l01 = report.metrics.link(ProcessId(0), ProcessId(1));
        assert_eq!((l01.delayed, l01.delivered), (1, 1), "delayed but eventually delivered");
        // The delayed message surfaces ≥ 2 rounds late, so the run lasts
        // strictly longer than the fault-free 2-round gossip.
        assert!(report.rounds > 2, "rounds = {}", report.rounds);
    }

    #[test]
    fn report_debug_is_informative() {
        let report = run_cluster(gossips(&[1]), ClusterConfig::default());
        let s = format!("{report:?}");
        assert!(s.contains("completed"));
        assert!(s.contains("backpressure"));
    }

    /// Counts rounds; broadcasts a heartbeat each round until done.
    struct Ticker {
        id: ProcessId,
        rounds: u64,
        target: u64,
    }
    impl Actor for Ticker {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            self.rounds += 1;
            if !self.done() {
                ctx.broadcast(Ping(self.rounds));
            }
        }
        fn done(&self) -> bool {
            self.rounds >= self.target
        }
    }

    #[test]
    fn crash_restart_rebuilds_and_completes() {
        let n = 3;
        let target = 8u64;
        let mk = move |i: u32| -> Box<dyn AnyActor<Msg = Ping>> {
            Box::new(Ticker { id: ProcessId(i), rounds: 0, target })
        };
        let fate: ProcessFateFactory = Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                ProcessFate::CrashRestart { at_round: 2, rejoin_after: 2 }
            } else {
                ProcessFate::Run
            }
        });
        // The rebuilder returns a fresh Ticker: the fast-forward then
        // replays rounds 0..rejoin with empty inboxes, so its round
        // counter catches back up with the cluster clock.
        let rebuilder: ActorRebuilder<Ping> = Arc::new(move |me: ProcessId| RebuiltActor {
            actor: mk(me.0),
            resume_step: 0,
            replayed_records: 5,
            journal_fsyncs: 2,
        });
        let cfg = ClusterConfig { process_fate: Some(fate), max_rounds: 50, ..Default::default() };
        let report = run_cluster_with_recovery((0..n).map(mk).collect(), Some(rebuilder), cfg);
        assert!(report.completed, "restarted process must finish: {report:?}");
        assert_eq!(report.metrics.recovery.crash_restarts, 1);
        assert_eq!(report.metrics.recovery.replayed_records, 5);
        assert_eq!(report.metrics.recovery.journal_fsyncs, 2);
        assert!(report.metrics.recovery.recovery_rounds > 0, "rejoined before done");
        let t: &Ticker = report.actors[1].as_any().downcast_ref().unwrap();
        assert!(t.rounds >= target, "rebuilt actor caught up to the cluster clock");
    }

    #[test]
    fn crash_without_rebuilder_is_permanent() {
        let fate: ProcessFateFactory = Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                ProcessFate::CrashRestart { at_round: 1, rejoin_after: 1 }
            } else {
                ProcessFate::Run
            }
        });
        let cfg = ClusterConfig { process_fate: Some(fate), max_rounds: 6, ..Default::default() };
        // p1 dies at round 1 and never rejoins: the run exhausts its
        // round budget instead of completing.
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = (0..2)
            .map(|i| Box::new(Ticker { id: ProcessId(i), rounds: 0, target: 4 }) as _)
            .collect();
        let report = run_cluster_with_recovery(actors, None, cfg);
        assert!(!report.completed);
        assert_eq!(report.metrics.recovery.crash_restarts, 1);
    }
}

#[cfg(test)]
mod overrun_tests {
    use super::*;
    use meba_sim::Actor;

    #[derive(Clone, Debug)]
    struct Noop;
    impl Message for Noop {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Sleeper {
        id: ProcessId,
        rounds: u64,
        sleep: Duration,
        done_after: u64,
    }
    impl Actor for Sleeper {
        type Msg = Noop;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, _ctx: &mut meba_sim::RoundCtx<'_, Noop>) {
            self.rounds += 1;
            // Deliberately exceed the configured round duration.
            std::thread::sleep(self.sleep);
        }
        fn done(&self) -> bool {
            self.rounds >= self.done_after
        }
    }

    fn sleeper(sleep: Duration, done_after: u64) -> Vec<Box<dyn AnyActor<Msg = Noop>>> {
        vec![Box::new(Sleeper { id: ProcessId(0), rounds: 0, sleep, done_after })]
    }

    #[test]
    fn overruns_are_detected() {
        let report = run_cluster(
            sleeper(Duration::from_millis(3), 3),
            ClusterConfig { delta: Duration::from_millis(1), max_rounds: 10, ..Default::default() },
        );
        assert!(report.overruns > 0, "slow rounds must be flagged");
        assert!(report.aborted.is_none(), "default action only counts");
    }

    #[test]
    fn fast_rounds_do_not_overrun() {
        #[derive(Debug)]
        struct Quick {
            id: ProcessId,
            rounds: u64,
        }
        impl Actor for Quick {
            type Msg = Noop;
            fn id(&self) -> ProcessId {
                self.id
            }
            fn on_round(&mut self, _ctx: &mut meba_sim::RoundCtx<'_, Noop>) {
                self.rounds += 1;
            }
            fn done(&self) -> bool {
                self.rounds >= 3
            }
        }
        let actors: Vec<Box<dyn AnyActor<Msg = Noop>>> =
            vec![Box::new(Quick { id: ProcessId(0), rounds: 0 })];
        let report = run_cluster(
            actors,
            ClusterConfig {
                delta: Duration::from_millis(20),
                max_rounds: 10,
                ..Default::default()
            },
        );
        assert_eq!(report.overruns, 0);
        assert!(report.metrics.round_latency.max_us() < 20_000);
    }

    #[test]
    fn sustained_overruns_abort_with_diagnostic() {
        let report = run_cluster(
            sleeper(Duration::from_millis(4), 1_000),
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 200,
                overrun_window: 2,
                overrun_action: OverrunAction::Abort,
                ..Default::default()
            },
        );
        assert!(!report.completed);
        let diag = report.aborted.expect("abort must attach a diagnostic");
        match diag.reason {
            AbortReason::SustainedOverruns { consecutive, window } => {
                assert_eq!(window, 2);
                assert!(consecutive >= 2);
            }
            other => panic!("unexpected abort reason {other:?}"),
        }
        assert!(diag.overruns >= 2);
        assert_eq!(diag.delta, Duration::from_millis(1));
        assert!(report.rounds < 200, "abort must stop the run early");
        let rendered = diag.to_string();
        assert!(rendered.contains("consecutive overrunning rounds"), "{rendered}");
    }

    #[test]
    fn escalation_stretches_delta_until_rounds_fit() {
        let report = run_cluster(
            sleeper(Duration::from_millis(3), 12),
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 100,
                overrun_window: 1,
                overrun_action: OverrunAction::Escalate {
                    multiplier: 4,
                    max_delta: Duration::from_millis(64),
                },
                ..Default::default()
            },
        );
        assert!(report.completed, "escalation must let the sleeper finish");
        assert!(report.aborted.is_none());
        assert!(!report.escalations.is_empty(), "δ must have been escalated");
        for e in &report.escalations {
            assert!(e.new_delta > e.old_delta);
            assert!(e.new_delta <= Duration::from_millis(64));
        }
    }

    #[test]
    fn escalation_respects_max_delta_cap() {
        let report = run_cluster(
            sleeper(Duration::from_millis(3), 6),
            ClusterConfig {
                delta: Duration::from_millis(1),
                max_rounds: 50,
                overrun_window: 1,
                overrun_action: OverrunAction::Escalate {
                    multiplier: 100,
                    max_delta: Duration::from_millis(2),
                },
                ..Default::default()
            },
        );
        // The cap keeps δ at 2 ms (< 3 ms sleep), so overruns persist, but
        // the run still finishes — escalation never aborts.
        assert!(report.completed);
        assert!(report.escalations.len() <= 1, "capped δ can only escalate once");
    }
}
