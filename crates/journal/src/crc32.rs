//! CRC-32 (IEEE 802.3 polynomial), implemented in-crate so the journal
//! has no external dependencies.
//!
//! The journal frames every record as `[len][crc][payload]`; the CRC is
//! what lets replay distinguish a torn tail (power loss mid-append) from
//! a complete record. Collision resistance is irrelevant here — the CRC
//! guards against truncation and bit rot, not an adversary, who could in
//! any case simply delete their own journal.

/// Generates the standard reflected CRC-32 lookup table at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// # Examples
///
/// ```
/// // The canonical CRC-32 check value.
/// assert_eq!(meba_journal::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"journal record payload".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
