//! The write-ahead journal proper: framing, fsync batching, and replay.
//!
//! Layout is a flat sequence of frames, each
//! `[len: u32 BE][crc32(payload): u32 BE][payload]` where `payload` is a
//! canonical [`Record`] encoding. Appends are strictly ordered; replay
//! scans from the start and stops at the first torn or corrupt frame
//! (standard WAL semantics — everything before a valid frame boundary is
//! durable, a torn tail is the record that never finished committing).

use crate::crc32::crc32;
use crate::record::Record;
use meba_crypto::WireCodec;
use std::io::{self, Read, Seek, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Maximum accepted frame payload, guarding replay against a corrupt
/// length prefix committing us to a giant allocation.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Byte-level persistence backend for a [`Journal`].
///
/// Two implementations ship in-crate: [`MemStorage`] (shared buffer that
/// survives a simulated crash of its owner) and [`FileStorage`] (a real
/// append-only file with `fsync`).
pub trait Storage: Send {
    /// Appends raw bytes at the end.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Makes every prior append durable (fsync or its in-memory stand-in).
    fn sync(&mut self) -> io::Result<()>;
    /// Reads the entire current contents.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Discards everything, leaving an empty log ([`Journal::compact`]'s
    /// rewrite step).
    fn reset(&mut self) -> io::Result<()>;
}

/// A shareable in-memory journal backing store.
///
/// Clones share the same bytes, which is what models durability across a
/// *simulated* crash: the actor (and its [`Journal`] handle) is dropped,
/// but the buffer — the "disk" — survives, and the restarted actor opens
/// a fresh `Journal` over a clone of the buffer.
#[derive(Clone, Debug, Default)]
pub struct MemBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.lock().expect("journal buffer poisoned").len()
    }

    /// Whether nothing has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the raw contents (test/diagnostic use).
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().expect("journal buffer poisoned").clone()
    }

    /// Truncates to `len` bytes — simulates a torn tail after a crash
    /// mid-append (test use).
    pub fn truncate(&self, len: usize) {
        self.bytes.lock().expect("journal buffer poisoned").truncate(len);
    }

    /// Flips one bit — simulates at-rest corruption (test use).
    pub fn corrupt_bit(&self, byte: usize, bit: u8) {
        let mut bytes = self.bytes.lock().expect("journal buffer poisoned");
        if let Some(b) = bytes.get_mut(byte) {
            *b ^= 1 << (bit & 7);
        }
    }
}

/// [`Storage`] over a [`MemBuffer`].
#[derive(Debug)]
pub struct MemStorage {
    buf: MemBuffer,
}

impl MemStorage {
    /// Opens storage over `buf`; appends go at its current end.
    pub fn new(buf: MemBuffer) -> Self {
        MemStorage { buf }
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.buf.bytes.lock().expect("journal buffer poisoned").extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.buf.contents())
    }
    fn reset(&mut self) -> io::Result<()> {
        self.buf.bytes.lock().expect("journal buffer poisoned").clear();
        Ok(())
    }
}

/// [`Storage`] over an append-only file, with real `fsync`
/// (`File::sync_data`) on [`Storage::sync`].
#[derive(Debug)]
pub struct FileStorage {
    file: std::fs::File,
}

impl FileStorage {
    /// Opens (creating if absent) the journal file at `path` for append.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file =
            std::fs::OpenOptions::new().read(true).create(true).append(true).open(path.as_ref())?;
        Ok(FileStorage { file })
    }
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.flush()?;
        let mut out = Vec::new();
        let pos = self.file.stream_position()?;
        self.file.seek(io::SeekFrom::Start(0))?;
        self.file.read_to_end(&mut out)?;
        self.file.seek(io::SeekFrom::Start(pos))?;
        Ok(out)
    }
    fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(io::SeekFrom::Start(0))?;
        Ok(())
    }
}

/// Append/sync counters for one journal handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended through this handle.
    pub appended: u64,
    /// Syncs issued (batched: one per [`Journal::sync_every`] appends,
    /// plus explicit flushes).
    pub fsyncs: u64,
}

/// What replay found in the journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Bytes after the last intact frame (a torn or corrupt tail from a
    /// crash mid-append); `0` for a cleanly closed journal.
    pub torn_bytes: u64,
}

/// An append-only, CRC-checked, fsync-batched write-ahead journal.
///
/// # Examples
///
/// ```
/// use meba_journal::{Journal, MemBuffer, Record};
///
/// let disk = MemBuffer::new();
/// let mut j = Journal::in_memory(disk.clone());
/// j.append(&Record::CommitLevel { level: 2 }).unwrap();
/// j.flush().unwrap();
///
/// // "Crash": drop the journal handle; the buffer (the disk) survives.
/// drop(j);
/// let mut j2 = Journal::in_memory(disk);
/// let replay = j2.replay().unwrap();
/// assert_eq!(replay.records, vec![Record::CommitLevel { level: 2 }]);
/// assert_eq!(replay.torn_bytes, 0);
/// ```
pub struct Journal {
    storage: Box<dyn Storage>,
    sync_every: u64,
    unsynced: u64,
    stats: JournalStats,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("sync_every", &self.sync_every)
            .field("unsynced", &self.unsynced)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Journal {
    /// Default append batch between syncs.
    pub const DEFAULT_SYNC_EVERY: u64 = 8;

    /// Wraps `storage`, syncing after every `sync_every` appended records
    /// (`0` is treated as `1`: sync on every append).
    pub fn new(storage: Box<dyn Storage>, sync_every: u64) -> Self {
        Journal {
            storage,
            sync_every: sync_every.max(1),
            unsynced: 0,
            stats: JournalStats::default(),
        }
    }

    /// An in-memory journal over `buf` with the default sync batching.
    pub fn in_memory(buf: MemBuffer) -> Self {
        Self::new(Box::new(MemStorage::new(buf)), Self::DEFAULT_SYNC_EVERY)
    }

    /// A file-backed journal at `path` with the default sync batching.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn open_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(Box::new(FileStorage::open(path)?), Self::DEFAULT_SYNC_EVERY))
    }

    /// Counters for this handle.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The configured append batch between syncs.
    pub fn sync_every(&self) -> u64 {
        self.sync_every
    }

    /// Appends one record, framed and CRC-stamped, syncing if the batch
    /// quota is reached.
    ///
    /// # Errors
    ///
    /// Propagates storage errors; on error the record must be considered
    /// not durable and nothing derived from it may be externalized.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        let payload = rec.to_wire_bytes();
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "record too large"))?;
        if len > MAX_FRAME {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "record too large"));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        self.storage.append(&frame)?;
        self.stats.appended += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.flush()?;
        }
        Ok(())
    }

    /// Forces a sync of any unsynced appends (no-op when none pending).
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.storage.sync()?;
        self.stats.fsyncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Compacts the journal to a snapshot point: rewrites the log as
    /// `[snapshot, tail...]` and syncs. Everything the snapshot covers
    /// (per-slot `Proposed`/`Committed`/`Transferred` records below its
    /// `upto_slot`) is dropped by the caller choosing `tail`; replay
    /// afterwards sees the snapshot first and seeds state from it.
    ///
    /// The rewrite is not crash-atomic: a crash between the reset and
    /// the final sync can leave a shorter (or empty) log. That is safe
    /// for the service's use — the snapshot only covers state every
    /// correct replica already committed, so a replica that loses it
    /// re-converges through certified state transfer rather than by
    /// re-externalizing anything. A production WAL would shadow-write
    /// and rename instead.
    ///
    /// # Errors
    ///
    /// Propagates storage errors; on error the journal contents are
    /// unspecified but replay still yields only intact frames.
    pub fn compact(&mut self, snapshot: &Record, tail: &[Record]) -> io::Result<()> {
        self.storage.reset()?;
        self.unsynced = 0;
        self.append(snapshot)?;
        for rec in tail {
            self.append(rec)?;
        }
        self.flush()
    }

    /// Scans the journal from the start, CRC-checking every frame, and
    /// returns the intact prefix. A truncated length/CRC header, a
    /// payload shorter than its length prefix, a CRC mismatch, or an
    /// undecodable record all end the scan there (torn tail).
    ///
    /// # Errors
    ///
    /// Propagates storage read errors only — a damaged tail is reported
    /// in [`ReplayReport::torn_bytes`], not as an error.
    pub fn replay(&mut self) -> io::Result<ReplayReport> {
        let bytes = self.storage.read_all()?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 8 {
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_be_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_FRAME as usize || bytes.len() - pos - 8 < len {
                break;
            }
            let payload = &bytes[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break;
            }
            match Record::from_wire_bytes(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
            pos += 8 + len;
        }
        Ok(ReplayReport { records, torn_bytes: (bytes.len() - pos) as u64 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::{Digest, ProcessId};

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Step { step: 0, inbox: vec![] },
            Record::Signed { context: b"ctx".to_vec(), digest: Digest::of(b"p") },
            Record::Step { step: 1, inbox: vec![(ProcessId(2), vec![7, 7])] },
            Record::CommitLevel { level: 1 },
            Record::Decided { value: vec![42] },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let disk = MemBuffer::new();
        let mut j = Journal::in_memory(disk.clone());
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        j.flush().unwrap();
        let report = Journal::in_memory(disk).replay().unwrap();
        assert_eq!(report.records, sample_records());
        assert_eq!(report.torn_bytes, 0);
    }

    #[test]
    fn fsyncs_are_batched() {
        let mut j = Journal::new(Box::new(MemStorage::new(MemBuffer::new())), 4);
        for _ in 0..10 {
            j.append(&Record::CommitLevel { level: 0 }).unwrap();
        }
        // 10 appends at batch 4 → syncs after 4 and 8.
        assert_eq!(j.stats().appended, 10);
        assert_eq!(j.stats().fsyncs, 2);
        j.flush().unwrap();
        assert_eq!(j.stats().fsyncs, 3);
        // Idempotent when nothing is pending.
        j.flush().unwrap();
        assert_eq!(j.stats().fsyncs, 3);
    }

    #[test]
    fn torn_tail_is_cut_at_last_intact_frame() {
        let disk = MemBuffer::new();
        let mut j = Journal::in_memory(disk.clone());
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        j.flush().unwrap();
        let full = disk.len();
        // Cut mid-way through the last frame.
        disk.truncate(full - 3);
        let report = Journal::in_memory(disk).replay().unwrap();
        assert_eq!(report.records.len(), sample_records().len() - 1);
        assert!(report.torn_bytes > 0);
    }

    #[test]
    fn corrupt_payload_fails_crc_and_ends_replay() {
        let disk = MemBuffer::new();
        let mut j = Journal::in_memory(disk.clone());
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        j.flush().unwrap();
        // Flip a bit in the second frame's payload: first frame is
        // 8 bytes header + its payload; frame 2 payload starts at +8.
        let first_payload = sample_records()[0].to_wire_bytes().len();
        disk.corrupt_bit(8 + first_payload + 8 + 2, 0);
        let report = Journal::in_memory(disk).replay().unwrap();
        assert_eq!(report.records, sample_records()[..1].to_vec());
        assert!(report.torn_bytes > 0);
    }

    #[test]
    fn forged_giant_length_prefix_is_torn_not_oom() {
        let disk = MemBuffer::new();
        let mut s = MemStorage::new(disk.clone());
        s.append(&u32::MAX.to_be_bytes()).unwrap();
        s.append(&[0u8; 12]).unwrap();
        let report = Journal::in_memory(disk).replay().unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.torn_bytes, 16);
    }

    #[test]
    fn compact_rewrites_to_snapshot_plus_tail() {
        let disk = MemBuffer::new();
        let mut j = Journal::in_memory(disk.clone());
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        j.flush().unwrap();
        let before = disk.len();
        let snapshot = Record::Snapshot { upto_slot: 4, state: vec![1, 2, 3] };
        let tail = [Record::Committed { slot: 4, value: vec![9] }];
        j.compact(&snapshot, &tail).unwrap();
        assert!(disk.len() < before, "compaction must shrink the log");
        let report = Journal::in_memory(disk.clone()).replay().unwrap();
        assert_eq!(report.records, vec![snapshot.clone(), tail[0].clone()]);
        assert_eq!(report.torn_bytes, 0);
        // Appends after compaction land after the retained tail.
        j.append(&Record::CommitLevel { level: 5 }).unwrap();
        j.flush().unwrap();
        let report = Journal::in_memory(disk).replay().unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.records[0], snapshot);
    }

    #[test]
    fn file_storage_roundtrips_and_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("meba-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.bin");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = Journal::open_file(&path).unwrap();
            for r in sample_records() {
                j.append(&r).unwrap();
            }
            j.flush().unwrap();
        }
        let mut reopened = Journal::open_file(&path).unwrap();
        let report = reopened.replay().unwrap();
        assert_eq!(report.records, sample_records());
        // And appends after reopen land at the end.
        reopened.append(&Record::CommitLevel { level: 9 }).unwrap();
        reopened.flush().unwrap();
        let report = reopened.replay().unwrap();
        assert_eq!(report.records.len(), sample_records().len() + 1);
        let _ = std::fs::remove_file(&path);
    }
}
