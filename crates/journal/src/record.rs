//! The journal's record vocabulary.
//!
//! Every protocol-critical event is journaled *before* it is
//! externalized (DESIGN.md §11). Records reuse the workspace's canonical
//! [`WireCodec`] encoding, so the journal inherits the codec's
//! canonicality guarantees: one record, one byte representation.

use meba_crypto::{DecodeError, Decoder, Digest, Encoder, ProcessId, WireCodec};

/// One durable journal entry.
///
/// The [`Record::Step`] entries alone reconstruct a deterministic
/// protocol exactly (replaying the same inboxes through the same state
/// machine reproduces the same state *and the same signatures*, since
/// the PKI signs deterministically). The event records — signatures,
/// certificates, commit levels, decisions — are belt-and-braces
/// metadata: they rebuild the never-re-sign-conflicting guard without
/// re-running the protocol and let auditors inspect what a process
/// committed to without decoding protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// One protocol step and the exact inbox it consumed, with each
    /// message in its canonical wire encoding.
    Step {
        /// The step index the protocol executed.
        step: u64,
        /// `(sender, canonical message bytes)` pairs, in delivery order.
        inbox: Vec<(ProcessId, Vec<u8>)>,
    },
    /// A signature this process produced, journaled before the signed
    /// message may leave the process.
    Signed {
        /// Equivocation context: domain tag plus the slot-identifying
        /// fields (session, phase/level). Signing two *different*
        /// payloads with the same context is equivocation.
        context: Vec<u8>,
        /// Digest of the full signing preimage actually signed.
        digest: Digest,
    },
    /// A certificate (threshold/aggregate quorum) this process received
    /// and accepted.
    CertReceived {
        /// Kind discriminant (protocol-defined, e.g. commit vs. decide).
        kind: u32,
        /// Step at which the certificate was accepted.
        step: u64,
    },
    /// A `commit_level` transition.
    CommitLevel {
        /// The new commit level.
        level: u64,
    },
    /// A decision, terminal for the instance.
    Decided {
        /// Canonical encoding of the decided value.
        value: Vec<u8>,
    },
    /// A service-level proposal bound to a log slot, journaled before
    /// the slot's instance may externalize it (`meba-service`): after a
    /// crash the replica knows exactly which batch is in doubt for
    /// which slot, and an auditor can check that no replica ever bound
    /// two different values to one slot.
    Proposed {
        /// The log slot the value was bound to.
        slot: u64,
        /// Canonical encoding of the proposed value (batch).
        value: Vec<u8>,
    },
    /// A log slot's agreed value applied to the service state machine,
    /// journaled before client-visible `Committed` replies leave the
    /// process — replay rebuilds the `(client, seq)` dedup table and
    /// the applied state exactly.
    Committed {
        /// The applied slot.
        slot: u64,
        /// Canonical encoding of the slot's agreed value.
        value: Vec<u8>,
    },
    /// A slot adopted via certified state transfer rather than local
    /// agreement (DESIGN.md §16), journaled before the transferred value
    /// is applied — replay distinguishes "this replica decided" from
    /// "this replica caught up", and a restart mid-transfer resumes
    /// from the watermark instead of re-fetching.
    Transferred {
        /// The adopted slot.
        slot: u64,
        /// Canonical encoding of the slot's agreed value (empty = `⊥`).
        value: Vec<u8>,
    },
    /// Transferable commit evidence for a slot this replica holds
    /// (the encoded BA-level value plus its finalize certificate),
    /// journaled so a restarted replica can keep serving *certified*
    /// state transfer for slots it committed in a previous lifetime.
    Evidence {
        /// The certified slot.
        slot: u64,
        /// Canonical encoding of the slot's `CommitEvidence`.
        evidence: Vec<u8>,
    },
    /// A compaction point: the opaque service snapshot covering every
    /// slot below `upto_slot`. Written by `Journal::compact` as the
    /// first record of the rewritten log; replay seeds state from it
    /// and earlier per-slot records are gone.
    Snapshot {
        /// Slots `< upto_slot` are covered by `state`.
        upto_slot: u64,
        /// Opaque service-encoded state (KV, dedup table, watermarks).
        state: Vec<u8>,
    },
}

const TAG_STEP: u32 = 0;
const TAG_SIGNED: u32 = 1;
const TAG_CERT: u32 = 2;
const TAG_COMMIT: u32 = 3;
const TAG_DECIDED: u32 = 4;
const TAG_PROPOSED: u32 = 5;
const TAG_COMMITTED: u32 = 6;
const TAG_TRANSFERRED: u32 = 7;
const TAG_EVIDENCE: u32 = 8;
const TAG_SNAPSHOT: u32 = 9;

impl WireCodec for Record {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            Record::Step { step, inbox } => {
                enc.put_u32(TAG_STEP);
                enc.put_u64(*step);
                enc.put_u64(inbox.len() as u64);
                for (from, bytes) in inbox {
                    enc.put_id(*from);
                    enc.put_bytes(bytes);
                }
            }
            Record::Signed { context, digest } => {
                enc.put_u32(TAG_SIGNED);
                enc.put_bytes(context);
                enc.put_digest(digest);
            }
            Record::CertReceived { kind, step } => {
                enc.put_u32(TAG_CERT);
                enc.put_u32(*kind);
                enc.put_u64(*step);
            }
            Record::CommitLevel { level } => {
                enc.put_u32(TAG_COMMIT);
                enc.put_u64(*level);
            }
            Record::Decided { value } => {
                enc.put_u32(TAG_DECIDED);
                enc.put_bytes(value);
            }
            Record::Proposed { slot, value } => {
                enc.put_u32(TAG_PROPOSED);
                enc.put_u64(*slot);
                enc.put_bytes(value);
            }
            Record::Committed { slot, value } => {
                enc.put_u32(TAG_COMMITTED);
                enc.put_u64(*slot);
                enc.put_bytes(value);
            }
            Record::Transferred { slot, value } => {
                enc.put_u32(TAG_TRANSFERRED);
                enc.put_u64(*slot);
                enc.put_bytes(value);
            }
            Record::Evidence { slot, evidence } => {
                enc.put_u32(TAG_EVIDENCE);
                enc.put_u64(*slot);
                enc.put_bytes(evidence);
            }
            Record::Snapshot { upto_slot, state } => {
                enc.put_u32(TAG_SNAPSHOT);
                enc.put_u64(*upto_slot);
                enc.put_bytes(state);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            TAG_STEP => {
                let step = dec.get_u64()?;
                let len = dec.get_u64()?;
                let len = usize::try_from(len)
                    .map_err(|_| DecodeError::Invalid { what: "inbox length overflows usize" })?;
                let mut inbox = Vec::new();
                for _ in 0..len {
                    let from = dec.get_id()?;
                    let bytes = dec.get_bytes()?;
                    inbox.push((from, bytes));
                }
                Ok(Record::Step { step, inbox })
            }
            TAG_SIGNED => {
                let context = dec.get_bytes()?;
                let digest = dec.get_digest()?;
                Ok(Record::Signed { context, digest })
            }
            TAG_CERT => {
                let kind = dec.get_u32()?;
                let step = dec.get_u64()?;
                Ok(Record::CertReceived { kind, step })
            }
            TAG_COMMIT => Ok(Record::CommitLevel { level: dec.get_u64()? }),
            TAG_DECIDED => Ok(Record::Decided { value: dec.get_bytes()? }),
            TAG_PROPOSED => {
                let slot = dec.get_u64()?;
                let value = dec.get_bytes()?;
                Ok(Record::Proposed { slot, value })
            }
            TAG_COMMITTED => {
                let slot = dec.get_u64()?;
                let value = dec.get_bytes()?;
                Ok(Record::Committed { slot, value })
            }
            TAG_TRANSFERRED => {
                let slot = dec.get_u64()?;
                let value = dec.get_bytes()?;
                Ok(Record::Transferred { slot, value })
            }
            TAG_EVIDENCE => {
                let slot = dec.get_u64()?;
                let evidence = dec.get_bytes()?;
                Ok(Record::Evidence { slot, evidence })
            }
            TAG_SNAPSHOT => {
                let upto_slot = dec.get_u64()?;
                let state = dec.get_bytes()?;
                Ok(Record::Snapshot { upto_slot, state })
            }
            _ => Err(DecodeError::Invalid { what: "unknown journal record tag" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Step { step: 0, inbox: vec![] },
            Record::Step {
                step: 7,
                inbox: vec![(ProcessId(1), vec![1, 2, 3]), (ProcessId(4), vec![])],
            },
            Record::Signed { context: b"meba/weakba/vote".to_vec(), digest: Digest::of(b"v") },
            Record::CertReceived { kind: 2, step: 9 },
            Record::CommitLevel { level: 3 },
            Record::Decided { value: vec![0xAA; 16] },
            Record::Proposed { slot: 4, value: vec![1, 2, 3, 4] },
            Record::Committed { slot: 4, value: vec![1, 2, 3, 4] },
            Record::Transferred { slot: 5, value: vec![7, 7] },
            Record::Transferred { slot: 6, value: vec![] },
            Record::Evidence { slot: 5, evidence: vec![0xC0; 40] },
            Record::Snapshot { upto_slot: 7, state: vec![9, 8, 7] },
        ]
    }

    #[test]
    fn records_roundtrip_canonically() {
        for rec in samples() {
            let bytes = rec.to_wire_bytes();
            let back = Record::from_wire_bytes(&bytes).unwrap();
            assert_eq!(back, rec);
            // Canonicality: re-encoding the decoded value reproduces the
            // exact input bytes.
            assert_eq!(back.to_wire_bytes(), bytes);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(99);
        assert!(Record::from_wire_bytes(&enc.into_bytes()).is_err());
    }

    #[test]
    fn truncation_rejected_at_every_prefix() {
        let rec = Record::Step { step: 3, inbox: vec![(ProcessId(2), vec![9, 9])] };
        let bytes = rec.to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(Record::from_wire_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }
}
