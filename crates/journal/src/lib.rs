//! Durable write-ahead journal for crash-recovering `meba` processes.
//!
//! The paper's resilience accounting (`n = 2t + 1`) counts a process as
//! either correct or Byzantine — there is no third state for "crashed,
//! restarted, and forgot what it signed". A process that comes back with
//! empty state can sign a conflicting vote and silently *manufacture* a
//! Byzantine fault. This crate closes that gap:
//!
//! * [`Record`] — the journal vocabulary: per-step inboxes (sufficient to
//!   replay a deterministic protocol exactly), signatures produced,
//!   certificates received, `commit_level` transitions, and decisions;
//! * [`Journal`] — append-only, CRC-checked, fsync-batched framing over
//!   a pluggable [`Storage`] backend ([`MemBuffer`]/[`MemStorage`] for
//!   simulated crashes, [`FileStorage`] for real files);
//! * replay ([`Journal::replay`]) with torn-tail detection, feeding the
//!   `Recoverable` wrapper in `meba-core` and the signing guard in
//!   `meba-crypto`.
//!
//! The invariant the whole stack enforces (docs/CORRECTNESS.md §10): a
//! signature is journaled and synced *before* the message carrying it
//! may leave the process, so after any crash the restarted process knows
//! every signature it ever externalized and can refuse to contradict it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc32;
pub mod record;
pub mod wal;

pub use crc32::crc32;
pub use record::Record;
pub use wal::{FileStorage, Journal, JournalStats, MemBuffer, MemStorage, ReplayReport, Storage};
