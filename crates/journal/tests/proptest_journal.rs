//! Property tests for the write-ahead journal: replay is idempotent
//! (replay twice ≡ replay once), append-after-replay extends the same
//! history, and torn tails of any length never corrupt the intact prefix.

use meba_crypto::Digest;
use meba_journal::{Journal, MemBuffer, MemStorage, Record};
use proptest::prelude::*;

/// Decodes a compact `(kind, a)` generator pair into one of the five
/// record kinds, with a payload derived from `a` so two different pairs
/// yield two different records.
fn record_from(kind: u8, a: u64) -> Record {
    let bytes: Vec<u8> =
        a.to_be_bytes().iter().cycle().take(4 + (a % 13) as usize).copied().collect();
    match kind % 5 {
        0 => Record::Step {
            step: a,
            inbox: vec![(meba_crypto::ProcessId(u32::try_from(a % 7).unwrap()), bytes)],
        },
        1 => Record::Signed { context: bytes, digest: Digest::of(&a.to_be_bytes()) },
        2 => Record::CertReceived { kind: u32::try_from(a % 9).unwrap(), step: a },
        3 => Record::CommitLevel { level: a },
        _ => Record::Decided { value: bytes },
    }
}

fn records_from(kinds: &[u8], nums: &[u64]) -> Vec<Record> {
    kinds.iter().zip(nums).map(|(&k, &a)| record_from(k, a)).collect()
}

proptest! {
    #[test]
    fn replay_twice_equals_replay_once(
        kinds in proptest::collection::vec(any::<u8>(), 0..32),
        nums in proptest::collection::vec(any::<u64>(), 32usize),
        sync_every in 1u64..8,
    ) {
        let records = records_from(&kinds, &nums);
        let buf = MemBuffer::new();
        let mut j = Journal::new(Box::new(MemStorage::new(buf.clone())), sync_every);
        for r in &records {
            j.append(r).unwrap();
        }
        j.flush().unwrap();

        let mut once = Journal::in_memory(buf.clone());
        let first = once.replay().unwrap();
        prop_assert_eq!(&first.records, &records);
        prop_assert_eq!(first.torn_bytes, 0);

        // Idempotence: a second replay — same handle or a fresh one —
        // sees the identical history.
        let again = once.replay().unwrap();
        prop_assert_eq!(&again.records, &records);
        let mut fresh = Journal::in_memory(buf);
        prop_assert_eq!(&fresh.replay().unwrap().records, &records);
    }

    #[test]
    fn append_after_replay_extends_history(
        kinds in proptest::collection::vec(any::<u8>(), 1..16),
        nums in proptest::collection::vec(any::<u64>(), 16usize),
        split in 0usize..16,
    ) {
        let records = records_from(&kinds, &nums);
        let split = split.min(records.len());
        let buf = MemBuffer::new();
        let mut j = Journal::in_memory(buf.clone());
        for r in &records[..split] {
            j.append(r).unwrap();
        }
        j.flush().unwrap();

        // A recovering process replays, then appends the rest of its life.
        let mut j2 = Journal::in_memory(buf.clone());
        prop_assert_eq!(&j2.replay().unwrap().records, &records[..split].to_vec());
        for r in &records[split..] {
            j2.append(r).unwrap();
        }
        j2.flush().unwrap();
        let mut j3 = Journal::in_memory(buf);
        prop_assert_eq!(&j3.replay().unwrap().records, &records);
    }

    #[test]
    fn torn_tail_of_any_length_preserves_prefix(
        kinds in proptest::collection::vec(any::<u8>(), 1..12),
        nums in proptest::collection::vec(any::<u64>(), 12usize),
        cut in 1usize..64,
    ) {
        let records = records_from(&kinds, &nums);
        let buf = MemBuffer::new();
        let mut j = Journal::in_memory(buf.clone());
        for r in &records {
            j.append(r).unwrap();
        }
        j.flush().unwrap();
        let full = buf.len();
        let cut = cut.min(full);
        buf.truncate(full - cut);

        let mut torn = Journal::in_memory(buf.clone());
        let report = torn.replay().unwrap();
        // Whatever survives is a strict prefix of the appended history,
        // and replaying the torn journal again is still idempotent.
        prop_assert!(report.records.len() <= records.len());
        prop_assert_eq!(&records[..report.records.len()], &report.records[..]);
        let mut torn2 = Journal::in_memory(buf);
        prop_assert_eq!(&torn2.replay().unwrap().records, &report.records);
    }
}
