//! Round pacing: when a round begins and whether it overran.
//!
//! The engine separates *what happens in a round* (the per-process driver
//! in [`crate::process`]) from *when rounds happen* (a [`Pacer`]). Two
//! pacers ship with the engine:
//!
//! * [`DeadlinePacer`] — wall-clock δ-pacing with escalation, shared by
//!   the threaded and TCP backends. Rounds start at real instants;
//!   processing past a deadline is a synchrony overrun.
//! * [`VirtualPacer`] — a virtual nanosecond clock for the discrete-event
//!   backend. Rounds are instants on a simulated timeline; nothing ever
//!   sleeps and nothing can overrun.
//!
//! The lockstep simulator (`meba-sim`) is the degenerate third case: its
//! barrier *is* the pacer (every process steps atomically), which is why
//! it needs no wall-clock machinery at all.

use crate::des::DesConfigError;
use parking_lot::RwLock;
use std::fmt;
use std::time::{Duration, Instant};

/// Why a run was aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// Processing overran δ for `consecutive` coordinator rounds, meeting
    /// the configured `window`.
    SustainedOverruns {
        /// Consecutive overrunning rounds observed.
        consecutive: u32,
        /// The configured [`crate::ClusterConfig::overrun_window`].
        window: u32,
    },
    /// A worker thread waited unreasonably long for the coordinator to
    /// approve its next round — the coordinator stalled or died.
    CoordinatorStalled,
}

/// Structured diagnostic attached to an aborted run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterDiagnostic {
    /// What went wrong.
    pub reason: AbortReason,
    /// Last round that was executed before the stop.
    pub round: u64,
    /// Total overruns observed at the time of the abort.
    pub overruns: u64,
    /// Effective δ when the run stopped.
    pub delta: Duration,
}

impl fmt::Display for ClusterDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.reason {
            AbortReason::SustainedOverruns { consecutive, window } => write!(
                f,
                "aborted at round {}: {} consecutive overrunning rounds (window {}), \
                 {} total overruns, δ = {:?}",
                self.round, consecutive, window, self.overruns, self.delta
            ),
            AbortReason::CoordinatorStalled => write!(
                f,
                "aborted at round {}: coordinator stalled (δ = {:?}, {} overruns)",
                self.round, self.delta, self.overruns
            ),
        }
    }
}

/// When rounds begin, backend-agnostically. Implementations decide what
/// "time" means: real instants ([`DeadlinePacer`]) or virtual nanoseconds
/// ([`VirtualPacer`]).
pub trait Pacer {
    /// Effective δ for `round`.
    fn delta_at(&self, round: u64) -> Duration;
    /// Blocks the caller until `round` may begin. No-op for virtual
    /// backends, where the event loop owns the clock.
    fn wait_for_round(&self, _round: u64) {}
    /// Whether the current moment is already past the deadline of
    /// `round` — i.e. a synchrony overrun. Virtual backends never
    /// overrun.
    fn overran(&self, _round: u64) -> bool {
        false
    }
}

/// One pacing regime: rounds from `from_round` on start at
/// `offset_ns + (r - from_round) · delta_ns` nanoseconds past the cluster
/// epoch. All arithmetic is `u128`, so no round index can truncate or
/// wrap the schedule.
#[derive(Clone, Copy)]
struct Segment {
    from_round: u64,
    offset_ns: u128,
    delta_ns: u128,
}

/// Wall-clock deadline schedule shared by all threads of a paced run;
/// escalations append segments.
pub struct DeadlinePacer {
    epoch: Instant,
    segments: RwLock<Vec<Segment>>,
}

impl DeadlinePacer {
    /// A schedule whose round 0 starts at `epoch`, with uniform δ until
    /// the first escalation.
    pub fn new(epoch: Instant, delta: Duration) -> Self {
        let seg = Segment { from_round: 0, offset_ns: 0, delta_ns: delta.as_nanos().max(1) };
        DeadlinePacer { epoch, segments: RwLock::new(vec![seg]) }
    }

    fn segment_for(&self, round: u64) -> Segment {
        let segments = self.segments.read();
        *segments.iter().rev().find(|s| s.from_round <= round).unwrap_or(&segments[0])
    }

    /// Wall-clock start of `round` (== deadline of `round - 1`).
    pub fn round_start(&self, round: u64) -> Instant {
        let s = self.segment_for(round);
        let ns = s.offset_ns + u128::from(round - s.from_round) * s.delta_ns;
        self.epoch + Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Re-paces rounds from `from_round` on with `new_delta`. Rounds
    /// before `from_round` keep their schedule, so already-approved
    /// deadlines never move.
    pub fn escalate(&self, from_round: u64, new_delta: Duration) {
        let mut segments = self.segments.write();
        let last = *segments.last().expect("pacer always has a segment");
        debug_assert!(from_round >= last.from_round);
        let offset_ns = last.offset_ns + u128::from(from_round - last.from_round) * last.delta_ns;
        segments.push(Segment { from_round, offset_ns, delta_ns: new_delta.as_nanos().max(1) });
    }
}

impl Pacer for DeadlinePacer {
    fn delta_at(&self, round: u64) -> Duration {
        let ns = self.segment_for(round).delta_ns;
        Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    fn wait_for_round(&self, round: u64) {
        let start = self.round_start(round);
        let now = Instant::now();
        if start > now {
            std::thread::sleep(start - now);
        }
    }

    fn overran(&self, round: u64) -> bool {
        Instant::now() > self.round_start(round + 1)
    }
}

/// Virtual clock for the discrete-event backend: round `r` is the instant
/// `r · δ` on a simulated nanosecond timeline. Escalation never happens —
/// virtual processing is instantaneous, so synchrony can never be
/// violated by the host machine.
#[derive(Clone, Copy, Debug)]
pub struct VirtualPacer {
    delta_ns: u64,
}

impl VirtualPacer {
    /// A virtual schedule with uniform δ of `delta_ns` nanoseconds.
    ///
    /// # Errors
    ///
    /// Rejects `delta_ns < 2` with the same typed
    /// [`DesConfigError::DeltaTooSmall`] that [`crate::run_des_cluster`]
    /// reports: link latency is sampled strictly inside `(0, δ)`, and on
    /// an integer nanosecond timeline that open interval is empty for
    /// δ ≤ 1 — so no caller can construct an invalid pacer unchecked.
    pub fn new(delta_ns: u64) -> Result<Self, DesConfigError> {
        if delta_ns < 2 {
            return Err(DesConfigError::DeltaTooSmall { delta_ns });
        }
        Ok(VirtualPacer { delta_ns })
    }

    /// δ in virtual nanoseconds.
    pub fn delta_ns(&self) -> u64 {
        self.delta_ns
    }

    /// Virtual start instant of `round`.
    pub fn round_start_ns(&self, round: u64) -> u128 {
        u128::from(round) * u128::from(self.delta_ns)
    }
}

impl Pacer for VirtualPacer {
    fn delta_at(&self, _round: u64) -> Duration {
        Duration::from_nanos(self.delta_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_pacer_rejects_sub_two_deltas_typed() {
        for bad in [0u64, 1] {
            assert_eq!(
                VirtualPacer::new(bad).unwrap_err(),
                DesConfigError::DeltaTooSmall { delta_ns: bad }
            );
        }
        let p = VirtualPacer::new(2).expect("2 ns is the smallest legal δ");
        assert_eq!(p.delta_ns(), 2);
        assert_eq!(p.round_start_ns(3), 6);
    }
}
