//! Runtime-agnostic round engine for the `meba` protocols.
//!
//! The workspace runs the same [`meba_sim::Actor`] state machines on four
//! backends — the lockstep simulator (`meba-sim`), a threaded wall-clock
//! cluster (`meba-net`), a real-TCP cluster (`meba-wire`), and this
//! crate's deterministic discrete-event backend for large n. Three of
//! those used to hand-roll the same per-process round loop; this crate is
//! its single home:
//!
//! * [`Transport`] — how bytes move: send / drain / sever / crash, with
//!   backpressure surfaced for accounting. Implementations:
//!   [`ChannelTransport`] (bounded crossbeam channels), `meba-wire`'s
//!   TCP mesh, and the discrete-event queue in [`des`].
//! * [`Pacer`] — when rounds happen: [`DeadlinePacer`] (wall clock with
//!   δ-escalation) and [`VirtualPacer`] (discrete-event virtual time);
//!   the lockstep simulator's barrier is the degenerate third case.
//! * [`RoundDriverConfig`] — *why* a process advances: the lockstep
//!   global schedule (default), or event-driven quorum-or-timeout
//!   partial synchrony where each process advances on a quorum of
//!   prior-round senders or its local δ-estimate timer, whichever fires
//!   first (see [`driver`]).
//! * [`EngineProcess`] / [`run_live_round`] — the one per-process driver:
//!   inbox partitioning by `sent_round`, word/byte/per-link accounting,
//!   [`SendPolicy`] fault application, [`ProcessFate`] crash-restart
//!   execution, and journal-replay rejoin.
//! * [`run_threaded_cluster`] — generic thread-per-process execution with
//!   coordinator stop decisions, overrun monitoring, and δ-escalation
//!   (the machinery behind `meba_net::run_cluster` and
//!   `meba_wire::run_tcp_cluster`).
//! * [`run_des_cluster`] — the fourth backend: seeded virtual clock,
//!   calendar-bucket event queue ([`calendar`]), no threads; n = 100–200
//!   runs in milliseconds for asymptotic word/round curves, and
//!   failure-free runs scale past n = 4000.
//!
//! Fates are resolved exactly once per process, up front
//! ([`resolve_fates`]): a `CrashRestart` without a rebuilder is rejected
//! (downgraded to a permanent crash) before the run starts instead of
//! being discovered mid-run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod channel;
pub mod config;
pub mod control;
pub mod des;
pub mod driver;
pub mod fate;
pub mod pacer;
pub mod process;
pub mod transport;

pub use calendar::{CalendarQueue, TimeKeyed};
pub use channel::{channel_mesh, ChannelTransport};
pub use config::{ClusterConfig, ClusterReport, Escalation, LinkPolicyFactory, OverrunAction};
pub use control::run_threaded_cluster;
pub use des::{run_des_cluster, DesConfig, DesConfigError, LinkDelayFloor};
pub use driver::{
    default_quorum, update_backoff_shift, AdvanceCause, DriverConfigError, RoundDriverConfig,
    MAX_BACKOFF_SHIFT,
};
pub use fate::{
    resolve_fate, resolve_fates, ActorRebuilder, ProcessFate, ProcessFateFactory, RebuiltActor,
    ResolvedFate,
};
pub use pacer::{AbortReason, ClusterDiagnostic, DeadlinePacer, Pacer, VirtualPacer};
pub use process::{run_live_round, EngineProcess, LiveRoundOutcome, RoundState, StepStatus};
pub use transport::{Delivery, LinkPolicySendAdapter, SendFate, SendPolicy, Transport};

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::ProcessId;
    use meba_sim::{Actor, AnyActor, Message, RoundCtx};

    #[derive(Clone, Debug)]
    struct Ping(#[allow(dead_code)] u64);
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Gossip {
        id: ProcessId,
        heard: usize,
        target: usize,
    }
    impl Actor for Gossip {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            if ctx.round() == meba_sim::Round(0) {
                ctx.broadcast(Ping(self.id.0 as u64));
            }
            self.heard += ctx.inbox().len();
        }
        fn done(&self) -> bool {
            self.heard >= self.target
        }
    }

    fn gossips(n: usize) -> Vec<Box<dyn AnyActor<Msg = Ping>>> {
        (0..n)
            .map(|i| Box::new(Gossip { id: ProcessId(i as u32), heard: 0, target: n }) as _)
            .collect()
    }

    #[test]
    fn des_delivers_broadcasts_next_round() {
        let n = 5;
        let report = run_des_cluster(gossips(n), None, DesConfig::default()).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds, 2, "broadcast in round 0, heard in round 1");
        for a in &report.actors {
            let g: &Gossip = a.as_any().downcast_ref().unwrap();
            assert_eq!(g.heard, n, "every broadcast (incl. own) delivered once");
        }
        // n broadcasts × (n - 1) remote copies.
        assert_eq!(report.metrics.correct.words, (n * (n - 1)) as u64);
        // One delivery per directed remote link.
        let l = report.metrics.link(ProcessId(0), ProcessId(1));
        assert_eq!((l.sent, l.delivered, l.dropped), (1, 1, 0));
    }

    #[test]
    fn des_same_seed_is_byte_identical() {
        let run = |seed: u64| {
            let report =
                run_des_cluster(gossips(7), None, DesConfig { seed, ..Default::default() })
                    .unwrap();
            serde_json::to_string(&report.metrics).expect("metrics serialize")
        };
        assert_eq!(run(42), run(42), "same seed ⇒ byte-identical metrics");
    }

    #[test]
    fn des_respects_round_budget() {
        let report =
            run_des_cluster(gossips(3), None, DesConfig { max_rounds: 1, ..Default::default() })
                .unwrap();
        assert!(!report.completed);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn des_crash_without_rebuilder_is_permanent() {
        let fate: ProcessFateFactory = std::sync::Arc::new(|me: ProcessId| {
            if me == ProcessId(1) {
                ProcessFate::CrashRestart { at_round: 0, rejoin_after: 1 }
            } else {
                ProcessFate::Run
            }
        });
        let report = run_des_cluster(
            gossips(3),
            None,
            DesConfig { max_rounds: 8, process_fate: Some(fate), ..Default::default() },
        )
        .unwrap();
        assert!(!report.completed, "p1 never hears enough broadcasts");
        assert_eq!(report.metrics.recovery.crash_restarts, 1);
    }

    #[test]
    fn channel_mesh_is_aligned_and_self_delivering() {
        let mut mesh = channel_mesh::<Ping>(2, 8);
        mesh[0].send(ProcessId(1), 0, &Ping(7));
        mesh[1].send(ProcessId(1), 0, &Ping(9));
        let mut out = Vec::new();
        mesh[1].drain(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].from, ProcessId(0));
        assert_eq!(out[1].from, ProcessId(1), "self-sends loop back");
    }
}
