//! The single per-process round driver: every backend executes protocol
//! rounds through this module, so inbox partitioning, word/byte/link
//! accounting, send-edge fault application, crash-restart fates, and
//! journal-replay rejoin exist in exactly one place.

use crate::fate::{ActorRebuilder, ResolvedFate};
use crate::transport::{Delivery, SendFate, SendPolicy, Transport};
use meba_crypto::ProcessId;
use meba_sim::{AnyActor, Dest, Envelope, Message, Metrics, Round, RoundCtx};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Per-process round-loop state that persists across rounds: deliveries
/// received early (for a later round) and fault-delayed outbound
/// messages keyed by their transmit round.
pub struct RoundState<M: Message> {
    buffer: Vec<Delivery<M>>,
    pending: BTreeMap<u64, Vec<(ProcessId, u64, M)>>,
    // Scratch storage reused across rounds so the steady-state round
    // body allocates nothing: this round's inbox, the kept-for-later
    // deliveries, and the distinct-sender marks of `ready_senders`
    // (generation-stamped so clearing is a counter bump).
    inbox_scratch: Vec<Envelope<M>>,
    keep_scratch: Vec<Delivery<M>>,
    seen_gen: u64,
    seen_mark: Vec<u64>,
}

impl<M: Message> RoundState<M> {
    /// Empty state, as at process start (and after a crash).
    pub fn new() -> Self {
        RoundState {
            buffer: Vec::new(),
            pending: BTreeMap::new(),
            inbox_scratch: Vec::new(),
            keep_scratch: Vec::new(),
            seen_gen: 0,
            seen_mark: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.buffer.clear();
        self.pending.clear();
        self.inbox_scratch.clear();
        self.keep_scratch.clear();
    }

    /// How many distinct senders (including `me` itself) have already
    /// produced the information that makes `round` ready: deliveries
    /// buffered with `sent_round + 1 ≥ round`, i.e. traffic from the
    /// immediately preceding round or later. `me` always counts — a
    /// process trivially holds its own prior-round state, whether or not
    /// a self-delivery happens to sit in the buffer. This is the quorum
    /// test of the event-driven
    /// [`crate::RoundDriverConfig::QuorumOrTimeout`] driver — reaching
    /// [`crate::default_quorum`] here means the process holds everything
    /// quorum logic can use from round `round - 1`, so it may advance
    /// early. Because `sent_round ≥ round` traffic also counts, the same
    /// test doubles as *catch-up*: a process that fell behind (timeout
    /// backoff, a long GC pause on a paced backend) and holds a quorum's
    /// worth of later-round traffic fast-forwards instead of crawling
    /// timer by timer.
    ///
    /// Drains the transport into the persistent buffer as a side effect;
    /// nothing is admitted or discarded (admission stays inside
    /// [`run_live_round`], so calling this never changes what a later
    /// round execution observes — only *when* it runs).
    pub fn ready_senders(
        &mut self,
        me: ProcessId,
        round: u64,
        transport: &mut dyn Transport<M>,
    ) -> usize {
        transport.drain(&mut self.buffer);
        if self.buffer.is_empty() {
            return 1; // `me` always counts
        }
        self.seen_gen += 1;
        let gen = self.seen_gen;
        self.mark(me, gen);
        let mut count = 1usize;
        for idx in 0..self.buffer.len() {
            let d = &self.buffer[idx];
            if d.sent_round + 1 >= round {
                let from = d.from;
                if self.mark(from, gen) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Stamps `p` with `gen`; true when `p` was not yet stamped.
    fn mark(&mut self, p: ProcessId, gen: u64) -> bool {
        let idx = p.index();
        if idx >= self.seen_mark.len() {
            self.seen_mark.resize(idx + 1, 0);
        }
        if self.seen_mark[idx] == gen {
            false
        } else {
            self.seen_mark[idx] = gen;
            true
        }
    }
}

impl<M: Message> Default for RoundState<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Executes one *live* round for `actor` over `transport`:
///
/// 1. transmit fault-delayed messages whose release round arrived (they
///    keep their original `sent_round`, so the recipient sees them past
///    the synchrony bound);
/// 2. drain the transport and partition deliveries by
///    `sent_round < round` into this round's inbox, recording per-link
///    deliveries;
/// 3. step the actor;
/// 4. dispatch its outbox: self-delivery is process memory (no policy, no
///    per-link stats, no word accounting); every remote copy is judged by
///    `policy` and recorded (words, constituent sigs, bytes, per-link
///    sent/dropped/delayed) whether or not it is ultimately transmitted.
///
/// Returns the round's [`LiveRoundOutcome`]: `actor.done()` after the
/// step plus how many admitted deliveries had already missed their
/// intended round. This function is the one implementation of the round
/// body for every backend; `metrics` is locked briefly per accounting
/// site, never across a (possibly blocking) transport send.
#[allow(clippy::too_many_arguments)]
pub fn run_live_round<M: Message>(
    actor: &mut dyn AnyActor<Msg = M>,
    transport: &mut dyn Transport<M>,
    state: &mut RoundState<M>,
    policy: &mut Option<Box<dyn SendPolicy>>,
    round: u64,
    n: usize,
    sender_correct: bool,
    metrics: &Mutex<Metrics>,
) -> LiveRoundOutcome {
    let me = actor.id();
    let i = me.index();

    if !state.pending.is_empty() {
        if let Some(due) = state.pending.remove(&round) {
            for (to, sent_round, msg) in due {
                transport.send(to, sent_round, &msg);
            }
        }
    }

    transport.drain(&mut state.buffer);
    let mut inbox = std::mem::take(&mut state.inbox_scratch);
    let mut keep = std::mem::take(&mut state.keep_scratch);
    inbox.clear();
    keep.clear();
    let mut late_admitted = 0u64;
    if !state.buffer.is_empty() {
        // Lock lazily: idle rounds (no remote deliveries) must not pay
        // for the metrics mutex.
        let mut guard = None;
        for d in state.buffer.drain(..) {
            if d.sent_round < round {
                if d.from != me {
                    let metrics = guard.get_or_insert_with(|| metrics.lock());
                    metrics.link_mut(d.from, me).delivered += 1;
                    // A round-`r` message belongs in round `r + 1`;
                    // admission later than that means the local round
                    // counter outpaced this link (mis-estimated δ,
                    // schedule drift, a pre-GST delay, or a fault-
                    // delayed send — indistinguishable locally).
                    if d.sent_round + 1 < round {
                        late_admitted += 1;
                    }
                }
                inbox.push(Envelope { from: d.from, msg: d.msg });
            } else {
                keep.push(d);
            }
        }
    }
    // Keep both allocations alive: the drained buffer becomes the next
    // round's keep scratch and vice versa.
    std::mem::swap(&mut state.buffer, &mut keep);
    state.keep_scratch = keep;

    let mut ctx = RoundCtx::new(Round(round), me, n, &inbox);
    actor.on_round(&mut ctx);
    let outbox = ctx.take_outbox();
    for (dest, msg) in outbox {
        let words = msg.words().max(1);
        let sigs = msg.constituent_sigs();
        let bytes = msg.wire_bytes();
        let component = msg.component();
        let session = msg.session();
        let targets = match dest {
            Dest::To(p) if p.index() < n => p.index()..p.index() + 1,
            Dest::To(_) => 0..0,
            Dest::All => 0..n,
        };
        for target in targets {
            if target == i {
                // Self-delivery: process memory, not a link — no policy,
                // no per-link stats, no word accounting.
                transport.send(me, round, &msg);
                continue;
            }
            let to = ProcessId(target as u32);
            let fate = match policy {
                Some(p) => p.fate(meba_sim::faults::Link { from: me, to }, round),
                None => SendFate::Deliver,
            };
            {
                let mut metrics = metrics.lock();
                metrics.record(me, sender_correct, component, session, round, words, sigs, bytes);
                let stats = metrics.link_mut(me, to);
                stats.sent += 1;
                stats.bytes += bytes;
                match fate {
                    SendFate::Deliver => {}
                    SendFate::Drop | SendFate::Sever => stats.dropped += 1,
                    SendFate::DelayRounds(_) => stats.delayed += 1,
                }
            }
            match fate {
                SendFate::Deliver => transport.send(to, round, &msg),
                SendFate::Drop => {}
                SendFate::DelayRounds(k) => {
                    state.pending.entry(round + k).or_default().push((to, round, msg.clone()));
                }
                SendFate::Sever => transport.sever(to),
            }
        }
    }
    // Return the inbox's allocation for the next round (its envelopes
    // were only borrowed by the actor through `RoundCtx`).
    inbox.clear();
    state.inbox_scratch = inbox;
    LiveRoundOutcome { done: actor.done(), late_admitted }
}

/// What one [`run_live_round`] execution observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveRoundOutcome {
    /// `actor.done()` after the step.
    pub done: bool,
    /// Remote deliveries admitted this round that had already missed
    /// their intended round (`sent_round + 1 < round`) — the local
    /// evidence of a δ-estimate outpacing the network that the
    /// event-driven backends feed into timeout backoff
    /// ([`crate::RoundDriverConfig::backed_off_timeout_ns`]).
    pub late_admitted: u64,
}

/// What one engine round did for one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepStatus {
    /// Whether the actor actually ran this round (`false` while the
    /// process is crashed — dead rounds discard inbound traffic and
    /// nothing else).
    pub executed: bool,
    /// `actor.done()` after the round (`false` while dead).
    pub done: bool,
    /// [`LiveRoundOutcome::late_admitted`] of the executed round (0
    /// while dead).
    pub late_admitted: u64,
}

/// One process as the engine drives it: the actor, its persistent round
/// state, its send-edge policy, and its resolved crash-restart fate.
/// Backends own the pacing and the stop decision; this type owns
/// everything that happens *inside* a round, including the fate
/// execution and journal-replay rejoin that PR 4 previously duplicated
/// per runtime.
pub struct EngineProcess<M: Message> {
    actor: Box<dyn AnyActor<Msg = M>>,
    n: usize,
    sender_correct: bool,
    fate: ResolvedFate,
    rebuilder: Option<ActorRebuilder<M>>,
    policy: Option<Box<dyn SendPolicy>>,
    state: RoundState<M>,
    dead: bool,
    rejoin_round: Option<u64>,
}

impl<M: Message> EngineProcess<M> {
    /// Wraps one actor for engine driving. `fate` must already be
    /// resolved (see [`crate::resolve_fates`]) — the driver never
    /// consults the rebuilder's presence mid-run.
    pub fn new(
        actor: Box<dyn AnyActor<Msg = M>>,
        n: usize,
        sender_correct: bool,
        fate: ResolvedFate,
        rebuilder: Option<ActorRebuilder<M>>,
        policy: Option<Box<dyn SendPolicy>>,
    ) -> Self {
        debug_assert!(
            !matches!(fate, ResolvedFate::Crash { rejoin_at: Some(_), .. }) || rebuilder.is_some(),
            "a fate resolved to rejoin requires a rebuilder"
        );
        EngineProcess {
            actor,
            n,
            sender_correct,
            fate,
            rebuilder,
            policy,
            state: RoundState::new(),
            dead: false,
            rejoin_round: None,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.actor.id()
    }

    /// Whether the process is currently crashed (dead rounds discard
    /// traffic and execute nothing).
    pub fn is_down(&self) -> bool {
        self.dead
    }

    /// [`RoundState::ready_senders`] for this process — 0 while crashed
    /// (a dead process holds no evidence and never advances early).
    pub fn ready_senders(&mut self, round: u64, transport: &mut dyn Transport<M>) -> usize {
        if self.dead {
            return 0;
        }
        self.state.ready_senders(self.actor.id(), round, transport)
    }

    /// Executes one engine round: fate handling (crash, dead-round
    /// discard, journal-replay rejoin) around [`run_live_round`].
    pub fn step<T: Transport<M>>(
        &mut self,
        round: u64,
        transport: &mut T,
        metrics: &Mutex<Metrics>,
    ) -> StepStatus {
        if let ResolvedFate::Crash { at_round, rejoin_at } = self.fate {
            if !self.dead && self.rejoin_round.is_none() && round == at_round {
                // Crash: in-memory state, buffered inbox, and pending
                // delayed sends are all lost; the transport tears down
                // whatever it physically holds (sockets sever).
                self.dead = true;
                transport.crash();
                self.state.clear();
                metrics.lock().recovery.crash_restarts += 1;
            }
            if self.dead && rejoin_at.is_some_and(|rj| round >= rj) {
                // Restart: rebuild from the durable journal, then
                // fast-forward to the cluster's current round with empty
                // inboxes. Steps below the resume point are no-ops inside
                // the recovery wrapper; the missed live rounds degrade to
                // omissions, which the help machinery compensates for.
                let rebuild =
                    self.rebuilder.as_ref().expect("rejoin_at is only resolved with a rebuilder");
                let rb = rebuild(self.actor.id());
                self.actor = rb.actor;
                {
                    let mut m = metrics.lock();
                    m.recovery.replayed_records += rb.replayed_records;
                    m.recovery.journal_fsyncs += rb.journal_fsyncs;
                }
                let empty: Vec<Envelope<M>> = Vec::new();
                for r in 0..round {
                    let mut ctx = RoundCtx::new(Round(r), self.actor.id(), self.n, &empty);
                    self.actor.on_round(&mut ctx);
                    drop(ctx.take_outbox());
                }
                self.actor.on_rejoin(Round(round));
                self.dead = false;
                self.rejoin_round = Some(round);
            }
        }
        if self.dead {
            // Down: discard all inbound traffic, send nothing. The
            // backend keeps pacing rounds so live peers advance.
            transport.drain(&mut self.state.buffer);
            self.state.buffer.clear();
            return StepStatus { executed: false, done: false, late_admitted: 0 };
        }

        let outcome = run_live_round(
            self.actor.as_mut(),
            transport,
            &mut self.state,
            &mut self.policy,
            round,
            self.n,
            self.sender_correct,
            metrics,
        );
        if outcome.done {
            // Recovery latency: rounds from rejoin until this process is
            // done.
            if let Some(rj) = self.rejoin_round.take() {
                metrics.lock().recovery.recovery_rounds += round - rj;
            }
        }
        StepStatus { executed: true, done: outcome.done, late_admitted: outcome.late_admitted }
    }

    /// Ends the run for this process: harvests its equivocation-refusal
    /// counter into `metrics` and returns the actor for inspection.
    pub fn finish(self, metrics: &Mutex<Metrics>) -> Box<dyn AnyActor<Msg = M>> {
        let refused = self.actor.refused_equivocations();
        if refused > 0 {
            metrics.lock().recovery.refused_equivocations += refused;
        }
        self.actor
    }
}
