//! In-memory [`Transport`]: bounded crossbeam channels as authenticated
//! links — the engine instantiation behind `meba_net::run_cluster`.

use crate::transport::{Delivery, Transport};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use meba_crypto::ProcessId;
use meba_sim::Message;

/// One process's endpoint of a full mesh of bounded channels. A full
/// link blocks the sender (counted as backpressure) instead of
/// ballooning memory; a disconnected link (the peer already stopped)
/// loses the message, which is fine: the run is over for that peer.
pub struct ChannelTransport<M: Message> {
    me: ProcessId,
    rx: Receiver<Delivery<M>>,
    txs: Vec<Sender<Delivery<M>>>,
    backpressure: u64,
}

/// Builds a full mesh of bounded channels for `n` processes; element `i`
/// of the result is process `i`'s transport (it holds its own receiver
/// and a sender to every process, itself included).
pub fn channel_mesh<M: Message>(n: usize, capacity: usize) -> Vec<ChannelTransport<M>> {
    let mut txs: Vec<Sender<Delivery<M>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Receiver<Delivery<M>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded(capacity.max(1));
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(i, rx)| ChannelTransport {
            me: ProcessId(i as u32),
            rx,
            txs: txs.clone(),
            backpressure: 0,
        })
        .collect()
}

impl<M: Message> Transport<M> for ChannelTransport<M> {
    fn send(&mut self, to: ProcessId, sent_round: u64, msg: &M) {
        let delivery = Delivery { from: self.me, sent_round, msg: msg.clone() };
        match self.txs[to.index()].try_send(delivery) {
            Ok(()) => {}
            Err(TrySendError::Full(delivery)) => {
                self.backpressure += 1;
                let _ = self.txs[to.index()].send(delivery);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    fn drain(&mut self, out: &mut Vec<Delivery<M>>) {
        out.extend(self.rx.try_iter());
    }

    fn backpressure(&self) -> u64 {
        self.backpressure
    }
}
