//! Round drivers: *why* a process advances into its next round.
//!
//! The engine historically had exactly one timing model — a global
//! schedule handed to every process by a [`crate::Pacer`] ("round `r`
//! begins at `r · δ` for everyone"). That model is lockstep synchrony:
//! correct under the paper's assumptions, but incapable of expressing
//! partial synchrony, clock skew, or quorum-driven progress.
//!
//! A [`RoundDriverConfig`] generalizes the seam. Each process owns one and
//! advances from round `r` to `r + 1` when the **first** of two local
//! events fires:
//!
//! * **Quorum** — deliveries from at least `quorum()` distinct senders
//!   carrying `sent_round ≥ r` have arrived (self-delivery counts). The
//!   process has everything the protocol's quorum logic can use from
//!   round `r`, so waiting out the timer only adds latency.
//! * **Timeout** — the local round timer (the configured δ-estimate)
//!   expires. This is the synchrony fallback, and the only trigger in
//!   silent rounds, where fewer than a quorum of processes send at all —
//!   the common case for the adaptive protocols, whose whole point is
//!   rounds with `O(1)` senders.
//!
//! The pre-refactor behaviour is recovered exactly by
//! [`RoundDriverConfig::Lockstep`]: the deadline is the *global*
//! schedule `r · δ` (not relative to the process's own progress) and no
//! quorum advancement happens, so every existing test keeps its
//! semantics. [`RoundDriverConfig::QuorumOrTimeout`] is the
//! partial-synchrony mode; its `timeout_factor` expresses a *mis-*
//! estimated δ (the E17 sweep runs it from 0.25× to 4× of the true
//! network δ).
//!
//! Safety note (argued in `docs/CORRECTNESS.md` §12): early advancement
//! never forges or drops information. A message sent in round `r`
//! becomes admissible the moment its receiver's round counter exceeds
//! `r` — the `sent_round < round` admission rule of
//! [`crate::run_live_round`] buffers early arrivals and admits late
//! ones, independent of *when* either process's clock said the round
//! happened. Quorum intersection arguments therefore survive unchanged;
//! what degrades under a wrong δ-estimate is performance (help traffic,
//! fallback activation), which is exactly what E17 measures.

/// Why a process advanced into a round. Recorded per advance in
/// `meba_sim::metrics::AdvanceStats` (satellite: surfaced in `Metrics`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdvanceCause {
    /// A quorum of distinct prior-round senders had already arrived.
    QuorumReached,
    /// The local round timer fired without quorum.
    TimeoutFired,
}

/// Serializable description of a round driver, carried by
/// [`crate::ClusterConfig`] and [`crate::DesConfig`]. Resolved against
/// `n` and the backend's δ at run start.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum RoundDriverConfig {
    /// The pre-refactor model: every process advances exactly at the
    /// global schedule `r · δ` (wall clock or virtual). No quorum
    /// advancement; advance causes are still *recorded* (was quorum
    /// satisfied at the deadline?) but never change the schedule.
    #[default]
    Lockstep,
    /// Event-driven partial synchrony: advance on quorum or local
    /// timeout, whichever fires first.
    QuorumOrTimeout {
        /// Distinct senders (including self) required for early
        /// advancement. `None` resolves to [`default_quorum`]`(n)` =
        /// `n - t` with `t = ⌊(n-1)/2⌋`.
        quorum: Option<usize>,
        /// The δ-estimate as a multiple of the backend's configured δ.
        /// `1.0` is a perfect estimate; `0.5` and `2.0` are the
        /// mis-estimation bounds of the acceptance criteria; the E17
        /// sweep runs 0.25–4.0.
        timeout_factor: f64,
    },
}

impl RoundDriverConfig {
    /// The partial-synchrony driver with defaults: protocol quorum,
    /// perfect δ-estimate.
    pub fn quorum_or_timeout() -> Self {
        RoundDriverConfig::QuorumOrTimeout { quorum: None, timeout_factor: 1.0 }
    }

    /// Whether this is the lockstep (global-schedule) driver.
    pub fn is_lockstep(&self) -> bool {
        matches!(self, RoundDriverConfig::Lockstep)
    }

    /// The effective quorum for cause *recording* and (in
    /// `QuorumOrTimeout` mode) early advancement.
    pub fn effective_quorum(&self, n: usize) -> usize {
        match self {
            RoundDriverConfig::Lockstep => default_quorum(n),
            RoundDriverConfig::QuorumOrTimeout { quorum, .. } => {
                quorum.unwrap_or_else(|| default_quorum(n))
            }
        }
    }

    /// The local round-timer length in nanoseconds for a backend whose
    /// true δ is `delta_ns` (≥ 1 so virtual time always progresses).
    pub fn timeout_ns(&self, delta_ns: u64) -> u64 {
        match self {
            RoundDriverConfig::Lockstep => delta_ns,
            RoundDriverConfig::QuorumOrTimeout { timeout_factor, .. } => {
                ((delta_ns as f64 * timeout_factor).clamp(1.0, u64::MAX as f64)) as u64
            }
        }
    }

    /// [`Self::timeout_ns`] over wall-clock [`std::time::Duration`]s,
    /// for the paced backends.
    pub fn timeout_duration(&self, delta: std::time::Duration) -> std::time::Duration {
        let ns = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
        std::time::Duration::from_nanos(self.timeout_ns(ns))
    }

    /// [`Self::timeout_ns`] after `shift` late-delivery backoff
    /// doublings (saturating; `shift` is capped at
    /// [`MAX_BACKOFF_SHIFT`]).
    ///
    /// Backoff is the partial-synchrony half of the driver: whenever a
    /// round admits a delivery that already missed its intended round
    /// (`sent_round + 1 < round`, see
    /// [`crate::process::LiveRoundOutcome::late_admitted`]), the
    /// process's local timer has demonstrably outpaced the network —
    /// because the δ-estimate is too small, because quorum advancement
    /// drifted this process's schedule ahead of a peer's, or because
    /// GST has not been reached. Event-driven backends respond by
    /// doubling the local timeout (once per such round), so any finite
    /// underestimate self-corrects after `O(log(δ/estimate))` rounds —
    /// the standard partial-synchrony argument for eventually exceeding
    /// the unknown network bound. Clean rounds walk the shift back down
    /// (see [`update_backoff_shift`]), so a transient burst — e.g. a
    /// restarted process catching up from round 0 — does not pin the
    /// timer at the cap. Lockstep mode never backs off: its deadlines
    /// are the global schedule, and pre-GST lateness there is the
    /// scenario under test, not a pacing error.
    pub fn backed_off_timeout_ns(&self, delta_ns: u64, shift: u32) -> u64 {
        self.timeout_ns(delta_ns).saturating_mul(1u64 << shift.min(MAX_BACKOFF_SHIFT))
    }

    /// Validates the knobs that no backend can honor.
    ///
    /// # Errors
    ///
    /// `QuorumOrTimeout` with a `timeout_factor` that is not a finite
    /// positive number has no timer schedule at all.
    pub fn validate(&self) -> Result<(), DriverConfigError> {
        match self {
            RoundDriverConfig::Lockstep => Ok(()),
            RoundDriverConfig::QuorumOrTimeout { timeout_factor, .. } => {
                if timeout_factor.is_finite() && *timeout_factor > 0.0 {
                    Ok(())
                } else {
                    Err(DriverConfigError::TimeoutFactorInvalid { timeout_factor: *timeout_factor })
                }
            }
        }
    }
}

/// A [`RoundDriverConfig`] no backend can honor.
#[derive(Clone, Debug, PartialEq)]
pub enum DriverConfigError {
    /// `timeout_factor` must be a finite number `> 0` — the local round
    /// timer is `timeout_factor · δ`, and a zero, negative, or NaN
    /// timer has no meaning on any timeline.
    TimeoutFactorInvalid {
        /// The rejected value.
        timeout_factor: f64,
    },
}

impl std::fmt::Display for DriverConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverConfigError::TimeoutFactorInvalid { timeout_factor } => write!(
                f,
                "timeout_factor = {timeout_factor} is invalid: the local round timer \
                 is timeout_factor \u{b7} \u{3b4} and must be a finite positive length"
            ),
        }
    }
}

impl std::error::Error for DriverConfigError {}

/// Cap on late-delivery backoff doublings: a timer already 2¹⁶ × the
/// δ-estimate has exhausted any plausible mis-estimate, and capping the
/// shift keeps the `u64` arithmetic saturating instead of wrapping.
pub const MAX_BACKOFF_SHIFT: u32 = 16;

/// Adapts a backend's late-delivery backoff shift after one executed
/// round: up by one (timer doubles) when the round admitted late
/// traffic, down by one (timer halves) when it was clean.
///
/// The decay half is what keeps a cluster live across real process
/// churn. A replica restarted as a fresh OS process re-enters at round
/// 0 and fast-forwards on buffered quorum evidence, but until it
/// reaches the frontier every message it sends is stamped with an old
/// round and admitted *late* at its peers. Under increase-only backoff
/// each such peer round ratchets the timer toward
/// `2^MAX_BACKOFF_SHIFT · δ` with no way back down, so one rejoin burst
/// can freeze the whole schedule. With symmetric decay the burst still
/// doubles the timer while it lasts — the partial-synchrony
/// self-correction is untouched, since persistent lateness holds the
/// shift up — but once the rejoiner is caught up, clean rounds walk the
/// timer back to the δ-estimate in `O(shift)` rounds.
pub fn update_backoff_shift(shift: &mut u32, late_admitted: u64) {
    if late_admitted > 0 {
        *shift = (*shift + 1).min(MAX_BACKOFF_SHIFT);
    } else {
        *shift = shift.saturating_sub(1);
    }
}

/// The paper's quorum: `n - t` with `t = ⌊(n-1)/2⌋`. Since `n ≥ 2t + 1`
/// this gives `n - t ≥ t + 1`, so every quorum contains at least one
/// correct process and any two quorums intersect (in `≥ n - 2t ≥ 1`
/// processes — the honest-majority intersection the paper's certificate
/// arguments rest on). For n = 1 this is 1 — a process alone is its own
/// quorum.
pub fn default_quorum(n: usize) -> usize {
    n - n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quorum_contains_a_correct_process_and_intersects() {
        for n in 1..=257usize {
            let t = n.saturating_sub(1) / 2;
            let q = default_quorum(n);
            assert_eq!(q, n - t);
            // Every quorum outnumbers the faulty processes…
            assert!(q > t, "quorum majority-correct at n = {n}");
            // …and any two quorums overlap in ≥ 2q - n ≥ 1 processes.
            assert!(2 * q > n, "quorum intersection at n = {n}");
        }
    }

    #[test]
    fn lockstep_timeout_is_the_backend_delta() {
        assert_eq!(RoundDriverConfig::Lockstep.timeout_ns(1_000_000), 1_000_000);
        assert_eq!(RoundDriverConfig::Lockstep.effective_quorum(7), 4);
        assert!(RoundDriverConfig::Lockstep.validate().is_ok());
    }

    #[test]
    fn quorum_or_timeout_scales_the_timer_and_resolves_quorum() {
        let d = RoundDriverConfig::QuorumOrTimeout { quorum: None, timeout_factor: 0.5 };
        assert_eq!(d.timeout_ns(1_000_000), 500_000);
        assert_eq!(d.effective_quorum(7), 4);
        let d = RoundDriverConfig::QuorumOrTimeout { quorum: Some(7), timeout_factor: 4.0 };
        assert_eq!(d.timeout_ns(1_000_000), 4_000_000);
        assert_eq!(d.effective_quorum(7), 7);
        // Tiny factors clamp to ≥ 1 ns so virtual time always advances.
        let d = RoundDriverConfig::QuorumOrTimeout { quorum: None, timeout_factor: 1e-12 };
        assert_eq!(d.timeout_ns(10), 1);
    }

    #[test]
    fn backoff_doubles_saturates_and_caps() {
        let d = RoundDriverConfig::quorum_or_timeout();
        assert_eq!(d.backed_off_timeout_ns(1_000, 0), 1_000);
        assert_eq!(d.backed_off_timeout_ns(1_000, 3), 8_000);
        // Shifts beyond the cap behave like the cap…
        assert_eq!(
            d.backed_off_timeout_ns(1_000, MAX_BACKOFF_SHIFT + 40),
            d.backed_off_timeout_ns(1_000, MAX_BACKOFF_SHIFT),
        );
        // …and the multiply saturates instead of wrapping.
        assert_eq!(d.backed_off_timeout_ns(u64::MAX / 2, MAX_BACKOFF_SHIFT), u64::MAX);
    }

    #[test]
    fn backoff_shift_ratchets_up_on_late_rounds_and_decays_on_clean_ones() {
        let mut shift = 0u32;
        // Persistent lateness ratchets to the cap and holds there…
        for _ in 0..MAX_BACKOFF_SHIFT + 5 {
            update_backoff_shift(&mut shift, 3);
        }
        assert_eq!(shift, MAX_BACKOFF_SHIFT);
        // …clean rounds walk it back down one doubling at a time…
        update_backoff_shift(&mut shift, 0);
        update_backoff_shift(&mut shift, 0);
        assert_eq!(shift, MAX_BACKOFF_SHIFT - 2);
        // …alternating late/clean traffic oscillates instead of
        // ratcheting (a chronically half-step-behind peer must not
        // freeze the schedule)…
        let mut shift = 0u32;
        for _ in 0..100 {
            update_backoff_shift(&mut shift, 1);
            update_backoff_shift(&mut shift, 0);
        }
        assert!(shift <= 1, "alternating lateness stays bounded, got {shift}");
        // …and a fully clean history saturates at zero.
        update_backoff_shift(&mut shift, 0);
        update_backoff_shift(&mut shift, 0);
        assert_eq!(shift, 0);
    }

    #[test]
    fn non_positive_and_non_finite_factors_are_rejected_typed() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let d = RoundDriverConfig::QuorumOrTimeout { quorum: None, timeout_factor: bad };
            let err = d.validate().unwrap_err();
            match err {
                DriverConfigError::TimeoutFactorInvalid { timeout_factor } => {
                    assert!(timeout_factor.is_nan() || timeout_factor == bad);
                }
            }
            assert!(err.to_string().contains("timeout_factor"));
        }
    }
}
