//! Backend-agnostic run configuration and report types, shared verbatim
//! by the threaded, TCP, and discrete-event backends.

use crate::driver::RoundDriverConfig;
use crate::fate::ProcessFateFactory;
use crate::pacer::ClusterDiagnostic;
use meba_crypto::ProcessId;
use meba_sim::faults::LinkPolicy;
use meba_sim::{AnyActor, Message, Metrics};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Per-sender factory for [`LinkPolicy`] instances: called once per
/// process with that process's id; the returned policy governs all of
/// its outbound links.
pub type LinkPolicyFactory = Arc<dyn Fn(ProcessId) -> Box<dyn LinkPolicy> + Send + Sync>;

/// What the coordinator does about sustained synchrony overruns (see
/// [`ClusterConfig::overrun_window`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverrunAction {
    /// Keep running and only count overruns (the default).
    Count,
    /// Multiply δ by `multiplier` (capped at `max_delta`) and keep going —
    /// the run trades latency for restored synchrony.
    Escalate {
        /// Factor applied to the current δ on each escalation.
        multiplier: u32,
        /// Upper bound on the escalated δ.
        max_delta: Duration,
    },
    /// Stop the run and report a [`ClusterDiagnostic`].
    Abort,
}

/// One δ-escalation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Escalation {
    /// First round paced with the new δ.
    pub at_round: u64,
    /// δ before the escalation.
    pub old_delta: Duration,
    /// δ after the escalation.
    pub new_delta: Duration,
}

/// Outcome of a cluster run.
pub struct ClusterReport<M: Message> {
    /// Accumulated communication metrics (same word accounting as the
    /// simulator), including the per-round processing-latency histogram
    /// ([`Metrics::round_latency`]) and per-link delivery counters
    /// ([`Metrics::per_link`]).
    pub metrics: Metrics,
    /// Rounds executed before the cluster stopped.
    pub rounds: u64,
    /// The actors, returned for decision inspection.
    pub actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    /// Whether every correct actor reported done before the round budget
    /// ran out — the coordinator's recorded stop verdict.
    pub completed: bool,
    /// Rounds in which some thread finished its processing *after* the
    /// round's deadline — synchrony-assumption violations. A non-zero
    /// count means δ is tight for this machine/protocol. Always zero on
    /// the discrete-event backend (virtual time cannot overrun).
    pub overruns: u64,
    /// Times a sender blocked on a full link (bounded-channel or socket
    /// outbox backpressure).
    pub backpressure: u64,
    /// δ-escalations performed under [`OverrunAction::Escalate`].
    pub escalations: Vec<Escalation>,
    /// Present iff the run was stopped early by the overrun policy or a
    /// coordinator stall.
    pub aborted: Option<ClusterDiagnostic>,
}

impl<M: Message> fmt::Debug for ClusterReport<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterReport")
            .field("rounds", &self.rounds)
            .field("completed", &self.completed)
            .field("correct_words", &self.metrics.correct.words)
            .field("overruns", &self.overruns)
            .field("backpressure", &self.backpressure)
            .field("escalations", &self.escalations.len())
            .field("aborted", &self.aborted)
            .finish_non_exhaustive()
    }
}

/// Configuration of a cluster run (threaded, TCP, or discrete-event).
#[derive(Clone)]
pub struct ClusterConfig {
    /// Round duration δ.
    pub delta: Duration,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Byzantine identities (excluded from correct-word accounting and
    /// from the done-check).
    pub corrupt: Vec<ProcessId>,
    /// Link-fault injection: each sender instantiates one policy for its
    /// outbound links. `None` means reliable links.
    ///
    /// Stock policies and determinism guarantees live in
    /// [`meba_sim::faults`]. Self-links are never consulted.
    pub link_policy: Option<LinkPolicyFactory>,
    /// Capacity of each process's inbound channel. A full channel blocks
    /// senders (backpressure) rather than dropping or buffering without
    /// bound. Must comfortably exceed `n ×` the per-round message volume;
    /// the default (1024) is generous for the protocols in this
    /// workspace.
    pub channel_capacity: usize,
    /// Number of consecutive overrunning coordinator rounds that triggers
    /// [`ClusterConfig::overrun_action`].
    pub overrun_window: u32,
    /// Reaction to sustained overruns.
    pub overrun_action: OverrunAction,
    /// Process-level fault injection (crash-restart). `None` means every
    /// process runs for the whole run. Restarts additionally need an
    /// [`ActorRebuilder`](crate::ActorRebuilder); without one the restart
    /// half of the fate is rejected up front (see
    /// [`resolve_fate`](crate::resolve_fate)).
    pub process_fate: Option<ProcessFateFactory>,
    /// Upper bound on the TCP mesh's exponential reconnect backoff
    /// (ignored by the in-memory runtimes; `meba-wire` threads it into
    /// its dialer). Crash-restart tests lower it so rejoining processes
    /// re-establish links quickly; the default matches the mesh's
    /// long-standing hard-coded cap.
    pub reconnect_backoff_cap: Duration,
    /// Maximum deterministic jitter added per reconnect attempt (TCP
    /// runtime only). Spreads simultaneous redials after a restart;
    /// zero (the default) preserves the historical behaviour.
    pub reconnect_jitter: Duration,
    /// How each process decides to advance into its next round:
    /// [`RoundDriverConfig::Lockstep`] (default — the shared
    /// [`DeadlinePacer`](crate::DeadlinePacer) schedule) or
    /// [`RoundDriverConfig::QuorumOrTimeout`] (event-driven — a quorum
    /// of prior-round senders or a local `timeout_factor · δ` timer,
    /// whichever fires first).
    pub driver: RoundDriverConfig,
}

impl fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("delta", &self.delta)
            .field("max_rounds", &self.max_rounds)
            .field("corrupt", &self.corrupt)
            .field("link_policy", &self.link_policy.as_ref().map(|_| "<factory>"))
            .field("channel_capacity", &self.channel_capacity)
            .field("overrun_window", &self.overrun_window)
            .field("overrun_action", &self.overrun_action)
            .field("process_fate", &self.process_fate.as_ref().map(|_| "<factory>"))
            .field("reconnect_backoff_cap", &self.reconnect_backoff_cap)
            .field("reconnect_jitter", &self.reconnect_jitter)
            .field("driver", &self.driver)
            .finish()
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            delta: Duration::from_millis(2),
            max_rounds: 10_000,
            corrupt: Vec::new(),
            link_policy: None,
            channel_capacity: 1024,
            overrun_window: 3,
            overrun_action: OverrunAction::Count,
            process_fate: None,
            reconnect_backoff_cap: Duration::from_millis(250),
            reconnect_jitter: Duration::ZERO,
            driver: RoundDriverConfig::Lockstep,
        }
    }
}
