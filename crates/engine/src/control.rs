//! Threaded execution of the engine: one OS thread per process, a shared
//! [`DeadlinePacer`], and thread 0 doubling as the coordinator.
//!
//! This module is the single home of the round-coordination machinery the
//! channel and TCP runtimes used to duplicate: after finishing round `r`
//! the coordinator publishes exactly one decision — stop after `r`
//! (recording whether the run completed) or approve round `r + 1`,
//! possibly escalating δ first. Worker threads never execute a round that
//! was not approved, so every thread executes the same set of rounds and
//! [`ClusterReport::completed`] is the coordinator's own recorded verdict
//! rather than a racy post-join recomputation.

use crate::config::{ClusterConfig, ClusterReport, Escalation, OverrunAction};
use crate::driver::RoundDriverConfig;
use crate::fate::{resolve_fates, ActorRebuilder};
use crate::pacer::{AbortReason, ClusterDiagnostic, DeadlinePacer, Pacer};
use crate::process::{EngineProcess, StepStatus};
use crate::transport::{SendPolicy, Transport};
use meba_sim::{AnyActor, Message, Metrics};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Coordinator's stop verdict, written exactly once.
struct Outcome {
    completed: bool,
    rounds: u64,
    aborted: Option<ClusterDiagnostic>,
}

/// State shared by all cluster threads.
struct Control {
    pacer: DeadlinePacer,
    /// Number of rounds approved for execution; round `r` may run iff
    /// `r < approved`.
    approved: AtomicU64,
    /// First round that must NOT be executed (`u64::MAX` while running).
    stop_at: AtomicU64,
    outcome: Mutex<Option<Outcome>>,
    overruns: AtomicU64,
    backpressure: AtomicU64,
    done_flags: Vec<AtomicBool>,
    escalations: Mutex<Vec<Escalation>>,
    metrics: Mutex<Metrics>,
}

impl Control {
    fn record_outcome(&self, outcome: Outcome, stop_at: u64) {
        let mut slot = self.outcome.lock();
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.stop_at.store(stop_at, Ordering::SeqCst);
    }
}

/// What a worker learned while waiting for round approval.
enum Approval {
    Go,
    Stop,
}

/// Per-thread slice of the cluster configuration.
struct WorkerConfig {
    max_rounds: u64,
    overrun_window: u32,
    overrun_action: OverrunAction,
    driver: RoundDriverConfig,
    n: usize,
}

/// Runs every actor on its own thread over its own transport until every
/// correct actor is done, the round budget is exhausted, or the overrun
/// policy stops the run. This is the generic core behind
/// `meba_net::run_cluster` and `meba_wire::run_tcp_cluster`: the caller
/// supplies one [`Transport`] and one optional [`SendPolicy`] per actor
/// (aligned by index) and the engine does the rest — fate resolution
/// happens exactly once, up front.
///
/// # Panics
///
/// Panics if `actors` is empty, ids are not `p0..p(n-1)` in order, the
/// transport/policy vectors are not aligned with `actors`, or the
/// [`RoundDriverConfig`] is invalid.
pub fn run_threaded_cluster<M, T>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    transports: Vec<T>,
    policies: Vec<Option<Box<dyn SendPolicy>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    config: &ClusterConfig,
) -> ClusterReport<M>
where
    M: Message,
    T: Transport<M> + Send + 'static,
{
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    assert_eq!(n, transports.len(), "one transport per actor");
    assert_eq!(n, policies.len(), "one policy slot per actor");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }
    config.driver.validate().expect("invalid round driver configuration");
    let fates = resolve_fates(n, config.process_fate.as_ref(), rebuilder.is_some());

    let ctrl = Arc::new(Control {
        pacer: DeadlinePacer::new(Instant::now() + Duration::from_millis(5), config.delta),
        approved: AtomicU64::new(1),
        stop_at: AtomicU64::new(u64::MAX),
        outcome: Mutex::new(None),
        overruns: AtomicU64::new(0),
        backpressure: AtomicU64::new(0),
        done_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
        escalations: Mutex::new(Vec::new()),
        metrics: Mutex::new(Metrics::default()),
    });
    let corrupt: Arc<Vec<bool>> =
        Arc::new((0..n).map(|i| config.corrupt.iter().any(|c| c.index() == i)).collect());

    let mut handles = Vec::with_capacity(n);
    let mut policies = policies;
    let mut fate_iter = fates.into_iter();
    for ((actor, transport), policy) in actors.into_iter().zip(transports).zip(policies.drain(..)) {
        let i = actor.id().index();
        let fate = fate_iter.next().expect("one fate per actor");
        let proc = EngineProcess::new(actor, n, !corrupt[i], fate, rebuilder.clone(), policy);
        let ctrl = ctrl.clone();
        let corrupt = corrupt.clone();
        let cfg = WorkerConfig {
            max_rounds: config.max_rounds,
            overrun_window: config.overrun_window,
            overrun_action: config.overrun_action.clone(),
            driver: config.driver,
            n,
        };
        handles.push(std::thread::spawn(move || {
            run_paced_process(proc, transport, ctrl, corrupt, cfg)
        }));
    }

    let mut actors_back: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::with_capacity(n);
    let mut max_round = 0;
    for h in handles {
        let (actor, rounds) = h.join().expect("cluster thread panicked");
        max_round = max_round.max(rounds);
        actors_back.push(actor);
    }
    actors_back.sort_by_key(|a| a.id().index());

    let ctrl = Arc::try_unwrap(ctrl).unwrap_or_else(|_| panic!("cluster threads still alive"));
    let outcome = ctrl.outcome.into_inner();
    let (completed, rounds, aborted) = match outcome {
        Some(o) => (o.completed, o.rounds, o.aborted),
        // Only reachable if every thread exited on the max_rounds
        // belt-and-braces check before the coordinator could decide.
        None => (false, max_round, None),
    };
    let mut metrics = ctrl.metrics.into_inner();
    metrics.rounds = rounds.max(max_round);
    ClusterReport {
        metrics,
        rounds: rounds.max(max_round),
        actors: actors_back,
        completed,
        overruns: ctrl.overruns.into_inner(),
        backpressure: ctrl.backpressure.into_inner(),
        escalations: ctrl.escalations.into_inner(),
        aborted,
    }
}

/// One thread's life: rounds under coordinator approval, paced by the
/// configured [`RoundDriverConfig`] — the shared [`DeadlinePacer`]
/// schedule (lockstep) or a local quorum-or-timeout wait — with the
/// round body delegated to [`EngineProcess::step`].
fn run_paced_process<M: Message, T: Transport<M>>(
    mut proc: EngineProcess<M>,
    mut transport: T,
    ctrl: Arc<Control>,
    corrupt: Arc<Vec<bool>>,
    cfg: WorkerConfig,
) -> (Box<dyn AnyActor<Msg = M>>, u64) {
    let i = proc.id().index();
    let is_coordinator = i == 0;
    let quorum = cfg.driver.effective_quorum(cfg.n);
    // Coordinator-only escalation bookkeeping.
    let mut overruns_seen = 0u64;
    let mut consecutive_overruns = 0u32;
    let mut round = 0u64;
    // Event-driven mode: each round's deadline is one (backed-off)
    // timeout after the previous round's *scheduled* deadline, clamped
    // to at most one timeout ahead of now. Anchoring on the schedule
    // keeps early quorum advances from compressing the local grid; the
    // clamp re-paces after a catch-up burst or a slow round. The timer
    // doubles whenever a round admits late traffic (evidence the local
    // δ-estimate outpaced the network).
    let mut sched_deadline = Instant::now();
    let mut backoff_shift = 0u32;

    'rounds: while round < cfg.max_rounds {
        if ctrl.stop_at.load(Ordering::SeqCst) <= round {
            break;
        }
        if !is_coordinator {
            match wait_for_approval(&ctrl, round) {
                Approval::Go => {}
                Approval::Stop => break 'rounds,
            }
        }
        let quorum_ready = match &cfg.driver {
            RoundDriverConfig::Lockstep => {
                ctrl.pacer.wait_for_round(round);
                // The schedule is untouched by quorum state; the check
                // only feeds the advance-cause metric. (Draining early
                // is safe: admission partitions by `sent_round` inside
                // the step, so *when* a delivery is pulled off the
                // transport never changes *what* is admitted.)
                round >= 1 && proc.ready_senders(round, &mut transport) >= quorum
            }
            RoundDriverConfig::QuorumOrTimeout { .. } => {
                let timeout = cfg
                    .driver
                    .timeout_duration(ctrl.pacer.delta_at(round))
                    .saturating_mul(1u32 << backoff_shift.min(crate::driver::MAX_BACKOFF_SHIFT));
                let now = Instant::now();
                let deadline = sched_deadline.max(now).min(now + timeout) + timeout;
                sched_deadline = deadline;
                let mut ready = false;
                loop {
                    if round >= 1 && proc.ready_senders(round, &mut transport) >= quorum {
                        ready = true;
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_micros(100)));
                }
                ready
            }
        };

        let proc_start = Instant::now();
        let status: StepStatus = proc.step(round, &mut transport, &ctrl.metrics);
        if status.executed {
            // Observability: per-round processing latency and synchrony
            // monitoring. Processing past the round's deadline means a
            // peer may have missed this round's messages. Dead rounds
            // record nothing — a crashed process has no processing.
            let proc_end = Instant::now();
            let latency_us =
                u64::try_from(proc_end.duration_since(proc_start).as_micros()).unwrap_or(u64::MAX);
            let overran = match &cfg.driver {
                // Lockstep: past the global deadline of the round.
                RoundDriverConfig::Lockstep => ctrl.pacer.overran(round),
                // Event-driven: there is no global deadline; an overrun
                // is processing that outlasts the effective δ itself.
                RoundDriverConfig::QuorumOrTimeout { .. } => {
                    proc_end.duration_since(proc_start) > ctrl.pacer.delta_at(round)
                }
            };
            {
                let mut m = ctrl.metrics.lock();
                m.round_latency.record_us(latency_us);
                if round >= 1 {
                    match quorum_ready {
                        true => m.advance.quorum += 1,
                        false => m.advance.timeout += 1,
                    }
                }
            }
            if overran {
                ctrl.overruns.fetch_add(1, Ordering::Relaxed);
            }
            if !cfg.driver.is_lockstep() {
                crate::driver::update_backoff_shift(&mut backoff_shift, status.late_admitted);
            }
        }
        ctrl.done_flags[i].store(status.done, Ordering::SeqCst);

        if is_coordinator {
            coordinate(&ctrl, &corrupt, &cfg, round, &mut overruns_seen, &mut consecutive_overruns);
        }
        round += 1;
    }
    ctrl.backpressure.fetch_add(transport.backpressure(), Ordering::Relaxed);
    transport.finish();
    (proc.finish(&ctrl.metrics), round)
}

/// The coordinator's end-of-round decision: stop (exactly one recorded
/// outcome) or approve the next round, possibly escalating δ first.
fn coordinate(
    ctrl: &Control,
    corrupt: &[bool],
    cfg: &WorkerConfig,
    round: u64,
    overruns_seen: &mut u64,
    consecutive_overruns: &mut u32,
) {
    let n = corrupt.len();
    let all_done =
        (0..n).filter(|&j| !corrupt[j]).all(|j| ctrl.done_flags[j].load(Ordering::SeqCst));
    if all_done {
        ctrl.record_outcome(
            Outcome { completed: true, rounds: round + 1, aborted: None },
            round + 1,
        );
        return;
    }
    if round + 1 >= cfg.max_rounds {
        ctrl.record_outcome(
            Outcome { completed: false, rounds: round + 1, aborted: None },
            round + 1,
        );
        return;
    }

    // Overrun bookkeeping: "this round overran" means the global counter
    // moved since the coordinator last looked. (Laggard threads may
    // attribute an overrun to the next coordinator round — the window is
    // a sustained-degradation heuristic, not an exact per-round flag.)
    let overruns_now = ctrl.overruns.load(Ordering::Relaxed);
    if overruns_now > *overruns_seen {
        *consecutive_overruns += 1;
    } else {
        *consecutive_overruns = 0;
    }
    *overruns_seen = overruns_now;

    if *consecutive_overruns >= cfg.overrun_window {
        match &cfg.overrun_action {
            OverrunAction::Count => {}
            OverrunAction::Escalate { multiplier, max_delta } => {
                let old_delta = ctrl.pacer.delta_at(round + 1);
                let new_delta = old_delta.saturating_mul((*multiplier).max(2)).min(*max_delta);
                if new_delta > old_delta {
                    // Round r+1 is already approved under the old pacing;
                    // the new δ takes effect at r+2.
                    ctrl.pacer.escalate(round + 2, new_delta);
                    ctrl.escalations.lock().push(Escalation {
                        at_round: round + 2,
                        old_delta,
                        new_delta,
                    });
                }
                *consecutive_overruns = 0;
            }
            OverrunAction::Abort => {
                ctrl.record_outcome(
                    Outcome {
                        completed: false,
                        rounds: round + 1,
                        aborted: Some(ClusterDiagnostic {
                            reason: AbortReason::SustainedOverruns {
                                consecutive: *consecutive_overruns,
                                window: cfg.overrun_window,
                            },
                            round,
                            overruns: overruns_now,
                            delta: ctrl.pacer.delta_at(round),
                        }),
                    },
                    round + 1,
                );
                return;
            }
        }
    }
    ctrl.approved.store(round + 2, Ordering::SeqCst);
}

/// Blocks a worker until its next round is approved or the run stops. A
/// multi-minute wait means the coordinator died mid-run; the worker then
/// stops the cluster with a [`AbortReason::CoordinatorStalled`]
/// diagnostic instead of spinning forever.
fn wait_for_approval(ctrl: &Control, round: u64) -> Approval {
    let stall_after = ctrl.pacer.delta_at(round).saturating_mul(64).max(Duration::from_secs(60));
    let wait_start = Instant::now();
    loop {
        if ctrl.stop_at.load(Ordering::SeqCst) <= round {
            return Approval::Stop;
        }
        if ctrl.approved.load(Ordering::SeqCst) > round {
            return Approval::Go;
        }
        if wait_start.elapsed() > stall_after {
            ctrl.record_outcome(
                Outcome {
                    completed: false,
                    rounds: round,
                    aborted: Some(ClusterDiagnostic {
                        reason: AbortReason::CoordinatorStalled,
                        round,
                        overruns: ctrl.overruns.load(Ordering::Relaxed),
                        delta: ctrl.pacer.delta_at(round),
                    }),
                },
                round,
            );
            return Approval::Stop;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
}
