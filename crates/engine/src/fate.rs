//! Process-level fault injection: crash-restart fates and the rebuilder
//! hook that restores a crashed process from its durable journal.
//!
//! Every backend resolves each process's [`ProcessFate`] **exactly once**,
//! before the run starts, via [`resolve_fates`]: the historical bug class
//! where each runtime independently defaulted missing fates (and only
//! discovered a missing rebuilder mid-run) cannot recur, because the
//! per-round driver only ever sees a [`ResolvedFate`].

use meba_crypto::ProcessId;
use meba_sim::{AnyActor, Message};
use std::sync::Arc;

/// Process-level fault injection: what happens to one process over the
/// run (see `ClusterConfig::process_fate`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessFate {
    /// Run normally for the whole run (the default).
    Run,
    /// Crash at the start of round `at_round`: all in-memory state and
    /// buffered messages are lost and inbound traffic is discarded while
    /// down. After `rejoin_after` dead rounds the process restarts via
    /// the run's [`ActorRebuilder`] (replaying its durable journal) and
    /// rejoins live. Without a rebuilder the crash is permanent — the
    /// process behaves like a crash-faulty one from `at_round` on.
    CrashRestart {
        /// First round the process is down for.
        at_round: u64,
        /// Dead rounds before the restart attempt.
        rejoin_after: u64,
    },
}

/// Per-process factory assigning each process its [`ProcessFate`].
pub type ProcessFateFactory = Arc<dyn Fn(ProcessId) -> ProcessFate + Send + Sync>;

/// A restarted actor as rebuilt from its durable journal, plus the
/// recovery statistics the runtime folds into
/// [`meba_sim::metrics::RecoveryStats`].
pub struct RebuiltActor<M: Message> {
    /// The reconstructed actor (e.g. a `LockstepAdapter` over
    /// `meba-core`'s `Recoverable` wrapper recovered from its journal).
    pub actor: Box<dyn AnyActor<Msg = M>>,
    /// First step the actor will execute live; everything below was
    /// reconstructed by journal replay.
    pub resume_step: u64,
    /// Journal records replayed during reconstruction.
    pub replayed_records: u64,
    /// fsync batches the journal had performed pre-crash.
    pub journal_fsyncs: u64,
}

/// Rebuilds a crashed process from its durable state. Called once per
/// rejoin, on the process's own thread.
pub type ActorRebuilder<M> = Arc<dyn Fn(ProcessId) -> RebuiltActor<M> + Send + Sync>;

/// A [`ProcessFate`] after up-front resolution against the run's actual
/// recovery capability: the restart half of a
/// [`ProcessFate::CrashRestart`] either has a concrete rejoin round or
/// was rejected (downgraded to a permanent crash) because the run has no
/// rebuilder. The per-round driver never consults the rebuilder's
/// presence mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedFate {
    /// Run normally for the whole run.
    Run,
    /// Crash at the start of `at_round`; rejoin at the start of
    /// `rejoin_at` (`None` = never — the crash is permanent).
    Crash {
        /// First round the process is down for.
        at_round: u64,
        /// First round at which the restart fires, if the run can
        /// rebuild the process at all.
        rejoin_at: Option<u64>,
    },
}

/// Resolves one fate against the run's recovery capability. A
/// `CrashRestart` without a rebuilder resolves to a permanent crash —
/// decided here, up front, not discovered mid-run. The rejoin round
/// saturates: `rejoin_after: u64::MAX` is the idiom for "crash and never
/// come back" even when a rebuilder exists.
pub fn resolve_fate(fate: ProcessFate, has_rebuilder: bool) -> ResolvedFate {
    match fate {
        ProcessFate::Run => ResolvedFate::Run,
        ProcessFate::CrashRestart { at_round, rejoin_after } => ResolvedFate::Crash {
            at_round,
            rejoin_at: has_rebuilder.then(|| at_round.saturating_add(rejoin_after)),
        },
    }
}

/// Resolves every process's fate exactly once, before the run starts.
/// Processes the factory does not cover (or all of them, when there is no
/// factory) default to [`ResolvedFate::Run`] — one defaulting site for
/// every backend.
pub fn resolve_fates(
    n: usize,
    factory: Option<&ProcessFateFactory>,
    has_rebuilder: bool,
) -> Vec<ResolvedFate> {
    (0..n)
        .map(|i| {
            let fate = factory.map_or(ProcessFate::Run, |f| f(ProcessId(i as u32)));
            resolve_fate(fate, has_rebuilder)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_resolves_to_run() {
        assert_eq!(resolve_fate(ProcessFate::Run, true), ResolvedFate::Run);
        assert_eq!(resolve_fate(ProcessFate::Run, false), ResolvedFate::Run);
    }

    #[test]
    fn crash_restart_without_rebuilder_is_rejected_up_front() {
        let fate = ProcessFate::CrashRestart { at_round: 3, rejoin_after: 2 };
        assert_eq!(resolve_fate(fate, false), ResolvedFate::Crash { at_round: 3, rejoin_at: None });
        assert_eq!(
            resolve_fate(fate, true),
            ResolvedFate::Crash { at_round: 3, rejoin_at: Some(5) }
        );
    }

    #[test]
    fn missing_factory_defaults_every_process_to_run() {
        assert_eq!(resolve_fates(3, None, true), vec![ResolvedFate::Run; 3]);
    }
}
