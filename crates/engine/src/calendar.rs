//! Monotone calendar (bucket) queue for the discrete-event backend.
//!
//! The DES schedules two kinds of timestamped items — message arrivals
//! and round deadlines — and consumes them strictly in virtual-time
//! order. A general-purpose `BinaryHeap` pays `O(log n)` comparisons and
//! pointer-chasing sift operations per push *and* pop; at n = 4097 a
//! single broadcast round moves ~n² arrival events through the heap and
//! the heap becomes the simulator's bottleneck. This queue exploits the
//! two properties the DES guarantees:
//!
//! 1. **Monotone pops**: the virtual clock never goes backwards, so
//!    items are popped in non-decreasing time order.
//! 2. **No past pushes**: every item is scheduled at or after the
//!    current clock (`latency ≥ 1` for arrivals, `timeout ≥ 1` for
//!    deadlines).
//!
//! Layout: a ring of `NB` buckets, each `width` virtual nanoseconds
//! wide, covering the sliding window `[base_day, base_day + NB)` of
//! "days" (`day = time / width`). Each in-window day maps to exactly one
//! bucket slot (`day % NB`), so a slot never mixes items from different
//! days. Items beyond the window wait in an overflow `BinaryHeap` and
//! migrate into the ring exactly once, when the window slides over their
//! day. Pushes append unsorted in `O(1)`; a bucket is sorted once
//! (descending, so pops are `Vec::pop` from the tail) when it becomes
//! the front bucket. An occupancy bitmap makes "first non-empty bucket"
//! a handful of word scans. Bucket `Vec`s keep their capacity across the
//! window wrapping around the ring, so steady-state scheduling reuses
//! the same allocations — this is the event-struct pool.
//!
//! Total order: ties within a day are broken by the item's full `Ord`
//! (the DES keys items by `(time, seq)` with unique `seq`), and the
//! per-bucket sort uses that same order, so the pop sequence is
//! *identical* to `BinaryHeap<Reverse<T>>` — property-checked against
//! the heap in the tests below and in `tests/calendar_vs_heap.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of ring buckets. Power of two so `day % NB` is a mask.
const NB: usize = 1024;

/// An item schedulable on the virtual timeline. `Ord` must order by
/// time first (ties broken arbitrarily but totally), and `time_ns` must
/// agree with that order.
pub trait TimeKeyed: Ord {
    /// The virtual instant this item is scheduled at.
    fn time_ns(&self) -> u128;
}

/// Min-queue over [`TimeKeyed`] items; see the module docs for the
/// layout and the monotonicity contract.
#[derive(Debug)]
pub struct CalendarQueue<T: TimeKeyed> {
    buckets: Vec<Vec<T>>,
    /// One bit per slot: does the bucket hold any items?
    occupied: [u64; NB / 64],
    /// First day of the ring window; every bucketed item's day is in
    /// `[base_day, base_day + NB)`.
    base_day: u128,
    /// The day whose bucket is currently sorted (descending) for
    /// popping, if any.
    active_day: Option<u128>,
    /// Bucket width in virtual nanoseconds.
    width: u128,
    /// Items scheduled at or beyond `base_day + NB`.
    overflow: BinaryHeap<Reverse<T>>,
    /// Items currently in ring buckets (excludes overflow).
    in_buckets: usize,
}

impl<T: TimeKeyed> CalendarQueue<T> {
    /// Creates a queue whose buckets are `width_ns` wide (clamped to at
    /// least 1). The DES uses `δ / 256`, putting a round's arrivals and
    /// deadlines a few buckets apart and the whole window at 4δ.
    pub fn new(width_ns: u64) -> Self {
        CalendarQueue {
            buckets: (0..NB).map(|_| Vec::new()).collect(),
            occupied: [0; NB / 64],
            base_day: 0,
            active_day: None,
            width: u128::from(width_ns.max(1)),
            overflow: BinaryHeap::new(),
            in_buckets: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_of(day: u128) -> usize {
        (day % NB as u128) as usize
    }

    fn day_of(&self, t: &T) -> u128 {
        t.time_ns() / self.width
    }

    /// Inserts `item`. Items scheduled before the queue's current front
    /// (which the monotonicity contract rules out) are still handled
    /// correctly: they join the front bucket and sort to its head.
    pub fn push(&mut self, item: T) {
        let day = self.day_of(&item).max(self.base_day);
        if day >= self.base_day + NB as u128 {
            self.overflow.push(Reverse(item));
            return;
        }
        let slot = Self::slot_of(day);
        let bucket = &mut self.buckets[slot];
        if self.active_day == Some(day) {
            // The front bucket is kept sorted descending; insert in
            // place so tail pops stay in order.
            let pos = bucket.partition_point(|x| *x > item);
            bucket.insert(pos, item);
        } else {
            bucket.push(item);
        }
        self.occupied[slot / 64] |= 1 << (slot % 64);
        self.in_buckets += 1;
    }

    /// First occupied slot in day order from `base_day`, as `(slot, day)`.
    fn first_occupied(&self) -> Option<(usize, u128)> {
        if self.in_buckets == 0 {
            return None;
        }
        let start = Self::slot_of(self.base_day);
        // Scan the occupancy bitmap circularly from `start`; the first
        // set bit in circular slot order is the earliest in-window day.
        let mut offset = 0usize;
        while offset < NB {
            let slot = (start + offset) & (NB - 1);
            let word = self.occupied[slot / 64];
            if word == 0 {
                // Skip to the next word boundary.
                offset += 64 - (slot % 64);
                continue;
            }
            let masked = word >> (slot % 64);
            if masked == 0 {
                offset += 64 - (slot % 64);
                continue;
            }
            let found = (start + offset + masked.trailing_zeros() as usize) & (NB - 1);
            let day = self.base_day + ((found + NB - start) & (NB - 1)) as u128;
            return Some((found, day));
        }
        None
    }

    /// Moves overflow items whose day entered the window into buckets.
    fn migrate_overflow(&mut self) {
        let end = self.base_day + NB as u128;
        while let Some(Reverse(t)) = self.overflow.peek() {
            if self.day_of(t) >= end {
                break;
            }
            let Some(Reverse(item)) = self.overflow.pop() else { unreachable!() };
            let slot = Self::slot_of(self.day_of(&item));
            debug_assert_ne!(self.active_day, Some(self.day_of(&item)));
            self.buckets[slot].push(item);
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.in_buckets += 1;
        }
    }

    /// Slides the window / sorts the front bucket so the minimum item is
    /// the tail of `buckets[slot]`; returns that slot.
    fn prepare_front(&mut self) -> Option<usize> {
        if self.in_buckets == 0 {
            // Everything queued (if anything) is in overflow: slide the
            // window to the overflow minimum and pull its day in.
            let front_day = match self.overflow.peek() {
                Some(Reverse(t)) => self.day_of(t),
                None => return None,
            };
            self.base_day = front_day;
            self.migrate_overflow();
        }
        let (slot, day) = self.first_occupied().expect("in_buckets > 0 after migration");
        if day > self.base_day {
            // The window advanced past empty buckets; expose the newly
            // covered days to the overflow before popping.
            self.base_day = day;
            self.migrate_overflow();
            // Migration can only add items at `day` or later, and items
            // at `day` land in this same slot, so `slot` still fronts
            // the queue.
        }
        if self.active_day != Some(day) {
            self.buckets[slot].sort_unstable_by(|a, b| b.cmp(a));
            self.active_day = Some(day);
        }
        Some(slot)
    }

    /// The minimum item, if any. `&mut` because the front bucket is
    /// sorted lazily on first access.
    pub fn peek(&mut self) -> Option<&T> {
        let slot = self.prepare_front()?;
        self.buckets[slot].last()
    }

    /// Removes and returns the minimum item.
    pub fn pop(&mut self) -> Option<T> {
        let slot = self.prepare_front()?;
        let item = self.buckets[slot].pop();
        debug_assert!(item.is_some());
        if self.buckets[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
            self.active_day = None;
        }
        self.in_buckets -= 1;
        item
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl TimeKeyed for (u128, u64) {
        fn time_ns(&self) -> u128 {
            self.0
        }
    }

    #[test]
    fn drains_in_time_then_seq_order() {
        let mut q = CalendarQueue::<(u128, u64)>::new(4);
        for (t, s) in [(50u128, 0u64), (3, 1), (3, 2), (700, 3), (50, 4), (0, 5)] {
            q.push((t, s));
        }
        let mut out = Vec::new();
        while let Some(x) = q.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![(0, 5), (3, 1), (3, 2), (50, 0), (50, 4), (700, 3)]);
    }

    #[test]
    fn overflow_items_migrate_into_the_window() {
        let mut q = CalendarQueue::<(u128, u64)>::new(1);
        // Far beyond the NB-day window, forcing overflow + later slides.
        q.push((5 * NB as u128, 1));
        q.push((2, 2));
        q.push((11 * NB as u128, 3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.pop(), Some((5 * NB as u128, 1)));
        // Push into the newly slid window between pops.
        q.push((5 * NB as u128 + 1, 4));
        assert_eq!(q.pop(), Some((5 * NB as u128 + 1, 4)));
        assert_eq!(q.pop(), Some((11 * NB as u128, 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_into_sorted_front_bucket_keeps_order() {
        let mut q = CalendarQueue::<(u128, u64)>::new(100);
        q.push((10, 0));
        q.push((30, 1));
        assert_eq!(q.peek(), Some(&(10, 0))); // sorts the front bucket
        q.push((20, 2)); // binary-inserted into the active bucket
        q.push((5, 3));
        assert_eq!(q.pop(), Some((5, 3)));
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 1)));
    }

    #[test]
    fn matches_binary_heap_on_seeded_random_interleaving() {
        // Deterministic pseudo-random push/pop interleaving mirroring the
        // DES contract: pushes never precede the last popped time.
        let mut rng = 0x5eed_cafe_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for width in [1u64, 3, 256, 1_000_000] {
            let mut q = CalendarQueue::<(u128, u64)>::new(width);
            let mut model: BinaryHeap<Reverse<(u128, u64)>> = BinaryHeap::new();
            let mut now = 0u128;
            let mut seq = 0u64;
            for _ in 0..4_000 {
                if next() % 3 != 0 || model.is_empty() {
                    let horizon = if next() % 7 == 0 { 1 << 20 } else { 4096 };
                    let t = now + u128::from(next() % horizon);
                    q.push((t, seq));
                    model.push(Reverse((t, seq)));
                    seq += 1;
                } else {
                    let got = q.pop();
                    let want = model.pop().map(|Reverse(x)| x);
                    assert_eq!(got, want);
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
            }
            let mut rest_q = Vec::new();
            while let Some(x) = q.pop() {
                rest_q.push(x);
            }
            let mut rest_m = Vec::new();
            while let Some(Reverse(x)) = model.pop() {
                rest_m.push(x);
            }
            assert_eq!(rest_q, rest_m, "width {width}");
        }
    }
}
