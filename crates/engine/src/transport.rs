//! The [`Transport`] abstraction every backend plugs into the engine, and
//! the [`SendPolicy`] fault-injection hook applied at the send edge.

use meba_crypto::ProcessId;
use meba_sim::faults::{Link, LinkFate, LinkPolicy};
use meba_sim::Message;

/// A message in flight, tagged with its authenticated sender and the
/// round it was sent in. The round tag is what makes the synchronous
/// abstraction portable: every backend delivers a message to the round
/// *after* its `sent_round`, however the bytes actually moved.
pub struct Delivery<M> {
    /// Link-level sender.
    pub from: ProcessId,
    /// Round the message was sent in.
    pub sent_round: u64,
    /// The payload.
    pub msg: M,
}

/// One process's view of the network: the engine's per-round driver is
/// generic over this trait, and each backend (crossbeam channels, TCP
/// mesh, discrete-event queue) supplies its own implementation.
///
/// Implementations carry bytes; *all* word/byte accounting, link-fault
/// application, and round bookkeeping happen in the engine, once, above
/// this trait.
pub trait Transport<M: Message> {
    /// Sends `msg` to `to`, tagged with `sent_round`. Self-sends
    /// (`to == me`) must loop back like any other delivery. May block
    /// under backpressure; may silently drop if the peer is gone (the run
    /// is over for that peer).
    fn send(&mut self, to: ProcessId, sent_round: u64, msg: &M);

    /// Moves every delivery that has arrived so far into `out`,
    /// preserving arrival order.
    fn drain(&mut self, out: &mut Vec<Delivery<M>>);

    /// Tears down the directed link to `to` (TCP: closes the socket so
    /// the reconnect path runs). In-memory backends have nothing to tear
    /// down.
    fn sever(&mut self, _to: ProcessId) {}

    /// Full local teardown at a crash: the process lost its volatile
    /// state; a socket backend severs every peer link so peers observe
    /// resets. The engine separately discards buffered deliveries.
    fn crash(&mut self) {}

    /// Times a send blocked on a full link so far (folded into
    /// [`crate::ClusterReport::backpressure`] at the end of the run).
    fn backpressure(&self) -> u64 {
        0
    }

    /// Releases the transport at the end of the run (TCP: shuts the mesh
    /// down on the owning thread).
    fn finish(self)
    where
        Self: Sized,
    {
    }
}

/// What happens to one outbound message at the send edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendFate {
    /// Hand the message to the transport normally.
    Deliver,
    /// Silently discard it (the sender still pays its words).
    Drop,
    /// Hold it back for this many rounds, then transmit it with its
    /// original `sent_round` — the recipient sees it past the synchrony
    /// bound.
    DelayRounds(u64),
    /// Discard it *and* tear the connection down
    /// ([`Transport::sever`]) — TCP exercises its reconnect path;
    /// in-memory backends treat this as a plain drop.
    Sever,
}

impl From<LinkFate> for SendFate {
    fn from(f: LinkFate) -> Self {
        match f {
            LinkFate::Deliver => SendFate::Deliver,
            LinkFate::Drop => SendFate::Drop,
            LinkFate::DelayRounds(k) => SendFate::DelayRounds(k),
        }
    }
}

/// Send-edge fault injection: judges every outbound message on a remote
/// link. Self-links are never consulted.
pub trait SendPolicy: Send {
    /// The fate of one message on `link` sent during `round`.
    fn fate(&mut self, link: Link, round: u64) -> SendFate;
}

impl<F: FnMut(Link, u64) -> SendFate + Send> SendPolicy for F {
    fn fate(&mut self, link: Link, round: u64) -> SendFate {
        self(link, round)
    }
}

/// Adapts a [`LinkPolicy`] (the lockstep simulator's fault vocabulary)
/// into a [`SendPolicy`], so every stock policy in [`meba_sim::faults`]
/// works on every backend unchanged.
pub struct LinkPolicySendAdapter(pub Box<dyn LinkPolicy>);

impl SendPolicy for LinkPolicySendAdapter {
    fn fate(&mut self, link: Link, round: u64) -> SendFate {
        self.0.fate(link, round).into()
    }
}
