//! Deterministic discrete-event backend: a seeded virtual clock, a
//! binary-heap event queue, and no threads.
//!
//! Every inter-process message becomes an event on a virtual nanosecond
//! timeline with a seeded per-message link latency strictly inside
//! `(0, δ)`, so the synchronous delivery rule ("sent in round `r`,
//! processed in round `r + 1`") reproduces exactly — but a round of
//! n = 200 processes costs microseconds of host time instead of a real
//! δ of wall clock per round and two OS threads per process. This is the
//! backend for asymptotic word/round measurements (`O(n(f+1))` vs the
//! `Ω(n²)` fallback crossover) at system sizes the paced runtimes cannot
//! reach.
//!
//! Determinism: same actors, same [`DesConfig`] (including `seed`) ⇒
//! byte-identical [`Metrics`]. Time is virtual, processes step in id
//! order, the event heap breaks timestamp ties by a global send sequence
//! number, and each round's deliveries surface in send order — the same
//! per-round FIFO order the lockstep simulator produces, so decisions
//! and word counts are comparable across backends (see the cross-runtime
//! equivalence tests in `meba-testkit`). The rushing-adversary wave
//! scheduling of `meba_sim::Simulation` is the one lockstep feature this
//! backend does not model: corrupt actors observe a round's traffic one
//! round later, like everyone else.

use crate::config::{ClusterReport, LinkPolicyFactory};
use crate::fate::{resolve_fates, ActorRebuilder, ProcessFateFactory};
use crate::pacer::VirtualPacer;
use crate::process::EngineProcess;
use crate::transport::{Delivery, LinkPolicySendAdapter, SendPolicy, Transport};
use meba_crypto::ProcessId;
use meba_sim::{AnyActor, Message, Metrics};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Configuration of a [`run_des_cluster`] invocation.
#[derive(Clone)]
pub struct DesConfig {
    /// Virtual round duration δ in nanoseconds (≥ 2; the default is
    /// 1 ms of virtual time). Purely nominal — host wall clock never
    /// enters the schedule.
    pub delta_ns: u64,
    /// Seed for the per-message link-latency sampling.
    pub seed: u64,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Byzantine identities (excluded from correct-word accounting and
    /// from the done-check).
    pub corrupt: Vec<ProcessId>,
    /// Link-fault injection, same factory type as the paced backends.
    pub link_policy: Option<LinkPolicyFactory>,
    /// Process-level fault injection (crash-restart), resolved once up
    /// front like every backend.
    pub process_fate: Option<ProcessFateFactory>,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            delta_ns: 1_000_000,
            seed: 0xd15c,
            max_rounds: 10_000,
            corrupt: Vec::new(),
            link_policy: None,
            process_fate: None,
        }
    }
}

/// A [`DesConfig`] the backend cannot honor. Returned by
/// [`run_des_cluster`] before any actor steps, so a bad configuration
/// fails loudly and typed instead of panicking mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesConfigError {
    /// `delta_ns < 2`: link latency is sampled *strictly inside*
    /// `(0, δ)`, and on an integer nanosecond timeline that open
    /// interval is empty for δ ≤ 1 — there is no latency that both
    /// leaves the sender's round and arrives before the next one.
    DeltaTooSmall {
        /// The rejected value.
        delta_ns: u64,
    },
}

impl std::fmt::Display for DesConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesConfigError::DeltaTooSmall { delta_ns } => write!(
                f,
                "delta_ns = {delta_ns} is too small: the DES backend samples link \
                 latency strictly inside (0, \u{3b4}), which needs \u{3b4} \u{2265} 2 ns"
            ),
        }
    }
}

impl std::error::Error for DesConfigError {}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A delivery scheduled on the virtual timeline. Ordered by
/// `(at_ns, seq)`; `seq` is unique, so the order is total and
/// deterministic.
struct Event<M> {
    at_ns: u128,
    seq: u64,
    to: usize,
    delivery: Delivery<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

/// The shared virtual network: clock, event heap, and per-process
/// mailboxes of already-arrived deliveries.
struct DesNet<M> {
    now_ns: u128,
    seq: u64,
    delta_ns: u64,
    seed: u64,
    heap: BinaryHeap<Reverse<Event<M>>>,
    mailboxes: Vec<Vec<Delivery<M>>>,
}

impl<M: Message> DesNet<M> {
    fn new(n: usize, delta_ns: u64, seed: u64) -> Self {
        DesNet {
            now_ns: 0,
            seq: 0,
            delta_ns,
            seed,
            heap: BinaryHeap::new(),
            mailboxes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Seeded link latency strictly inside `(0, δ)`: arrival lands in
    /// the sending round's window, so the `sent_round < round` delivery
    /// rule behaves exactly as on the paced backends.
    fn latency_ns(&self, from: ProcessId, to: ProcessId, seq: u64) -> u64 {
        let x = splitmix(
            self.seed
                ^ splitmix(u64::from(from.0))
                ^ splitmix(u64::from(to.0)).rotate_left(17)
                ^ splitmix(seq).rotate_left(34),
        );
        1 + x % (self.delta_ns - 1).max(1)
    }

    fn send(&mut self, from: ProcessId, to: ProcessId, sent_round: u64, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        let at_ns = self.now_ns + u128::from(self.latency_ns(from, to, seq));
        self.heap.push(Reverse(Event {
            at_ns,
            seq,
            to: to.index(),
            delivery: Delivery { from, sent_round, msg },
        }));
    }

    /// Advances the virtual clock to `t`, moving every event due by then
    /// into its mailbox. Due events surface in send (`seq`) order — the
    /// per-round FIFO order every other backend produces — rather than
    /// raw arrival order, so inbox order (and thus any order-sensitive
    /// tie-break in an actor) is backend-independent.
    fn advance_to(&mut self, t: u128) {
        let mut due: Vec<Event<M>> = Vec::new();
        while self.heap.peek().is_some_and(|Reverse(e)| e.at_ns <= t) {
            due.push(self.heap.pop().expect("peeked").0);
        }
        due.sort_by_key(|e| e.seq);
        for e in due {
            self.mailboxes[e.to].push(e.delivery);
        }
        self.now_ns = t;
    }
}

/// One process's handle on the shared virtual network.
struct DesTransport<M: Message> {
    me: ProcessId,
    net: Rc<RefCell<DesNet<M>>>,
}

impl<M: Message> Transport<M> for DesTransport<M> {
    fn send(&mut self, to: ProcessId, sent_round: u64, msg: &M) {
        self.net.borrow_mut().send(self.me, to, sent_round, msg.clone());
    }

    fn drain(&mut self, out: &mut Vec<Delivery<M>>) {
        out.append(&mut self.net.borrow_mut().mailboxes[self.me.index()]);
    }

    fn crash(&mut self) {
        // A crashed process has no mailbox; in-flight events will land
        // and be discarded by the engine's dead-round drains.
        self.net.borrow_mut().mailboxes[self.me.index()].clear();
    }
}

/// Runs `actors` on the discrete-event backend until every correct actor
/// is done or the round budget is exhausted. Single-threaded and fully
/// deterministic; returns the same [`ClusterReport`] shape as the paced
/// backends (overruns and backpressure are structurally zero, and a DES
/// run never aborts).
///
/// # Errors
///
/// Rejects a [`DesConfig`] with `delta_ns < 2` ([`DesConfigError`]): the
/// latency interval `(0, δ)` holds no integer nanosecond at those sizes,
/// so no schedule can satisfy the synchronous delivery rule.
///
/// # Panics
///
/// Panics if `actors` is empty or ids are not `p0..p(n-1)` in order.
pub fn run_des_cluster<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    config: DesConfig,
) -> Result<ClusterReport<M>, DesConfigError> {
    if config.delta_ns < 2 {
        return Err(DesConfigError::DeltaTooSmall { delta_ns: config.delta_ns });
    }
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }
    let pacer = VirtualPacer::new(config.delta_ns);
    let fates = resolve_fates(n, config.process_fate.as_ref(), rebuilder.is_some());
    let corrupt: Vec<bool> =
        (0..n).map(|i| config.corrupt.iter().any(|c| c.index() == i)).collect();

    let net = Rc::new(RefCell::new(DesNet::<M>::new(n, pacer.delta_ns(), config.seed)));
    let mut transports: Vec<DesTransport<M>> =
        (0..n).map(|i| DesTransport { me: ProcessId(i as u32), net: net.clone() }).collect();
    let metrics = Mutex::new(Metrics::default());
    let mut procs: Vec<EngineProcess<M>> = actors
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let policy = config.link_policy.as_ref().map(|f| {
                Box::new(LinkPolicySendAdapter(f(ProcessId(i as u32)))) as Box<dyn SendPolicy>
            });
            EngineProcess::new(a, n, !corrupt[i], fates[i], rebuilder.clone(), policy)
        })
        .collect();

    let mut done = vec![false; n];
    let mut round = 0u64;
    let mut completed = false;
    while round < config.max_rounds {
        net.borrow_mut().advance_to(pacer.round_start_ns(round));
        for (i, proc) in procs.iter_mut().enumerate() {
            done[i] = proc.step(round, &mut transports[i], &metrics).done;
        }
        round += 1;
        if (0..n).filter(|&j| !corrupt[j]).all(|j| done[j]) {
            completed = true;
            break;
        }
    }

    let actors_back: Vec<Box<dyn AnyActor<Msg = M>>> =
        procs.into_iter().map(|p| p.finish(&metrics)).collect();
    let mut metrics = metrics.into_inner();
    metrics.rounds = round;
    Ok(ClusterReport {
        metrics,
        rounds: round,
        actors: actors_back,
        completed,
        overruns: 0,
        backpressure: 0,
        escalations: Vec::new(),
        aborted: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::{Actor, AnyActor, RoundCtx};

    #[derive(Clone, Debug)]
    struct Tick;
    impl Message for Tick {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Echo(ProcessId, bool);
    impl Actor for Echo {
        type Msg = Tick;
        fn id(&self) -> ProcessId {
            self.0
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tick>) {
            if ctx.round() == meba_sim::Round(0) {
                ctx.broadcast(Tick);
            }
            self.1 = !ctx.inbox().is_empty();
        }
        fn done(&self) -> bool {
            self.1
        }
    }

    fn echoes(n: usize) -> Vec<Box<dyn AnyActor<Msg = Tick>>> {
        (0..n).map(|i| Box::new(Echo(ProcessId(i as u32), false)) as _).collect()
    }

    #[test]
    fn zero_and_one_nanosecond_deltas_are_rejected_typed() {
        // δ = 0: the open interval (0, 0) is empty — previously this
        // underflowed `delta_ns - 1` in the latency sampler. δ = 1 has
        // the same problem one step later: (0, 1) holds no integer.
        for bad in [0u64, 1] {
            let err =
                run_des_cluster(echoes(3), None, DesConfig { delta_ns: bad, ..Default::default() })
                    .unwrap_err();
            assert_eq!(err, DesConfigError::DeltaTooSmall { delta_ns: bad });
            let rendered = err.to_string();
            assert!(rendered.contains(&bad.to_string()), "message names the value: {rendered}");
        }
    }

    #[test]
    fn two_nanoseconds_is_the_smallest_accepted_delta() {
        // δ = 2 admits exactly one latency (1 ns) — degenerate but legal,
        // and the config check must not over-reject it.
        let report =
            run_des_cluster(echoes(3), None, DesConfig { delta_ns: 2, ..Default::default() })
                .expect("delta_ns = 2 is accepted");
        assert!(report.completed);
    }
}
