//! Deterministic discrete-event backend: a seeded virtual clock, a
//! calendar-bucket event queue (see [`crate::calendar`]), and no
//! threads.
//!
//! Every inter-process message becomes an event on a virtual nanosecond
//! timeline with a seeded per-message link latency strictly inside
//! `(0, δ)`, so the synchronous delivery rule ("sent in round `r`,
//! processed in round `r + 1`") reproduces exactly — but a round of
//! n = 200 processes costs microseconds of host time instead of a real
//! δ of wall clock per round and two OS threads per process. This is the
//! backend for asymptotic word/round measurements (`O(n(f+1))` vs the
//! `Ω(n²)` fallback crossover) at system sizes the paced runtimes cannot
//! reach.
//!
//! Since the event-driven refactor the backend is *per-process-clocked*:
//! each process owns a round counter and advances it when its
//! [`RoundDriverConfig`] says so — at the global schedule `r · δ`
//! (lockstep, the default), or at quorum-or-local-timeout (partial
//! synchrony). On top of the driver the config models three timing
//! hazards from the paper's synchrony discussion:
//!
//! * **clock skew** ([`DesConfig::max_skew_ns`]) — seeded per-process
//!   start offsets, so "round r" happens at different instants on
//!   different processes;
//! * **GST** ([`DesConfig::gst_ns`]) — before a global stabilization
//!   time, link latency is sampled up to
//!   [`DesConfig::pre_gst_delay_ns`] (typically ≫ δ); after it, strictly
//!   inside `(0, δ)`;
//! * **asymmetric links** ([`DesConfig::link_floor_ns`]) — a per-directed-
//!   link latency floor, so some links are systematically slower.
//!
//! Determinism: same actors, same [`DesConfig`] (including `seed`) ⇒
//! byte-identical [`Metrics`]. Time is virtual; simultaneous events
//! resolve arrivals first (in global send order) and then round
//! executions in process-id order — under the lockstep driver this
//! reproduces the pre-refactor global loop ("deliver everything due,
//! then step processes in id order") event for event, which is why the
//! cross-runtime equivalence suites in `meba-testkit` hold unchanged.
//! The rushing-adversary wave scheduling of `meba_sim::Simulation` is
//! the one lockstep feature this backend does not model: corrupt actors
//! observe a round's traffic one round later, like everyone else.

use crate::calendar::{CalendarQueue, TimeKeyed};
use crate::config::{ClusterReport, LinkPolicyFactory};
use crate::driver::{AdvanceCause, DriverConfigError, RoundDriverConfig};
use crate::fate::{resolve_fates, ActorRebuilder, ProcessFateFactory};
use crate::pacer::VirtualPacer;
use crate::process::EngineProcess;
use crate::transport::{Delivery, LinkPolicySendAdapter, SendPolicy, Transport};
use meba_crypto::ProcessId;
use meba_sim::{AnyActor, Message, Metrics};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Per-directed-link latency floor in nanoseconds, for asymmetric delay
/// scenarios: the sampled latency of `from → to` is at least
/// `floor(from, to)` (clamped to δ − 2 so post-GST delivery still lands
/// inside the sender's round window).
pub type LinkDelayFloor = Arc<dyn Fn(ProcessId, ProcessId) -> u64 + Send + Sync>;

/// Configuration of a [`run_des_cluster`] invocation.
#[derive(Clone)]
pub struct DesConfig {
    /// Virtual round duration δ in nanoseconds (≥ 2; the default is
    /// 1 ms of virtual time). Purely nominal — host wall clock never
    /// enters the schedule. This is the network's *true* δ: post-GST
    /// latency is strictly below it. The δ-*estimate* processes pace by
    /// lives in [`DesConfig::driver`].
    pub delta_ns: u64,
    /// Seed for the per-message link-latency sampling (and the skew
    /// offsets).
    pub seed: u64,
    /// Hard cap on rounds (per process).
    pub max_rounds: u64,
    /// Byzantine identities (excluded from correct-word accounting and
    /// from the done-check).
    pub corrupt: Vec<ProcessId>,
    /// Link-fault injection, same factory type as the paced backends.
    pub link_policy: Option<LinkPolicyFactory>,
    /// Process-level fault injection (crash-restart), resolved once up
    /// front like every backend.
    pub process_fate: Option<ProcessFateFactory>,
    /// How rounds advance: [`RoundDriverConfig::Lockstep`] (default,
    /// pre-refactor semantics) or quorum-or-timeout partial synchrony.
    pub driver: RoundDriverConfig,
    /// Maximum per-process clock skew in nanoseconds: process `i`
    /// starts its round 0 at a seeded offset in `[0, max_skew_ns]`.
    /// Under the lockstep driver the whole schedule shifts by the
    /// offset (`skew_i + r · δ`). 0 (default) = perfectly aligned
    /// clocks.
    pub max_skew_ns: u64,
    /// Global stabilization time on the virtual timeline. Messages
    /// *sent* before this instant sample latency in
    /// `(0, pre_gst_delay_ns]` instead of `(0, δ)`. 0 (default) =
    /// synchronous from the start.
    pub gst_ns: u64,
    /// Latency cap for pre-GST sends (only meaningful with
    /// `gst_ns > 0`; 0 falls back to δ, i.e. GST changes nothing).
    pub pre_gst_delay_ns: u64,
    /// Asymmetric per-link delay floors; `None` (default) = uniform
    /// links.
    pub link_floor_ns: Option<LinkDelayFloor>,
    /// True network-delay cap for post-GST sends, in nanoseconds:
    /// latency is sampled strictly inside `(floor, min(cap, δ))` instead
    /// of `(floor, δ)`. `None` (default) keeps the classic sampler (cap
    /// at δ) and is byte-identical to the pre-knob behavior. Timing
    /// scenarios use it to honor the paper's synchrony precondition
    /// (delay + skew < round length) for δ-estimates *below* δ: a
    /// 0.5 δ timer can only work if real delays actually fit in it.
    pub link_cap_ns: Option<u64>,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            delta_ns: 1_000_000,
            seed: 0xd15c,
            max_rounds: 10_000,
            corrupt: Vec::new(),
            link_policy: None,
            process_fate: None,
            driver: RoundDriverConfig::Lockstep,
            max_skew_ns: 0,
            gst_ns: 0,
            pre_gst_delay_ns: 0,
            link_floor_ns: None,
            link_cap_ns: None,
        }
    }
}

/// A [`DesConfig`] the backend cannot honor. Returned by
/// [`run_des_cluster`] before any actor steps, so a bad configuration
/// fails loudly and typed instead of panicking mid-run.
#[derive(Clone, Debug, PartialEq)]
pub enum DesConfigError {
    /// `delta_ns < 2`: link latency is sampled *strictly inside*
    /// `(0, δ)`, and on an integer nanosecond timeline that open
    /// interval is empty for δ ≤ 1 — there is no latency that both
    /// leaves the sender's round and arrives before the next one.
    DeltaTooSmall {
        /// The rejected value.
        delta_ns: u64,
    },
    /// `link_cap_ns < 2`: the open latency interval `(0, cap)` holds no
    /// integer nanosecond, same degeneracy as [`Self::DeltaTooSmall`].
    LinkCapTooSmall {
        /// The rejected value.
        link_cap_ns: u64,
    },
    /// The [`RoundDriverConfig`] itself is invalid (e.g. a non-positive
    /// timeout factor).
    Driver(DriverConfigError),
}

impl std::fmt::Display for DesConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesConfigError::DeltaTooSmall { delta_ns } => write!(
                f,
                "delta_ns = {delta_ns} is too small: the DES backend samples link \
                 latency strictly inside (0, \u{3b4}), which needs \u{3b4} \u{2265} 2 ns"
            ),
            DesConfigError::LinkCapTooSmall { link_cap_ns } => write!(
                f,
                "link_cap_ns = {link_cap_ns} is too small: post-GST latency is sampled \
                 strictly inside (0, cap), which needs cap \u{2265} 2 ns"
            ),
            DesConfigError::Driver(e) => write!(f, "invalid round driver: {e}"),
        }
    }
}

impl std::error::Error for DesConfigError {}

impl From<DriverConfigError> for DesConfigError {
    fn from(e: DriverConfigError) -> Self {
        DesConfigError::Driver(e)
    }
}

pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A delivery scheduled on the virtual timeline. Ordered by
/// `(at_ns, seq)`; `seq` is unique, so the order is total and
/// deterministic.
struct Event<M> {
    at_ns: u128,
    seq: u64,
    to: usize,
    delivery: Delivery<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ns, self.seq) == (other.at_ns, other.seq)
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ns, self.seq).cmp(&(other.at_ns, other.seq))
    }
}

impl<M> TimeKeyed for Event<M> {
    fn time_ns(&self) -> u128 {
        self.at_ns
    }
}

/// A scheduled round deadline `(at_ns, process, round)`; simultaneous
/// deadlines resolve in process-id order, matching the pre-refactor
/// heap's tuple ordering.
type DeadlineEntry = (u128, u64, u64);

impl TimeKeyed for DeadlineEntry {
    fn time_ns(&self) -> u128 {
        self.0
    }
}

/// The shared virtual network: clock, in-flight arrival calendar queue,
/// and per-process mailboxes of already-arrived deliveries (tagged with
/// their global send sequence so drains surface send order, the
/// per-round FIFO every other backend produces).
struct DesNet<M: Message> {
    now_ns: u128,
    seq: u64,
    seed: u64,
    gst_ns: u64,
    pre_gst_delay_ns: u64,
    link_floor_ns: Option<LinkDelayFloor>,
    link_cap_ns: u64,
    arrivals: CalendarQueue<Event<M>>,
    mailboxes: Vec<Vec<(u64, Delivery<M>)>>,
}

/// Calendar-bucket width: δ/256, so one round window spans ~256 buckets
/// and the queue's ring (1024 buckets) covers 4δ of schedule.
pub(crate) fn calendar_width_ns(delta_ns: u64) -> u64 {
    (delta_ns / 256).max(1)
}

impl<M: Message> DesNet<M> {
    fn new(n: usize, config: &DesConfig) -> Self {
        DesNet {
            now_ns: 0,
            seq: 0,
            seed: config.seed,
            gst_ns: config.gst_ns,
            pre_gst_delay_ns: if config.pre_gst_delay_ns == 0 {
                config.delta_ns
            } else {
                config.pre_gst_delay_ns
            },
            link_floor_ns: config.link_floor_ns.clone(),
            link_cap_ns: config.link_cap_ns.unwrap_or(config.delta_ns).min(config.delta_ns),
            arrivals: CalendarQueue::new(calendar_width_ns(config.delta_ns)),
            mailboxes: (0..n).map(|_| Vec::with_capacity(16)).collect(),
        }
    }

    /// Seeded link latency. Post-GST (the default regime): strictly
    /// inside `(floor, δ)`, so arrival lands in the sending round's
    /// window and the `sent_round < round` delivery rule behaves exactly
    /// as on the paced backends. Pre-GST: anywhere in
    /// `(0, pre_gst_delay_ns]` — the adversary controls delivery up to
    /// that bound and synchrony does not hold yet.
    fn latency_ns(&self, from: ProcessId, to: ProcessId, seq: u64) -> u64 {
        let x = splitmix(
            self.seed
                ^ splitmix(u64::from(from.0))
                ^ splitmix(u64::from(to.0)).rotate_left(17)
                ^ splitmix(seq).rotate_left(34),
        );
        if self.now_ns < u128::from(self.gst_ns) {
            return 1 + x % self.pre_gst_delay_ns.max(1);
        }
        let floor = match &self.link_floor_ns {
            Some(f) => f(from, to).min(self.link_cap_ns.saturating_sub(2)),
            None => 0,
        };
        floor + 1 + x % (self.link_cap_ns - floor - 1).max(1)
    }

    fn send(&mut self, from: ProcessId, to: ProcessId, sent_round: u64, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        let at_ns = self.now_ns + u128::from(self.latency_ns(from, to, seq));
        self.arrivals.push(Event {
            at_ns,
            seq,
            to: to.index(),
            delivery: Delivery { from, sent_round, msg },
        });
    }

    fn next_arrival_at(&mut self) -> Option<u128> {
        self.arrivals.peek().map(|e| e.at_ns)
    }
}

/// One process's handle on the shared virtual network.
struct DesTransport<M: Message> {
    me: ProcessId,
    net: Rc<RefCell<DesNet<M>>>,
}

impl<M: Message> Transport<M> for DesTransport<M> {
    fn send(&mut self, to: ProcessId, sent_round: u64, msg: &M) {
        self.net.borrow_mut().send(self.me, to, sent_round, msg.clone());
    }

    fn drain(&mut self, out: &mut Vec<Delivery<M>>) {
        let mut net = self.net.borrow_mut();
        let mailbox = &mut net.mailboxes[self.me.index()];
        // Send (`seq`) order, not arrival order: the per-round FIFO
        // order every other backend produces, so inbox order (and thus
        // any order-sensitive tie-break in an actor) is
        // backend-independent. `seq` is unique, so the unstable sort is
        // deterministic.
        mailbox.sort_unstable_by_key(|(seq, _)| *seq);
        out.extend(mailbox.drain(..).map(|(_, d)| d));
    }

    fn crash(&mut self) {
        // A crashed process has no mailbox; in-flight events will land
        // and be discarded by the engine's dead-round drains.
        self.net.borrow_mut().mailboxes[self.me.index()].clear();
    }
}

/// The per-run scheduling constants resolved from a [`DesConfig`].
struct Schedule {
    lockstep: bool,
    delta_ns: u64,
    driver: RoundDriverConfig,
    quorum: usize,
    max_rounds: u64,
    skews: Vec<u64>,
}

impl Schedule {
    /// Virtual deadline of round `round` for process `i`. Lockstep: the
    /// global schedule (shifted by the process's skew). Event mode: one
    /// (backed-off) timeout after the executed round's *scheduled* start
    /// `prev` — not after the execution instant `now` — clamped to at
    /// most one timeout ahead of `now`. Anchoring on the schedule keeps
    /// quorum advancement from compressing the local grid (an early
    /// execution must not steal the margin the next round's timer
    /// needed); the clamp re-paces a process that just quorum-caught-up
    /// through a backlog (its stale grid would otherwise stall it).
    fn deadline(&self, i: usize, round: u64, prev: u128, now: u128, shift: u32) -> u128 {
        if self.lockstep {
            u128::from(self.skews[i]) + u128::from(round) * u128::from(self.delta_ns)
        } else {
            let timeout = u128::from(self.driver.backed_off_timeout_ns(self.delta_ns, shift));
            prev.max(now).min(now + timeout) + timeout
        }
    }
}

/// Everything mutable the event loop threads through one round
/// execution.
struct Running<'a, M: Message> {
    procs: &'a mut [EngineProcess<M>],
    transports: &'a mut [DesTransport<M>],
    metrics: &'a Mutex<Metrics>,
    next_round: &'a mut [u64],
    done: &'a mut [bool],
    corrupt: &'a [bool],
    // Count of correct processes whose `done` flag is false — the O(1)
    // replacement for scanning all n flags at every instant boundary.
    // `done` is only ever toggled inside `execute`, which keeps this
    // counter in sync (including done → not-done reversals).
    pending_correct: &'a mut usize,
    // Advance-cause tallies accumulated locally and flushed into
    // `metrics.advance` once after the loop, so per-round execution does
    // not take the metrics lock just to bump a counter.
    adv_quorum: &'a mut u64,
    adv_timeout: &'a mut u64,
    backoff: &'a mut [u32],
    // Scheduled deadline of each process's next round (event mode's
    // local grid anchor; mirrors the live entry in `deadlines`).
    sched_deadline: &'a mut [u128],
    // (at_ns, process, round); entries whose round is no longer the
    // process's next are stale and skipped lazily.
    deadlines: &'a mut CalendarQueue<DeadlineEntry>,
}

impl<M: Message> Running<'_, M> {
    /// Executes process `i`'s next round at virtual instant `now`,
    /// records the advance cause, applies late-delivery backoff, and
    /// schedules the following deadline.
    fn execute(&mut self, sched: &Schedule, i: usize, now: u128, cause: AdvanceCause) {
        let round = self.next_round[i];
        let status = self.procs[i].step(round, &mut self.transports[i], self.metrics);
        if status.executed && round >= 1 {
            match cause {
                AdvanceCause::QuorumReached => *self.adv_quorum += 1,
                AdvanceCause::TimeoutFired => *self.adv_timeout += 1,
            }
        }
        if !sched.lockstep
            && status.late_admitted > 0
            && self.backoff[i] < crate::driver::MAX_BACKOFF_SHIFT
        {
            // Late traffic proves this process's local schedule outran
            // the network (mis-estimated δ, drift from quorum
            // advancement, or a pre-GST prefix): double the timer —
            // once per offending round — so the estimate eventually
            // exceeds the true bound.
            self.backoff[i] += 1;
        }
        if self.done[i] != status.done && !self.corrupt[i] {
            if status.done {
                *self.pending_correct -= 1;
            } else {
                *self.pending_correct += 1;
            }
        }
        self.done[i] = status.done;
        self.next_round[i] = round + 1;
        if round + 1 < sched.max_rounds {
            let at = sched.deadline(i, round + 1, self.sched_deadline[i], now, self.backoff[i]);
            self.sched_deadline[i] = at;
            self.deadlines.push((at, i as u64, round + 1));
        }
    }

    /// Quorum catch-up: while process `i` already holds a quorum of
    /// prior-round senders for its next round, advance immediately.
    /// Terminates because every advance raises `next_round`, which both
    /// tightens the `sent_round + 1 ≥ round` test and is capped by
    /// `max_rounds`.
    fn quorum_advance(&mut self, sched: &Schedule, i: usize, now: u128) {
        while self.next_round[i] >= 1
            && self.next_round[i] < sched.max_rounds
            && self.procs[i].ready_senders(self.next_round[i], &mut self.transports[i])
                >= sched.quorum
        {
            self.execute(sched, i, now, AdvanceCause::QuorumReached);
        }
    }
}

/// Runs `actors` on the discrete-event backend until every correct actor
/// is done or the round budget is exhausted. Single-threaded and fully
/// deterministic; returns the same [`ClusterReport`] shape as the paced
/// backends (overruns and backpressure are structurally zero, and a DES
/// run never aborts).
///
/// # Errors
///
/// Rejects a [`DesConfig`] with `delta_ns < 2` ([`DesConfigError`]): the
/// latency interval `(0, δ)` holds no integer nanosecond at those sizes,
/// so no schedule can satisfy the synchronous delivery rule. Also
/// rejects an invalid [`RoundDriverConfig`] (non-positive or non-finite
/// `timeout_factor`).
///
/// # Panics
///
/// Panics if `actors` is empty or ids are not `p0..p(n-1)` in order.
pub fn run_des_cluster<M: Message>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    config: DesConfig,
) -> Result<ClusterReport<M>, DesConfigError> {
    let pacer = VirtualPacer::new(config.delta_ns)?;
    config.driver.validate()?;
    if let Some(cap) = config.link_cap_ns {
        if cap < 2 {
            return Err(DesConfigError::LinkCapTooSmall { link_cap_ns: cap });
        }
    }
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }
    let fates = resolve_fates(n, config.process_fate.as_ref(), rebuilder.is_some());
    let corrupt: Vec<bool> =
        (0..n).map(|i| config.corrupt.iter().any(|c| c.index() == i)).collect();

    let sched = Schedule {
        lockstep: config.driver.is_lockstep(),
        delta_ns: pacer.delta_ns(),
        driver: config.driver,
        quorum: config.driver.effective_quorum(n),
        max_rounds: config.max_rounds,
        skews: (0..n)
            .map(|i| {
                if config.max_skew_ns == 0 {
                    0
                } else {
                    splitmix(config.seed ^ 0x5ce3_ab1e ^ splitmix(i as u64))
                        % (config.max_skew_ns + 1)
                }
            })
            .collect(),
    };
    let quorum_mode = !sched.lockstep;

    let net = Rc::new(RefCell::new(DesNet::<M>::new(n, &config)));
    let mut transports: Vec<DesTransport<M>> =
        (0..n).map(|i| DesTransport { me: ProcessId(i as u32), net: net.clone() }).collect();
    let metrics = Mutex::new(Metrics::default());
    let mut procs: Vec<EngineProcess<M>> = actors
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let policy = config.link_policy.as_ref().map(|f| {
                Box::new(LinkPolicySendAdapter(f(ProcessId(i as u32)))) as Box<dyn SendPolicy>
            });
            EngineProcess::new(a, n, !corrupt[i], fates[i], rebuilder.clone(), policy)
        })
        .collect();

    let mut next_round = vec![0u64; n];
    let mut done = vec![false; n];
    let mut backoff = vec![0u32; n];
    let mut sched_deadline: Vec<u128> = (0..n).map(|i| u128::from(sched.skews[i])).collect();
    let mut deadlines: CalendarQueue<DeadlineEntry> =
        CalendarQueue::new(calendar_width_ns(sched.delta_ns));
    for i in 0..n {
        deadlines.push((u128::from(sched.skews[i]), i as u64, 0));
    }
    let mut pending_correct = corrupt.iter().filter(|c| !**c).count();
    let mut adv_quorum = 0u64;
    let mut adv_timeout = 0u64;
    let mut completed = false;
    let mut last_instant = 0u128;
    let mut run = Running {
        procs: &mut procs,
        transports: &mut transports,
        metrics: &metrics,
        next_round: &mut next_round,
        done: &mut done,
        corrupt: &corrupt,
        pending_correct: &mut pending_correct,
        adv_quorum: &mut adv_quorum,
        adv_timeout: &mut adv_timeout,
        backoff: &mut backoff,
        sched_deadline: &mut sched_deadline,
        deadlines: &mut deadlines,
    };
    loop {
        // Drop stale deadline entries (the process quorum-advanced past
        // that round), then pick the earliest event. Simultaneous events
        // resolve arrivals first — in send order — then deadlines in
        // process-id order: under the lockstep driver this is exactly
        // the pre-refactor global loop ("deliver everything due ≤ t,
        // then step every process in id order at t").
        while let Some(&(_, i, r)) = run.deadlines.peek() {
            if run.next_round[i as usize] == r {
                break;
            }
            run.deadlines.pop();
        }
        let arrival_at = net.borrow_mut().next_arrival_at();
        let deadline_at = run.deadlines.peek().map(|&(at, i, _)| (at, i as usize));
        let (at, is_arrival) = match (arrival_at, deadline_at) {
            (None, None) => break,
            (Some(a), None) => (a, true),
            (None, Some((d, _))) => (d, false),
            (Some(a), Some((d, _))) => {
                if a <= d {
                    (a, true)
                } else {
                    (d, false)
                }
            }
        };
        // The completion verdict is evaluated at instant boundaries, so
        // every process (corrupt ones included) executing at the
        // completing instant still runs — as in the global loop, which
        // stepped all n processes before checking.
        if at > last_instant {
            if *run.pending_correct == 0 {
                completed = true;
                break;
            }
            last_instant = at;
        }
        net.borrow_mut().now_ns = at;
        if is_arrival {
            let ev = net.borrow_mut().arrivals.pop().expect("peeked arrival");
            net.borrow_mut().mailboxes[ev.to].push((ev.seq, ev.delivery));
            if quorum_mode {
                run.quorum_advance(&sched, ev.to, at);
            }
        } else {
            let (_, i, round) = run.deadlines.pop().expect("peeked deadline");
            let i = i as usize;
            let quorum_ready =
                run.procs[i].ready_senders(round, &mut run.transports[i]) >= sched.quorum;
            let cause =
                if quorum_ready { AdvanceCause::QuorumReached } else { AdvanceCause::TimeoutFired };
            run.execute(&sched, i, at, cause);
            if quorum_mode {
                run.quorum_advance(&sched, i, at);
            }
        }
    }
    let _ = run;
    {
        let mut m = metrics.lock();
        m.advance.quorum += adv_quorum;
        m.advance.timeout += adv_timeout;
    }
    if !completed && pending_correct == 0 {
        completed = true;
    }

    let rounds = next_round.iter().copied().max().unwrap_or(0);
    let actors_back: Vec<Box<dyn AnyActor<Msg = M>>> =
        procs.into_iter().map(|p| p.finish(&metrics)).collect();
    let mut metrics = metrics.into_inner();
    metrics.rounds = rounds;
    Ok(ClusterReport {
        metrics,
        rounds,
        actors: actors_back,
        completed,
        overruns: 0,
        backpressure: 0,
        escalations: Vec::new(),
        aborted: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::{Actor, AnyActor, RoundCtx};

    #[derive(Clone, Debug)]
    struct Tick;
    impl Message for Tick {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Echo(ProcessId, bool);
    impl Actor for Echo {
        type Msg = Tick;
        fn id(&self) -> ProcessId {
            self.0
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tick>) {
            if ctx.round() == meba_sim::Round(0) {
                ctx.broadcast(Tick);
            }
            self.1 = !ctx.inbox().is_empty();
        }
        fn done(&self) -> bool {
            self.1
        }
    }

    fn echoes(n: usize) -> Vec<Box<dyn AnyActor<Msg = Tick>>> {
        (0..n).map(|i| Box::new(Echo(ProcessId(i as u32), false)) as _).collect()
    }

    #[test]
    fn zero_and_one_nanosecond_deltas_are_rejected_typed() {
        // δ = 0: the open interval (0, 0) is empty — previously this
        // underflowed `delta_ns - 1` in the latency sampler. δ = 1 has
        // the same problem one step later: (0, 1) holds no integer.
        for bad in [0u64, 1] {
            let err =
                run_des_cluster(echoes(3), None, DesConfig { delta_ns: bad, ..Default::default() })
                    .unwrap_err();
            assert_eq!(err, DesConfigError::DeltaTooSmall { delta_ns: bad });
            let rendered = err.to_string();
            assert!(rendered.contains(&bad.to_string()), "message names the value: {rendered}");
        }
    }

    #[test]
    fn two_nanoseconds_is_the_smallest_accepted_delta() {
        // δ = 2 admits exactly one latency (1 ns) — degenerate but legal,
        // and the config check must not over-reject it.
        let report =
            run_des_cluster(echoes(3), None, DesConfig { delta_ns: 2, ..Default::default() })
                .expect("delta_ns = 2 is accepted");
        assert!(report.completed);
    }

    #[test]
    fn invalid_timeout_factor_is_rejected_typed() {
        let cfg = DesConfig {
            driver: RoundDriverConfig::QuorumOrTimeout { quorum: None, timeout_factor: 0.0 },
            ..Default::default()
        };
        let err = run_des_cluster(echoes(3), None, cfg).unwrap_err();
        assert_eq!(
            err,
            DesConfigError::Driver(DriverConfigError::TimeoutFactorInvalid { timeout_factor: 0.0 })
        );
    }

    #[test]
    fn failure_free_chatty_lockstep_advances_all_quorum() {
        // Satellite: a failure-free run whose every advance has quorum
        // evidence available must record zero timeout advances. The echo
        // actors all broadcast in round 0, so every process enters round
        // 1 holding n > quorum distinct round-0 senders.
        let n = 5;
        let report = run_des_cluster(echoes(n), None, DesConfig::default()).unwrap();
        assert!(report.completed);
        assert_eq!(report.metrics.advance.timeout, 0, "no advance lacked quorum");
        assert_eq!(report.metrics.advance.quorum, n as u64, "one recorded advance per process");
    }

    #[test]
    fn quorum_driver_matches_lockstep_on_chatty_traffic() {
        let lockstep = run_des_cluster(echoes(7), None, DesConfig::default()).unwrap();
        let quorum = run_des_cluster(
            echoes(7),
            None,
            DesConfig { driver: RoundDriverConfig::quorum_or_timeout(), ..Default::default() },
        )
        .unwrap();
        assert!(quorum.completed);
        assert_eq!(quorum.rounds, lockstep.rounds);
        assert_eq!(quorum.metrics.correct.words, lockstep.metrics.correct.words);
        assert!(quorum.metrics.advance.quorum > 0, "early advancement actually fired");
    }

    #[test]
    fn skewed_clocks_still_complete() {
        for driver in [RoundDriverConfig::Lockstep, RoundDriverConfig::quorum_or_timeout()] {
            let report = run_des_cluster(
                echoes(5),
                None,
                DesConfig {
                    driver,
                    max_skew_ns: 500_000, // δ/2
                    max_rounds: 64,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(report.completed, "skew ≤ δ/2 must not prevent termination");
        }
    }

    /// Broadcasts once, counts deliveries monotonically: `done` latches,
    /// unlike [`Echo`], so it tolerates deliveries spread across rounds.
    struct Latch {
        id: ProcessId,
        heard: usize,
        target: usize,
    }
    impl Actor for Latch {
        type Msg = Tick;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Tick>) {
            if ctx.round() == meba_sim::Round(0) {
                ctx.broadcast(Tick);
            }
            self.heard += ctx.inbox().len();
        }
        fn done(&self) -> bool {
            self.heard >= self.target
        }
    }

    fn latches(n: usize) -> Vec<Box<dyn AnyActor<Msg = Tick>>> {
        (0..n)
            .map(|i| Box::new(Latch { id: ProcessId(i as u32), heard: 0, target: n }) as _)
            .collect()
    }

    #[test]
    fn pre_gst_delays_defer_but_do_not_prevent_completion() {
        // Messages sent before GST can take up to 6δ; the broadcast wave
        // of round 0 arrives rounds late, yet every delivery eventually
        // lands and the run completes within the budget.
        let report = run_des_cluster(
            latches(5),
            None,
            DesConfig {
                gst_ns: 3_000_000,           // GST at 3δ
                pre_gst_delay_ns: 6_000_000, // pre-GST latency up to 6δ
                max_rounds: 64,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.completed);
        assert!(report.rounds > 2, "late delivery must cost extra rounds, got {}", report.rounds);
    }

    #[test]
    fn asymmetric_link_floors_are_honored_and_clamped() {
        // A slow directed link p0 → p1 with a floor just under δ still
        // delivers within the round window; a floor ≥ δ is clamped.
        let floor: LinkDelayFloor = Arc::new(|from: ProcessId, to: ProcessId| {
            if from == ProcessId(0) && to == ProcessId(1) {
                u64::MAX // clamped to δ - 2
            } else {
                0
            }
        });
        let report = run_des_cluster(
            echoes(3),
            None,
            DesConfig { link_floor_ns: Some(floor), ..Default::default() },
        )
        .unwrap();
        assert!(report.completed);
        let l = report.metrics.link(ProcessId(0), ProcessId(1));
        assert_eq!((l.sent, l.delivered), (1, 1), "slow link still delivers in-window");
    }
}
