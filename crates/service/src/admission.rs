//! Admission control: the bounded queue between clients and a replica.
//!
//! A [`ServicePort`] is the only way client traffic enters a
//! [`crate::ServiceReplica`]. Its submit queue is bounded by the
//! pipeline's capacity; when it is full, [`ServicePort::submit`] returns
//! the typed [`SubmitError::Overloaded`] — the service *never* silently
//! drops an accepted op and never queues without bound. The port is
//! `Arc`-shared: gateways (or in-process test drivers) push requests and
//! drain replies from one side while the replica drains requests and
//! pushes replies from its round loop on the other.

use crate::batch::Op;
use crate::protocol::{ReadMode, ServiceReply};
use meba_sim::ClientStats;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A rejected submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity: the pipeline window is full
    /// and the replica has not yet drained earlier submissions. The op
    /// was not enqueued.
    Overloaded {
        /// Queue occupancy at rejection time.
        queue_len: usize,
        /// The queue's capacity bound.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { queue_len, capacity } => {
                write!(f, "service overloaded: queue {queue_len}/{capacity}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A queued read request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadRequest {
    /// Requesting client (routes the reply).
    pub client: u64,
    /// Key to read.
    pub key: u64,
    /// Consistency mode.
    pub mode: ReadMode,
}

/// Front-door counters: submissions seen, admitted, and rejected, total
/// and per client. Rejections happen here — the replica never sees them —
/// so the port owns these numbers; [`crate::ServiceReplica::stats`]
/// merges them into its [`meba_sim::ServiceStats`].
#[derive(Clone, Debug, Default)]
pub struct PortCounters {
    /// Submissions offered (accepted + rejected).
    pub submitted: u64,
    /// Submissions admitted into the queue.
    pub accepted: u64,
    /// Submissions rejected with [`SubmitError::Overloaded`].
    pub rejected: u64,
    /// The same three counters per client id.
    pub per_client: BTreeMap<u64, ClientStats>,
}

#[derive(Default)]
struct Inner {
    submits: VecDeque<Op>,
    reads: VecDeque<ReadRequest>,
    events: VecDeque<ServiceReply>,
    counters: PortCounters,
}

/// The bounded, `Arc`-shared queue pair between clients and one replica.
pub struct ServicePort {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ServicePort {
    /// A port whose submit and read queues each hold at most `capacity`
    /// entries.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ServicePort { capacity: capacity.max(1), inner: Mutex::new(Inner::default()) })
    }

    /// The queue capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offers `op` for replication.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full; the op is not
    /// enqueued and the rejection is counted — never a silent drop.
    pub fn submit(&self, op: Op) -> Result<(), SubmitError> {
        let mut g = self.inner.lock().unwrap();
        g.counters.submitted += 1;
        g.counters.per_client.entry(op.client).or_default().submitted += 1;
        if g.submits.len() >= self.capacity {
            g.counters.rejected += 1;
            g.counters.per_client.entry(op.client).or_default().rejected += 1;
            return Err(SubmitError::Overloaded {
                queue_len: g.submits.len(),
                capacity: self.capacity,
            });
        }
        g.submits.push_back(op);
        g.counters.accepted += 1;
        g.counters.per_client.entry(op.client).or_default().accepted += 1;
        Ok(())
    }

    /// Offers a read request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the read queue is full.
    pub fn read(&self, client: u64, key: u64, mode: ReadMode) -> Result<(), SubmitError> {
        let mut g = self.inner.lock().unwrap();
        if g.reads.len() >= self.capacity {
            return Err(SubmitError::Overloaded {
                queue_len: g.reads.len(),
                capacity: self.capacity,
            });
        }
        g.reads.push_back(ReadRequest { client, key, mode });
        Ok(())
    }

    /// Current submit-queue occupancy.
    pub fn queue_len(&self) -> usize {
        self.inner.lock().unwrap().submits.len()
    }

    /// Replica side: takes up to `max` queued submissions, FIFO.
    pub fn drain_submits(&self, max: usize) -> Vec<Op> {
        let mut g = self.inner.lock().unwrap();
        let take = max.min(g.submits.len());
        g.submits.drain(..take).collect()
    }

    /// Replica side: takes every queued read request.
    pub fn drain_reads(&self) -> Vec<ReadRequest> {
        self.inner.lock().unwrap().reads.drain(..).collect()
    }

    /// Replica side: publishes a reply event for the gateway to route.
    /// The event queue is drained by the gateway every poll interval and
    /// is bounded in total by the replies the bounded submit/read queues
    /// can generate.
    pub fn push_event(&self, ev: ServiceReply) {
        self.inner.lock().unwrap().events.push_back(ev);
    }

    /// Gateway side: takes every pending reply event, FIFO.
    pub fn drain_events(&self) -> Vec<ServiceReply> {
        self.inner.lock().unwrap().events.drain(..).collect()
    }

    /// Snapshot of the front-door counters.
    pub fn counters(&self) -> PortCounters {
        self.inner.lock().unwrap().counters.clone()
    }
}

impl std::fmt::Debug for ServicePort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().unwrap();
        f.debug_struct("ServicePort")
            .field("capacity", &self.capacity)
            .field("queued", &g.submits.len())
            .field("events", &g.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(seq: u64) -> Op {
        Op { client: 1, seq, key: 0, value: 0 }
    }

    #[test]
    fn full_queue_rejects_typed_never_drops() {
        let port = ServicePort::new(2);
        assert!(port.submit(op(0)).is_ok());
        assert!(port.submit(op(1)).is_ok());
        assert_eq!(port.submit(op(2)), Err(SubmitError::Overloaded { queue_len: 2, capacity: 2 }));
        let c = port.counters();
        assert_eq!(c.submitted, 3);
        assert_eq!(c.accepted + c.rejected, c.submitted, "no silent drops");
        assert_eq!(c.rejected, 1);
        // Draining makes room again.
        assert_eq!(port.drain_submits(10).len(), 2);
        assert!(port.submit(op(2)).is_ok());
    }

    #[test]
    fn drains_are_fifo_and_events_flow() {
        let port = ServicePort::new(8);
        for s in 0..3 {
            port.submit(op(s)).unwrap();
        }
        let drained = port.drain_submits(2);
        assert_eq!(drained.iter().map(|o| o.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(port.queue_len(), 1);
        port.push_event(ServiceReply::Accepted { client: 1, seq: 0 });
        assert_eq!(port.drain_events().len(), 1);
        assert!(port.drain_events().is_empty());
        port.read(1, 5, ReadMode::Fast).unwrap();
        assert_eq!(
            port.drain_reads(),
            vec![ReadRequest { client: 1, key: 5, mode: ReadMode::Fast }]
        );
    }
}
