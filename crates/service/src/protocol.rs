//! The client-facing wire protocol.
//!
//! Mirrors the replica-to-replica link discipline of
//! `meba_wire::handshake`: before any request flows, a client sends one
//! [`ClientHello`] frame pinning the protocol version and the digest of
//! the cluster configuration it believes it is talking to, and the
//! gateway validates it. Every message is a canonical [`WireCodec`]
//! frame: one value, one byte representation.

use crate::batch::Op;
use meba_core::SystemConfig;
use meba_crypto::{DecodeError, Decoder, Digest, Encoder, ProcessId, WireCodec};

/// Client protocol version. Bumped on any change to the request/reply
/// codecs; there is no cross-version negotiation.
pub const SERVICE_VERSION: u32 = 1;

/// How a read is served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// Leader-local fast read: answered from the replica's own applied
    /// state immediately. May trail the cluster by in-flight slots.
    Fast,
    /// Quorum-confirmed read: held until every slot that had opened when
    /// the read arrived has committed and been applied, so the answer
    /// reflects a quorum-certified prefix covering all in-flight writes.
    Confirmed,
}

const MODE_FAST: u32 = 0;
const MODE_CONFIRMED: u32 = 1;

impl WireCodec for ReadMode {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u32(match self {
            ReadMode::Fast => MODE_FAST,
            ReadMode::Confirmed => MODE_CONFIRMED,
        });
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            MODE_FAST => Ok(ReadMode::Fast),
            MODE_CONFIRMED => Ok(ReadMode::Confirmed),
            _ => Err(DecodeError::Invalid { what: "unknown read mode" }),
        }
    }
}

/// The first (and only) handshake frame a client sends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientHello {
    /// Sender's client protocol version ([`SERVICE_VERSION`]).
    pub version: u32,
    /// The client's self-assigned identity; the gateway routes this
    /// client's [`ServiceReply::Committed`] acks by it.
    pub client: u64,
    /// Digest of the cluster configuration the client expects
    /// ([`service_config_digest`]).
    pub config_digest: Digest,
}

impl WireCodec for ClientHello {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u32(self.version);
        enc.put_u64(self.client);
        enc.put_digest(&self.config_digest);
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ClientHello {
            version: dec.get_u32()?,
            client: dec.get_u64()?,
            config_digest: dec.get_digest()?,
        })
    }
}

/// The configuration digest a client pins in its hello: the same
/// `(n, t, quorum, session)` digest replica links agree on.
pub fn service_config_digest(cfg: &SystemConfig) -> Digest {
    meba_wire::config_digest(cfg)
}

/// A rejected client handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelloError {
    /// Client built against a different client-protocol version.
    VersionMismatch {
        /// The gateway's version.
        ours: u32,
        /// The client's version.
        theirs: u32,
    },
    /// Client configured for a different cluster.
    ConfigMismatch,
}

impl std::fmt::Display for HelloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HelloError::VersionMismatch { ours, theirs } => {
                write!(f, "client protocol version mismatch: ours {ours}, theirs {theirs}")
            }
            HelloError::ConfigMismatch => write!(f, "client pinned a different cluster config"),
        }
    }
}

impl std::error::Error for HelloError {}

/// Validates a client hello against the serving cluster.
///
/// # Errors
///
/// Returns the typed mismatch; the gateway closes the connection on any.
pub fn validate_client_hello(expected: &Digest, hello: &ClientHello) -> Result<(), HelloError> {
    if hello.version != SERVICE_VERSION {
        return Err(HelloError::VersionMismatch { ours: SERVICE_VERSION, theirs: hello.version });
    }
    if hello.config_digest != *expected {
        return Err(HelloError::ConfigMismatch);
    }
    Ok(())
}

/// A client request frame (post-handshake).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientRequest {
    /// Submit one operation for replication. `op.client`/`op.seq`
    /// identify it for dedup and for the eventual
    /// [`ServiceReply::Committed`] ack.
    Submit {
        /// The operation.
        op: Op,
    },
    /// Read a key from the replicated state.
    Read {
        /// Requesting client (routes the [`ServiceReply::ReadResult`]).
        client: u64,
        /// Key to read.
        key: u64,
        /// Consistency mode.
        mode: ReadMode,
    },
}

const REQ_SUBMIT: u32 = 0;
const REQ_READ: u32 = 1;

impl WireCodec for ClientRequest {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            ClientRequest::Submit { op } => {
                enc.put_u32(REQ_SUBMIT);
                op.encode_wire(enc);
            }
            ClientRequest::Read { client, key, mode } => {
                enc.put_u32(REQ_READ);
                enc.put_u64(*client);
                enc.put_u64(*key);
                mode.encode_wire(enc);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            REQ_SUBMIT => Ok(ClientRequest::Submit { op: Op::decode_wire(dec)? }),
            REQ_READ => Ok(ClientRequest::Read {
                client: dec.get_u64()?,
                key: dec.get_u64()?,
                mode: ReadMode::decode_wire(dec)?,
            }),
            _ => Err(DecodeError::Invalid { what: "unknown client request tag" }),
        }
    }
}

/// A reply frame from the service to a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceReply {
    /// Handshake accepted.
    HelloOk {
        /// The replica serving this connection.
        replica: ProcessId,
    },
    /// The submit was admitted into the batching pipeline. Not yet
    /// durable — wait for [`ServiceReply::Committed`].
    Accepted {
        /// Echoed dedup key.
        client: u64,
        /// Echoed dedup key.
        seq: u64,
    },
    /// The submit was rejected: the replica's admission queue is full
    /// (pipeline window exhausted). The op was **not** enqueued; retry
    /// later. A full service never drops silently — it says so.
    Overloaded {
        /// Echoed dedup key.
        client: u64,
        /// Echoed dedup key.
        seq: u64,
        /// Queue occupancy at rejection time.
        queue_len: u64,
        /// The queue's capacity bound.
        capacity: u64,
    },
    /// The op's batch committed in the replicated log and was applied.
    Committed {
        /// Echoed dedup key.
        client: u64,
        /// Echoed dedup key.
        seq: u64,
        /// The log slot the op's batch occupies.
        slot: u64,
        /// The op's index within the batch.
        batch_index: u32,
    },
    /// Answer to a [`ClientRequest::Read`].
    ReadResult {
        /// Requesting client.
        client: u64,
        /// Key read.
        key: u64,
        /// The value, or `None` if the key was never written.
        value: Option<u64>,
        /// Number of contiguously applied slots backing the answer.
        applied_slots: u64,
        /// The mode the read was served under.
        mode: ReadMode,
    },
}

const REP_HELLO_OK: u32 = 0;
const REP_ACCEPTED: u32 = 1;
const REP_OVERLOADED: u32 = 2;
const REP_COMMITTED: u32 = 3;
const REP_READ_RESULT: u32 = 4;

impl WireCodec for ServiceReply {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            ServiceReply::HelloOk { replica } => {
                enc.put_u32(REP_HELLO_OK);
                enc.put_id(*replica);
            }
            ServiceReply::Accepted { client, seq } => {
                enc.put_u32(REP_ACCEPTED);
                enc.put_u64(*client);
                enc.put_u64(*seq);
            }
            ServiceReply::Overloaded { client, seq, queue_len, capacity } => {
                enc.put_u32(REP_OVERLOADED);
                enc.put_u64(*client);
                enc.put_u64(*seq);
                enc.put_u64(*queue_len);
                enc.put_u64(*capacity);
            }
            ServiceReply::Committed { client, seq, slot, batch_index } => {
                enc.put_u32(REP_COMMITTED);
                enc.put_u64(*client);
                enc.put_u64(*seq);
                enc.put_u64(*slot);
                enc.put_u32(*batch_index);
            }
            ServiceReply::ReadResult { client, key, value, applied_slots, mode } => {
                enc.put_u32(REP_READ_RESULT);
                enc.put_u64(*client);
                enc.put_u64(*key);
                enc.put_option(value, |e, v| e.put_u64(*v));
                enc.put_u64(*applied_slots);
                mode.encode_wire(enc);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            REP_HELLO_OK => Ok(ServiceReply::HelloOk { replica: dec.get_id()? }),
            REP_ACCEPTED => {
                Ok(ServiceReply::Accepted { client: dec.get_u64()?, seq: dec.get_u64()? })
            }
            REP_OVERLOADED => Ok(ServiceReply::Overloaded {
                client: dec.get_u64()?,
                seq: dec.get_u64()?,
                queue_len: dec.get_u64()?,
                capacity: dec.get_u64()?,
            }),
            REP_COMMITTED => Ok(ServiceReply::Committed {
                client: dec.get_u64()?,
                seq: dec.get_u64()?,
                slot: dec.get_u64()?,
                batch_index: dec.get_u32()?,
            }),
            REP_READ_RESULT => Ok(ServiceReply::ReadResult {
                client: dec.get_u64()?,
                key: dec.get_u64()?,
                value: dec.get_option(|d| d.get_u64())?,
                applied_slots: dec.get_u64()?,
                mode: ReadMode::decode_wire(dec)?,
            }),
            _ => Err(DecodeError::Invalid { what: "unknown service reply tag" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ServiceReply> {
        vec![
            ServiceReply::HelloOk { replica: ProcessId(2) },
            ServiceReply::Accepted { client: 7, seq: 3 },
            ServiceReply::Overloaded { client: 7, seq: 4, queue_len: 64, capacity: 64 },
            ServiceReply::Committed { client: 7, seq: 3, slot: 9, batch_index: 5 },
            ServiceReply::ReadResult {
                client: 7,
                key: 11,
                value: Some(42),
                applied_slots: 10,
                mode: ReadMode::Confirmed,
            },
            ServiceReply::ReadResult {
                client: 7,
                key: 12,
                value: None,
                applied_slots: 0,
                mode: ReadMode::Fast,
            },
        ]
    }

    #[test]
    fn replies_roundtrip_canonically() {
        for r in samples() {
            let bytes = r.to_wire_bytes();
            let back = ServiceReply::from_wire_bytes(&bytes).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.to_wire_bytes(), bytes);
        }
    }

    #[test]
    fn requests_and_hello_roundtrip() {
        let reqs = vec![
            ClientRequest::Submit { op: Op { client: 1, seq: 2, key: 3, value: 4 } },
            ClientRequest::Read { client: 1, key: 3, mode: ReadMode::Fast },
            ClientRequest::Read { client: 1, key: 3, mode: ReadMode::Confirmed },
        ];
        for r in &reqs {
            let bytes = r.to_wire_bytes();
            assert_eq!(&ClientRequest::from_wire_bytes(&bytes).unwrap(), r);
        }
        let hello =
            ClientHello { version: SERVICE_VERSION, client: 9, config_digest: Digest::of(b"c") };
        let bytes = hello.to_wire_bytes();
        assert_eq!(ClientHello::from_wire_bytes(&bytes).unwrap(), hello);
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(99);
        let bytes = enc.into_bytes();
        assert!(ClientRequest::from_wire_bytes(&bytes).is_err());
        assert!(ServiceReply::from_wire_bytes(&bytes).is_err());
        assert!(ReadMode::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn hello_validation_pins_version_and_config() {
        let cfg = SystemConfig::new(5, 0x51).unwrap();
        let digest = service_config_digest(&cfg);
        let ok = ClientHello { version: SERVICE_VERSION, client: 1, config_digest: digest };
        assert_eq!(validate_client_hello(&digest, &ok), Ok(()));
        let bad_ver = ClientHello { version: SERVICE_VERSION + 1, ..ok };
        assert_eq!(
            validate_client_hello(&digest, &bad_ver),
            Err(HelloError::VersionMismatch { ours: SERVICE_VERSION, theirs: SERVICE_VERSION + 1 })
        );
        let other = SystemConfig::new(5, 0x52).unwrap();
        let bad_cfg = ClientHello { config_digest: service_config_digest(&other), ..ok };
        assert_eq!(validate_client_hello(&digest, &bad_cfg), Err(HelloError::ConfigMismatch));
    }
}
