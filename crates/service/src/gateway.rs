//! The TCP front door: one readiness-driven gateway thread per replica.
//!
//! A [`ServiceGateway`] owns the client listener for one replica. It is
//! a single thread multiplexing the listener and every client socket
//! through the same `poll(2)` wrapper the replica mesh reactor uses
//! (`meba_wire::poller`) — no thread-per-client. Each poll interval it:
//!
//! 1. accepts new connections and runs the [`ClientHello`] handshake
//!    (version + config digest, mirroring the replica link handshake);
//! 2. reads one request frame per readable client and feeds it to the
//!    replica's [`ServicePort`] — replying `Accepted` or the typed
//!    `Overloaded` immediately for submits;
//! 3. drains the port's reply events (`Committed`, `ReadResult`) and
//!    routes each to the connection registered for its client id.
//!
//! Events for clients that have disconnected are dropped: a reconnecting
//! client re-submits its unacked ops and the replica's dedup table
//! re-acks committed ones idempotently.

use crate::admission::{ServicePort, SubmitError};
use crate::protocol::{
    service_config_digest, validate_client_hello, ClientHello, ClientRequest, ServiceReply,
};
use meba_core::SystemConfig;
use meba_crypto::{ProcessId, WireCodec};
use meba_wire::frame::{read_frame, write_frame};
use meba_wire::poller::{poll, PollFd, POLLIN};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long the gateway blocks in `poll` per loop iteration.
const POLL_INTERVAL: Duration = Duration::from_millis(5);
/// Per-frame read budget once a socket reports readable.
const FRAME_TIMEOUT: Duration = Duration::from_secs(2);

struct Conn {
    stream: TcpStream,
    client: Option<u64>,
    /// Reused frame-read scratch: steady-state requests don't allocate.
    scratch: Vec<u8>,
}

/// A running gateway thread serving one replica's clients.
pub struct ServiceGateway {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ServiceGateway {
    /// Binds `bind` (e.g. `"127.0.0.1:0"`) and spawns the gateway loop
    /// serving `port` on behalf of `replica`.
    ///
    /// # Errors
    ///
    /// Propagates the listener bind failure.
    pub fn spawn(
        bind: &str,
        cfg: &SystemConfig,
        replica: ProcessId,
        port: Arc<ServicePort>,
    ) -> io::Result<ServiceGateway> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let digest = service_config_digest(cfg);
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name(format!("svc-gateway-{replica}"))
            .spawn(move || gateway_loop(listener, digest, replica, port, thread_stop))
            .expect("spawn gateway thread");
        Ok(ServiceGateway { addr, stop, handle: Some(handle) })
    }

    /// The bound listener address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the gateway loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceGateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn gateway_loop(
    listener: TcpListener,
    digest: meba_crypto::Digest,
    replica: ProcessId,
    port: Arc<ServicePort>,
    stop: Arc<AtomicBool>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let mut fds = Vec::with_capacity(1 + conns.len());
        fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        for c in &conns {
            fds.push(PollFd::new(c.stream.as_raw_fd(), POLLIN));
        }
        let _ = poll(&mut fds, POLL_INTERVAL);

        if fds[0].readable() {
            while let Ok((stream, _)) = listener.accept() {
                if stream.set_nonblocking(true).is_ok() {
                    conns.push(Conn { stream, client: None, scratch: Vec::new() });
                }
            }
        }

        let mut alive = Vec::with_capacity(conns.len());
        for (i, mut conn) in conns.into_iter().enumerate() {
            let keep = if fds.get(i + 1).is_some_and(|fd| fd.readable()) {
                serve_readable(&mut conn, &digest, replica, &port).is_ok()
            } else {
                true
            };
            if keep {
                alive.push(conn);
            }
        }
        conns = alive;

        for ev in port.drain_events() {
            let target = match &ev {
                ServiceReply::Committed { client, .. }
                | ServiceReply::ReadResult { client, .. }
                | ServiceReply::Accepted { client, .. }
                | ServiceReply::Overloaded { client, .. } => *client,
                ServiceReply::HelloOk { .. } => continue,
            };
            if let Some(conn) = conns.iter_mut().find(|c| c.client == Some(target)) {
                // A failed write means the client vanished; the next
                // poll's read error reaps the connection.
                let _ = write_reply(&mut conn.stream, &ev);
            }
        }
    }
}

/// Reads and serves one frame from a readable client socket. `Err` means
/// the connection is dead (or the handshake was rejected) and should be
/// reaped.
fn serve_readable(
    conn: &mut Conn,
    digest: &meba_crypto::Digest,
    replica: ProcessId,
    port: &Arc<ServicePort>,
) -> io::Result<()> {
    let Conn { stream, client, scratch } = conn;
    read_one_frame(stream, scratch)?;
    match *client {
        None => {
            let hello = ClientHello::from_wire_bytes(scratch)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad client hello"))?;
            validate_client_hello(digest, &hello)
                .map_err(|e| io::Error::new(io::ErrorKind::PermissionDenied, e.to_string()))?;
            *client = Some(hello.client);
            write_reply(stream, &ServiceReply::HelloOk { replica })
        }
        Some(client) => {
            let req = ClientRequest::from_wire_bytes(scratch)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad client request"))?;
            match req {
                ClientRequest::Submit { op } => {
                    let reply = match port.submit(op) {
                        Ok(()) => ServiceReply::Accepted { client: op.client, seq: op.seq },
                        Err(SubmitError::Overloaded { queue_len, capacity }) => {
                            ServiceReply::Overloaded {
                                client: op.client,
                                seq: op.seq,
                                queue_len: queue_len as u64,
                                capacity: capacity as u64,
                            }
                        }
                    };
                    write_reply(stream, &reply)
                }
                ClientRequest::Read { client: c, key, mode } => {
                    match port.read(c, key, mode) {
                        Ok(()) => Ok(()), // the ReadResult event answers
                        Err(SubmitError::Overloaded { queue_len, capacity }) => write_reply(
                            stream,
                            &ServiceReply::Overloaded {
                                client,
                                seq: 0,
                                queue_len: queue_len as u64,
                                capacity: capacity as u64,
                            },
                        ),
                    }
                }
            }
        }
    }
}

/// Reads one length-prefixed frame from a nonblocking socket by briefly
/// switching it to blocking mode with a read deadline. Frames are tiny
/// (requests are a few dozen bytes), so the switch cannot stall the loop
/// meaningfully; the deadline bounds a half-written frame from a dying
/// client.
fn read_one_frame(stream: &mut TcpStream, payload: &mut Vec<u8>) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(FRAME_TIMEOUT))?;
    let res = read_frame(stream, payload)
        .map_err(|e| io::Error::new(io::ErrorKind::UnexpectedEof, e.to_string()));
    stream.set_nonblocking(true)?;
    res
}

fn write_reply(stream: &mut TcpStream, reply: &ServiceReply) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let res = write_frame(stream, &reply.to_wire_bytes())
        .map_err(|e| io::Error::new(io::ErrorKind::BrokenPipe, e.to_string()));
    stream.set_nonblocking(true)?;
    res
}
