//! Client operations and the batcher that amortizes them into slot
//! values.
//!
//! The paper prices agreement per *word*; the service front door makes
//! every word count by packing many small client operations into one
//! [`Batch`] per log slot, so the per-slot O(n(f+1)) agreement cost is
//! amortized across the whole batch. A [`Batcher`] closes a batch when it
//! reaches the size/byte policy or ages past the delay bound, whichever
//! comes first.

use meba_core::Value;
use meba_crypto::{DecodeError, Decoder, Encoder, WireCodec};

/// Words one [`Op`] occupies on the wire (client, seq, key, value).
pub const OP_WORDS: u64 = 4;

/// One client operation: a keyed 64-bit write, identified by the
/// client-assigned `(client, seq)` pair the service dedups on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Op {
    /// Submitting client's identity.
    pub client: u64,
    /// Client-assigned sequence number; `(client, seq)` is the dedup key.
    pub seq: u64,
    /// Key written.
    pub key: u64,
    /// Value written.
    pub value: u64,
}

impl WireCodec for Op {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.client);
        enc.put_u64(self.seq);
        enc.put_u64(self.key);
        enc.put_u64(self.value);
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Op {
            client: dec.get_u64()?,
            seq: dec.get_u64()?,
            key: dec.get_u64()?,
            value: dec.get_u64()?,
        })
    }
}

/// A slot value: the ordered client operations one BB instance agrees on.
/// The empty batch is the log's no-op.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Batch(pub Vec<Op>);

impl Batch {
    /// The empty batch — the value a proposer binds when it has nothing
    /// queued.
    pub fn noop() -> Self {
        Batch(Vec::new())
    }

    /// The batched operations, in submission order.
    pub fn ops(&self) -> &[Op] {
        &self.0
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the no-op batch.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Value for Batch {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_u64(self.0.len() as u64);
        for op in &self.0 {
            op.encode_wire(enc);
        }
    }

    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.get_u64()?;
        let len = usize::try_from(len)
            .map_err(|_| DecodeError::Invalid { what: "batch length overflows usize" })?;
        let mut ops = Vec::new();
        for _ in 0..len {
            ops.push(Op::decode_wire(dec)?);
        }
        Ok(Batch(ops))
    }

    fn value_words(&self) -> u64 {
        (self.0.len() as u64 * OP_WORDS).max(1)
    }
}

impl WireCodec for Batch {
    fn encode_wire(&self, enc: &mut Encoder) {
        self.encode_value(enc);
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Self::decode_value(dec)
    }
}

/// When an open batch closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Close once this many operations are batched.
    pub max_batch_ops: usize,
    /// Close once the batch's canonical encoding reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Close once the oldest batched op has waited this many rounds —
    /// the latency bound a lone op pays when traffic is light.
    pub max_batch_delay: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch_ops: 256, max_batch_bytes: 1 << 13, max_batch_delay: 4 }
    }
}

/// Accumulates admitted operations into the next slot value.
#[derive(Debug)]
pub struct Batcher {
    policy: BatchPolicy,
    open: Vec<Op>,
    open_bytes: usize,
    opened_at: u64,
}

impl Batcher {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher { policy, open: Vec::new(), open_bytes: 0, opened_at: 0 }
    }

    /// The close policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Operations in the open (not yet closed) batch.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Adds `op` at `round`; returns the closed batch when the push
    /// reaches the op-count or byte policy.
    pub fn push(&mut self, op: Op, round: u64) -> Option<Batch> {
        if self.open.is_empty() {
            self.opened_at = round;
        }
        self.open_bytes += op.wire_len() as usize;
        self.open.push(op);
        if self.open.len() >= self.policy.max_batch_ops
            || self.open_bytes >= self.policy.max_batch_bytes
        {
            self.close()
        } else {
            None
        }
    }

    /// Closes the open batch if its oldest op has aged past
    /// [`BatchPolicy::max_batch_delay`] rounds.
    pub fn tick(&mut self, round: u64) -> Option<Batch> {
        if !self.open.is_empty()
            && round.saturating_sub(self.opened_at) >= self.policy.max_batch_delay
        {
            self.close()
        } else {
            None
        }
    }

    /// Force-closes the open batch (shutdown path).
    pub fn close(&mut self) -> Option<Batch> {
        if self.open.is_empty() {
            return None;
        }
        self.open_bytes = 0;
        Some(Batch(std::mem::take(&mut self.open)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(seq: u64) -> Op {
        Op { client: 1, seq, key: seq, value: 100 + seq }
    }

    #[test]
    fn batch_is_a_canonical_value() {
        let b = Batch(vec![op(0), op(1)]);
        let bytes = b.to_wire_bytes();
        let back = Batch::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.to_wire_bytes(), bytes);
        assert_eq!(b.value_words(), 2 * OP_WORDS);
        assert_eq!(Batch::noop().value_words(), 1, "no-op still costs one word");
        for cut in 0..bytes.len() {
            assert!(Batch::from_wire_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn batcher_closes_on_op_count() {
        let mut b = Batcher::new(BatchPolicy { max_batch_ops: 3, ..BatchPolicy::default() });
        assert!(b.push(op(0), 0).is_none());
        assert!(b.push(op(1), 0).is_none());
        let closed = b.push(op(2), 0).expect("third op closes");
        assert_eq!(closed.len(), 3);
        assert_eq!(b.open_len(), 0);
    }

    #[test]
    fn batcher_closes_on_bytes() {
        let per_op = op(0).wire_len() as usize;
        let mut b = Batcher::new(BatchPolicy {
            max_batch_ops: 100,
            max_batch_bytes: 2 * per_op,
            ..BatchPolicy::default()
        });
        assert!(b.push(op(0), 0).is_none());
        assert_eq!(b.push(op(1), 0).expect("byte bound closes").len(), 2);
    }

    #[test]
    fn batcher_ages_out_on_tick() {
        let mut b = Batcher::new(BatchPolicy { max_batch_delay: 2, ..BatchPolicy::default() });
        assert!(b.push(op(0), 10).is_none());
        assert!(b.tick(11).is_none(), "not yet aged");
        let closed = b.tick(12).expect("aged out");
        assert_eq!(closed.len(), 1);
        assert!(b.tick(13).is_none(), "empty batcher never closes");
    }
}
