//! The client front door for the `meba` replicated log.
//!
//! The protocol crates agree on *values*; this crate turns that into a
//! *service*: clients connect over TCP, submit keyed writes, and read
//! replicated state, while each replica amortizes the per-slot
//! O(n(f+1))-word agreement cost across whole batches of client
//! operations — the paper's economy of words, applied to a workload.
//!
//! Layers (DESIGN.md §15):
//!
//! * [`protocol`] — the canonical client wire protocol: versioned
//!   [`ClientHello`] handshake (mirroring the replica link handshake),
//!   [`ClientRequest`] / [`ServiceReply`] frames.
//! * [`batch`] — [`Op`]s, the [`Batch`] slot value, and the
//!   size/byte/age-bounded [`Batcher`].
//! * [`admission`] — the bounded [`ServicePort`] between clients and a
//!   replica; a full pipeline yields the typed
//!   [`SubmitError::Overloaded`], never a silent drop.
//! * [`replica`] — [`ServiceReplica`]: the [`meba_smr::ReplicatedLog`]
//!   plus batching, WAL discipline, apply-with-dedup, and reads, as one
//!   backend-agnostic [`meba_sim::Actor`].
//! * [`transfer`] — certified anti-entropy state transfer: a restarted
//!   replica fetches the committed prefix it missed and verifies every
//!   slot against its quorum commit certificate (or `t + 1` matching
//!   donors) before applying (DESIGN.md §16).
//! * [`gateway`] / [`client`] — the readiness-driven TCP gateway thread
//!   and the blocking [`ServiceClient`].
//!
//! # Examples
//!
//! ```
//! use meba_core::SystemConfig;
//! use meba_crypto::{trusted_setup, ProcessId};
//! use meba_fallback::RecursiveBaFactory;
//! use meba_service::{Op, ServiceConfig, ServicePort, ServiceReplica};
//! use meba_sim::{AnyActor, SimBuilder};
//!
//! // A 3-replica service; client 7 submits one op to replica 0.
//! let n = 3;
//! let cfg = SystemConfig::new(n, 0x5e).unwrap();
//! let (pki, keys) = trusted_setup(n, 0xc11);
//! let service = ServiceConfig { total_slots: 3, ..ServiceConfig::default() };
//! let ports: Vec<_> = (0..n).map(|_| ServicePort::new(16)).collect();
//! let actors: Vec<Box<dyn AnyActor<Msg = _>>> = keys
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, key)| {
//!         let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
//!         Box::new(ServiceReplica::new(
//!             cfg, ProcessId(i as u32), key, pki.clone(), factory,
//!             service, ports[i].clone(), None,
//!         )) as _
//!     })
//!     .collect();
//! ports[0].submit(Op { client: 7, seq: 0, key: 1, value: 42 }).unwrap();
//! let mut sim = SimBuilder::new(actors).build();
//! sim.run_until_done(10_000).unwrap();
//! let r0: &ServiceReplica<RecursiveBaFactory> =
//!     sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
//! assert_eq!(r0.kv().get(&1), Some(&42));
//! assert!(r0.committed_at(7, 0).is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod batch;
pub mod client;
pub mod gateway;
pub mod protocol;
pub mod replica;
pub mod transfer;

pub use admission::{PortCounters, ReadRequest, ServicePort, SubmitError};
pub use batch::{Batch, BatchPolicy, Batcher, Op, OP_WORDS};
pub use client::ServiceClient;
pub use gateway::ServiceGateway;
pub use protocol::{
    service_config_digest, validate_client_hello, ClientHello, ClientRequest, HelloError, ReadMode,
    ServiceReply, SERVICE_VERSION,
};
pub use replica::{ReplicaMsg, ServiceConfig, ServiceFbMsg, ServiceMsg, ServiceReplica};
pub use transfer::{
    claimed_decision, verify_certified, ServiceSnapshot, TransferEntry, TransferMsg,
    DEFAULT_FETCH_BUDGET,
};
