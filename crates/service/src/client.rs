//! A blocking TCP client for the service gateway.
//!
//! [`ServiceClient`] speaks the `crate::protocol` frames over one
//! socket: connect + hello handshake, submit with retry-aware reply
//! matching, reads, and commit-ack collection. Replies arrive on the
//! same socket in gateway order; replies that do not answer the call in
//! progress (e.g. `Committed` acks landing while a submit awaits its
//! `Accepted`) are buffered and surfaced through
//! [`ServiceClient::poll_event`].

use crate::batch::Op;
use crate::protocol::{
    service_config_digest, ClientHello, ClientRequest, ReadMode, ServiceReply, SERVICE_VERSION,
};
use meba_core::SystemConfig;
use meba_crypto::WireCodec;
use meba_wire::frame::{read_frame, write_frame};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A connected, handshaken service client.
pub struct ServiceClient {
    stream: TcpStream,
    client: u64,
    buffered: VecDeque<ServiceReply>,
    /// Reused frame-read scratch: steady-state receives don't allocate.
    scratch: Vec<u8>,
}

fn wire_err(e: meba_wire::WireError) -> io::Error {
    io::Error::other(e.to_string())
}

impl ServiceClient {
    /// Connects to a gateway and completes the hello handshake.
    ///
    /// # Errors
    ///
    /// Connection, frame, or handshake-rejection failures.
    pub fn connect(addr: SocketAddr, client: u64, cfg: &SystemConfig) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let hello = ClientHello {
            version: SERVICE_VERSION,
            client,
            config_digest: service_config_digest(cfg),
        };
        write_frame(&mut stream, &hello.to_wire_bytes()).map_err(wire_err)?;
        let mut reply = Vec::new();
        read_frame(&mut stream, &mut reply).map_err(wire_err)?;
        match ServiceReply::from_wire_bytes(&reply) {
            Ok(ServiceReply::HelloOk { .. }) => {
                Ok(ServiceClient { stream, client, buffered: VecDeque::new(), scratch: reply })
            }
            _ => Err(io::Error::new(io::ErrorKind::PermissionDenied, "handshake rejected")),
        }
    }

    /// This client's identity.
    pub fn client_id(&self) -> u64 {
        self.client
    }

    fn send(&mut self, req: &ClientRequest) -> io::Result<()> {
        write_frame(&mut self.stream, &req.to_wire_bytes()).map_err(wire_err)
    }

    fn recv(&mut self) -> io::Result<ServiceReply> {
        read_frame(&mut self.stream, &mut self.scratch).map_err(wire_err)?;
        ServiceReply::from_wire_bytes(&self.scratch)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad service reply"))
    }

    /// Submits `op` and waits for its `Accepted` or `Overloaded` verdict.
    /// Out-of-band replies received meanwhile are buffered.
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn submit(&mut self, op: Op) -> io::Result<ServiceReply> {
        self.send(&ClientRequest::Submit { op })?;
        loop {
            let reply = self.recv()?;
            match &reply {
                ServiceReply::Accepted { client, seq }
                | ServiceReply::Overloaded { client, seq, .. }
                    if *client == op.client && *seq == op.seq =>
                {
                    return Ok(reply);
                }
                // A retry of a committed op is answered by the dedup
                // table with the original Committed instead of Accepted.
                ServiceReply::Committed { client, seq, .. }
                    if *client == op.client && *seq == op.seq =>
                {
                    return Ok(reply);
                }
                _ => self.buffered.push_back(reply),
            }
        }
    }

    /// Issues a read and waits for its `ReadResult` (or `Overloaded`).
    ///
    /// # Errors
    ///
    /// Socket or codec failures.
    pub fn read(&mut self, key: u64, mode: ReadMode) -> io::Result<ServiceReply> {
        self.send(&ClientRequest::Read { client: self.client, key, mode })?;
        loop {
            let reply = self.recv()?;
            match &reply {
                ServiceReply::ReadResult { client, key: k, .. }
                    if *client == self.client && *k == key =>
                {
                    return Ok(reply);
                }
                ServiceReply::Overloaded { client, seq: 0, .. } if *client == self.client => {
                    return Ok(reply);
                }
                _ => self.buffered.push_back(reply),
            }
        }
    }

    /// Returns the next buffered or incoming out-of-band reply, or
    /// `None` once `deadline` passes with nothing received.
    pub fn poll_event(&mut self, deadline: Instant) -> Option<ServiceReply> {
        if let Some(ev) = self.buffered.pop_front() {
            return Some(ev);
        }
        while Instant::now() < deadline {
            let wait =
                deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
            if self.stream.set_read_timeout(Some(wait)).is_err() {
                return None;
            }
            match self.recv() {
                Ok(ev) => return Some(ev),
                Err(e) if e.kind() == io::ErrorKind::InvalidData => return None,
                Err(_) => continue, // timeout slice; re-check the deadline
            }
        }
        None
    }

    /// Waits until `Committed` acks have arrived for all `(seq)` in
    /// `seqs`, returning the set actually acked by `deadline`.
    pub fn collect_commits(&mut self, seqs: &[u64], deadline: Instant) -> Vec<u64> {
        let mut want: Vec<u64> = seqs.to_vec();
        let mut got = Vec::new();
        while !want.is_empty() && Instant::now() < deadline {
            let Some(ev) = self.poll_event(deadline) else { break };
            if let ServiceReply::Committed { client, seq, .. } = ev {
                if client == self.client {
                    if let Some(pos) = want.iter().position(|s| *s == seq) {
                        want.remove(pos);
                        got.push(seq);
                    }
                }
            }
        }
        got
    }
}
