//! Certified state transfer: the anti-entropy protocol a restarted (or
//! stranded) replica uses to converge to the cluster's committed prefix
//! without waiting for client retries (DESIGN.md §16).
//!
//! A recovering replica broadcasts nothing: it asks one donor at a time
//! for a range of its applied prefix ([`TransferMsg::FetchCommitted`]),
//! and the donor answers with [`TransferMsg::CommittedBatch`] — per-slot
//! claimed decisions, each carrying the slot's quorum commit certificate
//! ([`CommitEvidence`]) when the donor holds one. The receiver trusts
//! **certificates, not donors**:
//!
//! * A certified entry is accepted iff the [`meba_smr::verify_slot_evidence`]
//!   re-derivation — threshold check, domain-separated session, and the
//!   `BB_valid` mapping — yields exactly the claimed decision. A forged,
//!   stale, or replayed-for-another-slot certificate is rejected and
//!   counted, never adopted.
//! * An uncertified entry (the slot settled through the fallback path,
//!   or the donor itself restarted and lost the certificate) is adopted
//!   only once `t + 1` *distinct* donors claim byte-identical decisions:
//!   any `t + 1` replicas include a correct one, so the matched value is
//!   the committed one.
//!
//! Either way the receiver journals [`meba_journal::Record::Transferred`]
//! before applying, preserving the WAL-before-externalize discipline.
//!
//! The word/byte cost of transfer is accounted under its own component
//! tag (`service/transfer`), so experiment E19 can check the property
//! that matters for an adaptive protocol: transfer traffic scales with
//! the *outage length* (the slots actually missed), not with the total
//! log length.

use crate::batch::Batch;
use meba_core::{Decision, SystemConfig};
use meba_crypto::{DecodeError, Decoder, Encoder, Pki, WireCodec, WordCost};
use meba_sim::Message;
use meba_smr::{verify_slot_evidence, CommitEvidence};

/// Default budget (maximum reply payload bytes) a recovering replica
/// grants per [`TransferMsg::FetchCommitted`].
pub const DEFAULT_FETCH_BUDGET: u64 = 64 * 1024;

/// One slot of a donor's applied prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransferEntry {
    /// The slot.
    pub slot: u64,
    /// The donor's claimed decision: canonical [`Batch`] bytes, empty
    /// for `⊥`.
    pub value: Vec<u8>,
    /// The slot's commit certificate, when the donor holds one. `None`
    /// means the receiver must collect `t + 1` matching claims instead.
    pub cert: Option<CommitEvidence>,
}

/// The state-transfer message family, riding the same transport seams as
/// the log traffic (wrapped in [`crate::replica::ReplicaMsg`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferMsg {
    /// "Send me your applied prefix from `from_slot`, up to `budget`
    /// payload bytes." Sent by a recovering replica to one donor.
    FetchCommitted {
        /// First slot the requester is missing.
        from_slot: u64,
        /// Maximum total payload bytes the donor may return.
        budget: u64,
    },
    /// A donor's answer: contiguous applied slots starting at
    /// `from_slot`, certificates attached where held.
    CommittedBatch {
        /// Echo of the request's `from_slot`.
        from_slot: u64,
        /// Contiguous entries `from_slot, from_slot + 1, …`.
        entries: Vec<TransferEntry>,
    },
}

const TAG_FETCH: u32 = 0;
const TAG_BATCH: u32 = 1;

impl WireCodec for TransferEntry {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.slot);
        enc.put_bytes(&self.value);
        enc.put_option(&self.cert, |e, c| c.encode_wire(e));
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let slot = dec.get_u64()?;
        let value = dec.get_bytes()?;
        let cert = dec.get_option(CommitEvidence::decode_wire)?;
        Ok(TransferEntry { slot, value, cert })
    }
}

impl WireCodec for TransferMsg {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            TransferMsg::FetchCommitted { from_slot, budget } => {
                enc.put_u32(TAG_FETCH);
                enc.put_u64(*from_slot);
                enc.put_u64(*budget);
            }
            TransferMsg::CommittedBatch { from_slot, entries } => {
                enc.put_u32(TAG_BATCH);
                enc.put_u64(*from_slot);
                enc.put_u64(entries.len() as u64);
                for e in entries {
                    e.encode_wire(enc);
                }
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            TAG_FETCH => {
                let from_slot = dec.get_u64()?;
                let budget = dec.get_u64()?;
                Ok(TransferMsg::FetchCommitted { from_slot, budget })
            }
            TAG_BATCH => {
                let from_slot = dec.get_u64()?;
                let len = dec.get_u64()?;
                let len = usize::try_from(len)
                    .map_err(|_| DecodeError::Invalid { what: "transfer entry count" })?;
                let mut entries = Vec::new();
                for _ in 0..len {
                    entries.push(TransferEntry::decode_wire(dec)?);
                }
                Ok(TransferMsg::CommittedBatch { from_slot, entries })
            }
            _ => Err(DecodeError::Invalid { what: "unknown transfer message tag" }),
        }
    }
}

impl Message for TransferMsg {
    fn words(&self) -> u64 {
        match self {
            TransferMsg::FetchCommitted { .. } => 2,
            TransferMsg::CommittedBatch { entries, .. } => {
                1 + entries
                    .iter()
                    .map(|e| {
                        let cert = e.cert.as_ref().map_or(0, |c| {
                            (c.ba_value.len() as u64).div_ceil(8) + 1 + c.proof.qc.words()
                        });
                        1 + (e.value.len() as u64).div_ceil(8) + cert
                    })
                    .sum::<u64>()
            }
        }
    }

    fn constituent_sigs(&self) -> u64 {
        match self {
            TransferMsg::FetchCommitted { .. } => 0,
            TransferMsg::CommittedBatch { entries, .. } => entries
                .iter()
                .filter_map(|e| e.cert.as_ref())
                .map(|c| c.proof.qc.constituent_sigs())
                .sum(),
        }
    }

    fn component(&self) -> &'static str {
        "service/transfer"
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

/// The compaction snapshot a replica writes as
/// [`meba_journal::Record::Snapshot`] state: everything a rebuild needs
/// that the dropped per-slot records used to carry. KV state and the
/// dedup table are *not* stored — both re-derive deterministically by
/// replaying `applied` in slot order.
///
/// `proposals` must travel with the snapshot: dropping a journaled slot
/// binding would let a restarted replica re-bind a different value to
/// the same slot, i.e. equivocate on the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// The applied prefix is `[0, upto_slot)`.
    pub upto_slot: u64,
    /// Applied decisions, `(slot, canonical batch bytes)`; empty bytes
    /// encode `⊥`.
    pub applied: Vec<(u64, Vec<u8>)>,
    /// Journaled slot bindings, `(slot, canonical batch bytes)`.
    pub proposals: Vec<(u64, Vec<u8>)>,
    /// Commit certificates held, `(slot, evidence)`.
    pub evidence: Vec<(u64, CommitEvidence)>,
}

impl WireCodec for ServiceSnapshot {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.upto_slot);
        enc.put_u64(self.applied.len() as u64);
        for (slot, value) in &self.applied {
            enc.put_u64(*slot);
            enc.put_bytes(value);
        }
        enc.put_u64(self.proposals.len() as u64);
        for (slot, value) in &self.proposals {
            enc.put_u64(*slot);
            enc.put_bytes(value);
        }
        enc.put_u64(self.evidence.len() as u64);
        for (slot, ev) in &self.evidence {
            enc.put_u64(*slot);
            ev.encode_wire(enc);
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        fn count(dec: &mut Decoder<'_>) -> Result<usize, DecodeError> {
            usize::try_from(dec.get_u64()?)
                .map_err(|_| DecodeError::Invalid { what: "snapshot entry count" })
        }
        let upto_slot = dec.get_u64()?;
        let mut applied = Vec::new();
        for _ in 0..count(dec)? {
            let slot = dec.get_u64()?;
            applied.push((slot, dec.get_bytes()?));
        }
        let mut proposals = Vec::new();
        for _ in 0..count(dec)? {
            let slot = dec.get_u64()?;
            proposals.push((slot, dec.get_bytes()?));
        }
        let mut evidence = Vec::new();
        for _ in 0..count(dec)? {
            let slot = dec.get_u64()?;
            evidence.push((slot, CommitEvidence::decode_wire(dec)?));
        }
        Ok(ServiceSnapshot { upto_slot, applied, proposals, evidence })
    }
}

/// The claimed decision of a [`TransferEntry`], decoded: empty bytes are
/// `⊥`, anything else must be a canonical [`Batch`].
///
/// Returns `None` for malformed (or non-canonical) value bytes — the
/// entry is then unusable whatever its certificate says.
pub fn claimed_decision(entry: &TransferEntry) -> Option<Decision<Batch>> {
    if entry.value.is_empty() {
        return Some(Decision::Bot);
    }
    let batch = Batch::from_wire_bytes(&entry.value).ok()?;
    if batch.to_wire_bytes() != entry.value {
        return None;
    }
    Some(Decision::Value(batch))
}

/// Verifies a *certified* transfer entry: the certificate must re-derive
/// (under `slot`'s domain-separated session and the `BB_valid` mapping)
/// exactly the decision the donor claims. Returns the decision on
/// success, `None` on any forgery: bad value bytes, bad certificate, a
/// certificate for another slot, or a genuine certificate attached to a
/// different claimed value.
pub fn verify_certified(
    cfg: &SystemConfig,
    pki: &Pki,
    entry: &TransferEntry,
) -> Option<Decision<Batch>> {
    let cert = entry.cert.as_ref()?;
    let claimed = claimed_decision(entry)?;
    let derived = verify_slot_evidence::<Batch>(cfg, pki, entry.slot, cert)?;
    (derived == claimed).then_some(claimed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_core::DecideProof;
    use meba_crypto::trusted_setup;

    /// A structurally valid certificate that certifies nothing relevant:
    /// a real quorum signature over an unrelated message.
    fn fake_cert() -> CommitEvidence {
        let (pki, keys) = trusted_setup(5, 0x99);
        let shares: Vec<_> = keys.iter().take(3).map(|k| k.sign(b"unrelated")).collect();
        let qc = pki.combine(3, b"unrelated", &shares).unwrap();
        CommitEvidence { ba_value: vec![1, 2, 3], proof: DecideProof { phase: 1, qc } }
    }

    fn samples() -> Vec<TransferMsg> {
        vec![
            TransferMsg::FetchCommitted { from_slot: 3, budget: 4096 },
            TransferMsg::CommittedBatch { from_slot: 0, entries: vec![] },
            TransferMsg::CommittedBatch {
                from_slot: 2,
                entries: vec![
                    TransferEntry { slot: 2, value: vec![], cert: None },
                    TransferEntry { slot: 3, value: vec![9, 9, 9], cert: Some(fake_cert()) },
                ],
            },
        ]
    }

    #[test]
    fn transfer_msgs_roundtrip_canonically() {
        for m in samples() {
            let bytes = m.to_wire_bytes();
            let back = TransferMsg::from_wire_bytes(&bytes).unwrap();
            assert_eq!(back, m);
            assert_eq!(back.to_wire_bytes(), bytes);
        }
    }

    #[test]
    fn unknown_tag_and_truncation_rejected() {
        let mut enc = Encoder::new();
        enc.put_u32(7);
        assert!(TransferMsg::from_wire_bytes(&enc.into_bytes()).is_err());
        for m in samples() {
            let bytes = m.to_wire_bytes();
            for cut in 0..bytes.len() {
                assert!(TransferMsg::from_wire_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_canonically() {
        let snap = ServiceSnapshot {
            upto_slot: 4,
            applied: vec![(0, vec![1, 2]), (1, vec![]), (2, vec![3]), (3, vec![4, 5, 6])],
            proposals: vec![(0, vec![1, 2]), (3, vec![4, 5, 6])],
            evidence: vec![(0, fake_cert()), (2, fake_cert())],
        };
        let bytes = snap.to_wire_bytes();
        let back = ServiceSnapshot::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_wire_bytes(), bytes);
        for cut in 0..bytes.len() {
            assert!(ServiceSnapshot::from_wire_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn forged_cert_is_rejected() {
        let n = 5;
        let cfg = SystemConfig::new(n, 0x77).unwrap();
        let (pki, _) = trusted_setup(n, 0x88);
        let entry = TransferEntry { slot: 0, value: vec![], cert: Some(fake_cert()) };
        assert!(verify_certified(&cfg, &pki, &entry).is_none());
        // Uncertified entries are never "verified certified".
        let bare = TransferEntry { slot: 0, value: vec![], cert: None };
        assert!(verify_certified(&cfg, &pki, &bare).is_none());
        // But their claimed decision still parses (⊥ here) for vouching.
        assert_eq!(claimed_decision(&bare), Some(Decision::Bot));
    }
}
