//! A serving replica: the replicated log plus the client-facing state
//! machine.
//!
//! [`ServiceReplica`] wraps a [`ReplicatedLog`] and runs, inside the same
//! round loop, the full client pipeline: admission (drain the bounded
//! [`ServicePort`] while the pipeline window has room), batching, the
//! write-ahead journal discipline, apply-with-dedup, and the read path.
//! It is an ordinary [`Actor`] over the same wire messages as the bare
//! log, so it runs unchanged on all four backends (lockstep, threaded,
//! TCP, discrete-event).
//!
//! # Journal discipline
//!
//! Two service-level records extend the `meba-journal` vocabulary:
//!
//! * [`Record::Proposed`] — written (and flushed) *before* this replica
//!   binds a batch to one of its proposer slots, i.e. before the batch
//!   can leave in a signed `SenderValue`. On crash-restart the journaled
//!   bindings are replayed as the log's initial command queue, so the
//!   rebuilt replica re-binds byte-identical values to the same slots and
//!   the deterministic signer reproduces the same signatures — a restart
//!   can never equivocate about a slot binding.
//! * [`Record::Committed`] — written (and flushed) *before* the
//!   client-visible `Committed` ack leaves the process. Replay rebuilds
//!   the `(client, seq)` dedup table and the applied state exactly, so a
//!   restarted replica never acks the same op twice.
//! * [`Record::Transferred`] — written (and flushed) *before* a slot
//!   adopted via certified state transfer is applied, and
//!   [`Record::Evidence`] preserves the slot certificates this replica
//!   holds so it can keep serving certified transfer after a restart.
//!
//! # State transfer
//!
//! A slot whose critical rounds the replica missed while down may retire
//! as `⊥` locally even when the surviving quorum committed a value there
//! (the outage counts toward `f` for that instance). A rebuilt replica
//! therefore runs in *recovering* mode: it never applies a locally
//! `⊥`-retired slot on its own authority. Instead it fetches the slot
//! from a donor ([`TransferMsg::FetchCommitted`]) and adopts the donor's
//! claim only when the attached quorum commit certificate re-derives it
//! ([`crate::transfer::verify_certified`]), or when `t + 1` distinct
//! donors claim byte-identical decisions — so Byzantine donors cannot
//! forge history, and the applied prefix converges to the cluster's
//! committed prefix without waiting for client retries (DESIGN.md §16,
//! `docs/CORRECTNESS.md` §13).

use crate::admission::{ReadRequest, ServicePort};
use crate::batch::{Batch, BatchPolicy, Batcher, Op};
use crate::protocol::{ReadMode, ServiceReply};
use crate::transfer::{
    claimed_decision, verify_certified, ServiceSnapshot, TransferEntry, TransferMsg,
    DEFAULT_FETCH_BUDGET,
};
use meba_core::bb::BbBaValue;
use meba_core::{Decision, FallbackFactory, SubProtocol, SystemConfig};
use meba_crypto::{DecodeError, Decoder, Encoder, Pki, ProcessId, SecretKey, WireCodec};
use meba_journal::{Journal, Record};
use meba_sim::{Actor, Dest, Envelope, Message, Round, RoundCtx, ServiceStats};
use meba_smr::{CommitEvidence, LogEntry, ReplicatedLog, SmrMsg};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The fallback's wire-message type over [`Batch`] values.
pub type ServiceFbMsg<F> = <<F as FallbackFactory<BbBaValue<Batch>>>::Protocol as SubProtocol>::Msg;

/// A service replica's *log* wire-message type: identical to the bare
/// [`ReplicatedLog`]'s, so every backend and adversary that drives the
/// log drives the service.
pub type ServiceMsg<F> = SmrMsg<Batch, ServiceFbMsg<F>>;

/// The full wire-message type of a [`ServiceReplica`]: log traffic plus
/// the state-transfer family, multiplexed on the same transport seams —
/// both variants ride one mesh link / one channel, on every backend.
#[derive(Clone, Debug)]
pub enum ReplicaMsg<M> {
    /// Agreement traffic of the replicated log.
    Log(M),
    /// Anti-entropy state transfer (DESIGN.md §16).
    Transfer(TransferMsg),
}

impl<M: Message + WireCodec> Message for ReplicaMsg<M> {
    fn words(&self) -> u64 {
        match self {
            ReplicaMsg::Log(m) => m.words(),
            ReplicaMsg::Transfer(t) => t.words(),
        }
    }
    fn constituent_sigs(&self) -> u64 {
        match self {
            ReplicaMsg::Log(m) => m.constituent_sigs(),
            ReplicaMsg::Transfer(t) => t.constituent_sigs(),
        }
    }
    fn component(&self) -> &'static str {
        match self {
            ReplicaMsg::Log(m) => m.component(),
            ReplicaMsg::Transfer(t) => t.component(),
        }
    }
    fn session(&self) -> Option<u64> {
        match self {
            ReplicaMsg::Log(m) => m.session(),
            ReplicaMsg::Transfer(_) => None,
        }
    }
    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

const REPLICA_MSG_LOG: u32 = 0;
const REPLICA_MSG_TRANSFER: u32 = 1;

/// Rounds between `FetchCommitted` probes while recovering: long enough
/// for a reply (request + reply is one round trip) plus the local apply,
/// short enough that catch-up latency stays a small multiple of the
/// outage.
const FETCH_INTERVAL_ROUNDS: u64 = 4;

impl<M: WireCodec> WireCodec for ReplicaMsg<M> {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            ReplicaMsg::Log(m) => {
                enc.put_u32(REPLICA_MSG_LOG);
                m.encode_wire(enc);
            }
            ReplicaMsg::Transfer(t) => {
                enc.put_u32(REPLICA_MSG_TRANSFER);
                t.encode_wire(enc);
            }
        }
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            REPLICA_MSG_LOG => Ok(ReplicaMsg::Log(M::decode_wire(dec)?)),
            REPLICA_MSG_TRANSFER => Ok(ReplicaMsg::Transfer(TransferMsg::decode_wire(dec)?)),
            _ => Err(DecodeError::Invalid { what: "unknown replica message tag" }),
        }
    }
}

/// Sizing of one service deployment.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Slots the log runs.
    pub total_slots: u64,
    /// Pipeline window `W`.
    pub window: u64,
    /// Batch close policy.
    pub batch: BatchPolicy,
    /// Admission-queue bound of the replica's [`ServicePort`].
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            total_slots: 8,
            window: 2,
            batch: BatchPolicy::default(),
            queue_capacity: 64,
        }
    }
}

/// One replica of the replicated service. See the module docs.
pub struct ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    cfg: SystemConfig,
    pki: Pki,
    log: ReplicatedLog<Batch, F>,
    port: Arc<ServicePort>,
    batcher: Batcher,
    journal: Option<Journal>,
    /// Replicated KV state: last committed write per key.
    kv: BTreeMap<u64, u64>,
    /// `(client, seq)` → `(slot, batch_index)` of its unique commit —
    /// the dedup table, authoritative at apply time.
    committed_at: BTreeMap<(u64, u64), (u64, u32)>,
    /// Slots already applied (pre-crash applies replayed from the
    /// journal stay in here so fast-forward does not re-apply them).
    applied: BTreeSet<u64>,
    /// Next slot to apply; applies are strictly contiguous.
    apply_cursor: u64,
    /// In-flight admissions: `(client, seq)` → admit round.
    admitted: BTreeMap<(u64, u64), u64>,
    /// Slots whose binding this replica has already journaled, with the
    /// exact journaled bytes (carried into snapshots so compaction can
    /// never lose a binding and re-open the equivocation window).
    journaled_proposals: BTreeMap<u64, Vec<u8>>,
    pending_reads: Vec<(ReadRequest, u64)>,
    /// Canonical bytes of every applied slot's decision (empty = `⊥`) —
    /// the donor-side source of truth for state transfer; rebuilt from
    /// the journal on restart.
    applied_values: BTreeMap<u64, Vec<u8>>,
    /// Commit certificates this replica holds, for serving *certified*
    /// transfer (journaled as [`Record::Evidence`] to survive restarts).
    evidence: BTreeMap<u64, CommitEvidence>,
    /// Whether this replica was rebuilt from a journal and must treat
    /// locally `⊥`-retired slots as suspect until donor-confirmed.
    recovering: bool,
    /// First slot whose opening round this replica observed after the
    /// restart (pinned on the first post-rebuild round). Slots below it
    /// may have had critical rounds eaten by the outage and need donor
    /// confirmation; slots at or above it are watched end-to-end, so
    /// once the cursor reaches the horizon recovering mode ends and the
    /// fetch cadence stops — transfer cost scales with the outage, not
    /// with how much log remains (E19).
    recovery_horizon: Option<u64>,
    /// Donor decisions adopted but not yet applied (waiting for the
    /// strict-order cursor), with the certificate that earned adoption.
    transferred: BTreeMap<u64, (Decision<Batch>, Option<CommitEvidence>)>,
    /// Uncertified donor claims: slot → claimed bytes → distinct donors.
    vouches: BTreeMap<u64, BTreeMap<Vec<u8>, BTreeSet<ProcessId>>>,
    /// Round of the last `FetchCommitted` this replica sent.
    last_fetch_round: Option<u64>,
    /// Apply cursor at the last fetch — no movement means the donor gave
    /// us nothing usable and we rotate.
    last_fetch_cursor: u64,
    /// Rotating donor index into the peer list.
    donor_cursor: u64,
    stats: ServiceStats,
}

impl<F> ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    /// A fresh replica. `journal` is the service-level write-ahead log
    /// (`None` disables crash durability; fine for lockstep tests).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        service: ServiceConfig,
        port: Arc<ServicePort>,
        journal: Option<Journal>,
    ) -> Self {
        Self::with_commands(cfg, me, key, pki, factory, service, port, journal, Vec::new())
    }

    #[allow(clippy::too_many_arguments)]
    fn with_commands(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        service: ServiceConfig,
        port: Arc<ServicePort>,
        journal: Option<Journal>,
        commands: Vec<Batch>,
    ) -> Self {
        let log = ReplicatedLog::new(
            cfg,
            me,
            key,
            pki.clone(),
            factory,
            service.total_slots,
            commands,
            Batch::noop(),
        )
        .with_window(service.window);
        ServiceReplica {
            cfg,
            pki,
            log,
            port,
            batcher: Batcher::new(service.batch),
            journal,
            kv: BTreeMap::new(),
            committed_at: BTreeMap::new(),
            applied: BTreeSet::new(),
            apply_cursor: 0,
            admitted: BTreeMap::new(),
            journaled_proposals: BTreeMap::new(),
            pending_reads: Vec::new(),
            applied_values: BTreeMap::new(),
            evidence: BTreeMap::new(),
            recovering: false,
            recovery_horizon: None,
            transferred: BTreeMap::new(),
            vouches: BTreeMap::new(),
            last_fetch_round: None,
            last_fetch_cursor: 0,
            donor_cursor: 0,
            stats: ServiceStats::default(),
        }
    }

    /// Rebuilds a crashed replica from its journal: replays
    /// [`Record::Committed`] / [`Record::Transferred`] into the KV state
    /// and the dedup table, [`Record::Proposed`] into the log's initial
    /// command queue so fast-forward re-binds byte-identical values to
    /// the same slots, and [`Record::Evidence`] into the certificate
    /// store so this replica keeps serving certified transfer. A
    /// [`Record::Snapshot`] (written by [`Self::compact_journal`]) seeds
    /// all of the above before the remaining records replay on top.
    ///
    /// The rebuilt replica is in *recovering* mode: locally `⊥`-retired
    /// slots are held back until donor-confirmed (see module docs).
    /// Returns the rebuilt replica and the number of records replayed.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O or decode failures (a torn tail is fine —
    /// replay stops at the last intact record).
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        service: ServiceConfig,
        port: Arc<ServicePort>,
        mut journal: Journal,
    ) -> std::io::Result<(Self, u64)> {
        let bad = |what: &'static str| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
        let report = journal.replay()?;
        let replayed = report.records.len() as u64;
        let mut proposals: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut applied: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut evidence: Vec<(u64, CommitEvidence)> = Vec::new();
        for rec in report.records {
            match rec {
                Record::Snapshot { upto_slot: _, state } => {
                    let snap = ServiceSnapshot::from_wire_bytes(&state)
                        .map_err(|_| bad("bad Snapshot state"))?;
                    proposals = snap.proposals;
                    applied = snap.applied;
                    evidence = snap.evidence;
                }
                Record::Proposed { slot, value } => proposals.push((slot, value)),
                Record::Committed { slot, value } | Record::Transferred { slot, value } => {
                    applied.push((slot, value));
                }
                Record::Evidence { slot, evidence: bytes } => {
                    let ev = CommitEvidence::from_wire_bytes(&bytes)
                        .map_err(|_| bad("bad Evidence record"))?;
                    evidence.push((slot, ev));
                }
                _ => {}
            }
        }
        let commands: Vec<Batch> = proposals
            .iter()
            .map(|(_, b)| Batch::from_wire_bytes(b).map_err(|_| bad("bad Proposed batch")))
            .collect::<Result<_, _>>()?;
        let mut replica =
            Self::with_commands(cfg, me, key, pki, factory, service, port, Some(journal), commands);
        replica.journaled_proposals = proposals.into_iter().collect();
        replica.evidence = evidence.into_iter().collect();
        for (slot, bytes) in applied {
            replica.applied.insert(slot);
            if bytes.is_empty() {
                replica.stats.skipped_slots += 1;
            } else {
                let batch =
                    Batch::from_wire_bytes(&bytes).map_err(|_| bad("bad Committed batch"))?;
                for (i, op) in batch.ops().iter().enumerate() {
                    replica.replay_op(slot, i as u32, *op);
                }
            }
            replica.applied_values.insert(slot, bytes);
        }
        while replica.applied.contains(&replica.apply_cursor) {
            replica.apply_cursor += 1;
        }
        replica.recovering = true;
        Ok((replica, replayed))
    }

    /// Compacts the journal to a [`Record::Snapshot`] covering every
    /// applied slot (KV, dedup, applied decisions, slot bindings, and
    /// commit certificates all re-seed from it on the next rebuild). The
    /// per-slot records it subsumes are dropped; slot bindings are
    /// carried inside the snapshot, so compaction can never re-open the
    /// equivocation window.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors. No-op without a journal.
    pub fn compact_journal(&mut self) -> std::io::Result<()> {
        let snap = ServiceSnapshot {
            upto_slot: self.apply_cursor,
            applied: self.applied_values.iter().map(|(s, v)| (*s, v.clone())).collect(),
            proposals: self.journaled_proposals.iter().map(|(s, v)| (*s, v.clone())).collect(),
            evidence: self.evidence.iter().map(|(s, e)| (*s, e.clone())).collect(),
        };
        let rec = Record::Snapshot { upto_slot: self.apply_cursor, state: snap.to_wire_bytes() };
        match &mut self.journal {
            Some(j) => j.compact(&rec, &[]),
            None => Ok(()),
        }
    }

    /// Replays one committed op during rebuild: state and dedup only, no
    /// journal write and no client event (the pre-crash incarnation
    /// already acked it).
    fn replay_op(&mut self, slot: u64, idx: u32, op: Op) {
        let dedup = (op.client, op.seq);
        if self.committed_at.contains_key(&dedup) {
            self.stats.ops_deduped += 1;
            return;
        }
        self.committed_at.insert(dedup, (slot, idx));
        self.kv.insert(op.key, op.value);
        self.stats.ops_committed += 1;
        self.stats.client_mut(op.client).committed += 1;
    }

    /// The replica's port (the handle gateways and test drivers share).
    pub fn port(&self) -> &Arc<ServicePort> {
        &self.port
    }

    /// The underlying replicated log.
    pub fn log(&self) -> &ReplicatedLog<Batch, F> {
        &self.log
    }

    /// The applied KV state.
    pub fn kv(&self) -> &BTreeMap<u64, u64> {
        &self.kv
    }

    /// Where `(client, seq)` committed, if it has.
    pub fn committed_at(&self, client: u64, seq: u64) -> Option<(u64, u32)> {
        self.committed_at.get(&(client, seq)).copied()
    }

    /// Number of contiguously applied slots.
    pub fn applied_slots(&self) -> u64 {
        self.apply_cursor
    }

    /// Service metrics: the replica's pipeline counters merged with the
    /// port's front-door (submitted/accepted/rejected) counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats.clone();
        let c = self.port.counters();
        s.ops_submitted = c.submitted;
        s.ops_accepted = c.accepted;
        s.ops_rejected = c.rejected;
        for (client, pc) in c.per_client {
            let m = s.client_mut(client);
            m.submitted = pc.submitted;
            m.accepted = pc.accepted;
            m.rejected = pc.rejected;
        }
        s
    }

    fn journal_append(&mut self, rec: &Record) {
        if let Some(j) = &mut self.journal {
            j.append(rec).expect("service journal append");
            j.flush().expect("service journal flush");
        }
    }

    /// WAL discipline for slot bindings: if a slot opens this round with
    /// us as proposer, journal the exact value about to bind *before*
    /// the spawn can externalize it, then spawn through the
    /// collision-checked path.
    fn bind_due_slot(&mut self, round: u64) {
        let Some(slot) = self.log.due_slot(round) else { return };
        if self.log.proposer_of(slot) == self.log.id()
            && !self.journaled_proposals.contains_key(&slot)
        {
            // Don't waste our proposer slot on a no-op while ops sit in
            // the open batch: close it early so the slot carries them.
            if self.log.queued() == 0 {
                if let Some(batch) = self.batcher.close() {
                    self.enqueue_batch(batch);
                }
            }
            let value = self.log.queued_front().cloned().unwrap_or_else(Batch::noop);
            let bytes = value.to_wire_bytes();
            self.journal_append(&Record::Proposed { slot, value: bytes.clone() });
            self.journaled_proposals.insert(slot, bytes);
        }
        if self.log.spawn_due(round).is_err() {
            self.stats.session_collisions += 1;
        }
    }

    /// Drains the port while the pipeline window has room. Backpressure:
    /// once `W` batches sit unbound, draining stops, the bounded port
    /// fills, and clients get typed `Overloaded` rejections.
    fn drain_admissions(&mut self, round: u64) {
        while (self.log.queued() as u64) < self.log.window() {
            let ops = self.port.drain_submits(self.batcher.policy().max_batch_ops);
            if ops.is_empty() {
                break;
            }
            for op in ops {
                self.admit(op, round);
            }
        }
    }

    fn admit(&mut self, op: Op, round: u64) {
        let dedup = (op.client, op.seq);
        if let Some(&(slot, batch_index)) = self.committed_at.get(&dedup) {
            // Client retry of an already-committed op: idempotent re-ack.
            self.stats.ops_deduped += 1;
            self.port.push_event(ServiceReply::Committed {
                client: op.client,
                seq: op.seq,
                slot,
                batch_index,
            });
            return;
        }
        if self.admitted.contains_key(&dedup) {
            // Retry while the first copy is still in flight: the pending
            // copy's eventual commit acks both.
            self.stats.ops_deduped += 1;
            return;
        }
        self.admitted.insert(dedup, round);
        if let Some(batch) = self.batcher.push(op, round) {
            self.enqueue_batch(batch);
        }
    }

    fn enqueue_batch(&mut self, batch: Batch) {
        self.stats.batches_proposed += 1;
        self.stats.batched_ops += batch.len() as u64;
        self.log.enqueue(batch);
    }

    /// Applies newly committed slots in strict slot order. Locally
    /// decided slots apply directly — except a `⊥` retirement on a
    /// *recovering* replica, which is suspect (the outage may have eaten
    /// the slot's critical rounds) and waits for donor confirmation.
    /// Donor-confirmed slots fill the same cursor gap.
    fn apply_committed(&mut self, round: u64) {
        loop {
            if self.applied.contains(&self.apply_cursor) {
                // Replayed from the journal pre-crash, or transferred.
                self.apply_cursor += 1;
                continue;
            }
            let cursor = self.apply_cursor;
            let local = self
                .log
                .log()
                .binary_search_by_key(&cursor, |e| e.slot)
                .ok()
                .map(|i| self.log.log()[i].clone());
            let trust_local = match &local {
                Some(e) => !self.recovering || matches!(e.entry, Decision::Value(_)),
                None => false,
            };
            if trust_local {
                let entry = local.expect("trust_local implies a local entry");
                if let Some((transferred, _)) = self.transferred.get(&cursor) {
                    if *transferred != entry.entry {
                        // A certified donor decision disagreeing with our
                        // own retirement would be a safety violation —
                        // count it loudly (must stay zero in every run).
                        self.stats.applied_conflicts += 1;
                    }
                }
                self.apply_slot(&entry, round);
                self.apply_cursor += 1;
                continue;
            }
            // No trusted local decision: only a donor-confirmed decision
            // advances the cursor.
            let Some((decision, cert)) = self.transferred.get(&cursor).cloned() else {
                break;
            };
            self.apply_transferred(cursor, decision, cert, round);
            self.apply_cursor += 1;
        }
        if self.recovering
            && self.apply_cursor >= self.recovery_horizon.unwrap_or(self.log.total_slots())
        {
            // Caught up past every slot the outage could have touched:
            // back to ordinary trust rules, and the fetch cadence stops.
            self.recovering = false;
        }
    }

    fn apply_slot(&mut self, entry: &LogEntry<Batch>, round: u64) {
        // Journal before the client-visible ack can leave.
        let bytes = match &entry.entry {
            Decision::Value(b) => b.to_wire_bytes(),
            Decision::Bot => Vec::new(),
        };
        self.journal_append(&Record::Committed { slot: entry.slot, value: bytes.clone() });
        if let Some(ev) = self.log.evidence(entry.slot).cloned() {
            self.journal_append(&Record::Evidence {
                slot: entry.slot,
                evidence: ev.to_wire_bytes(),
            });
            self.evidence.insert(entry.slot, ev);
        }
        self.applied.insert(entry.slot);
        self.applied_values.insert(entry.slot, bytes);
        self.transferred.remove(&entry.slot);
        self.vouches.remove(&entry.slot);
        match &entry.entry {
            Decision::Bot => self.stats.skipped_slots += 1,
            Decision::Value(batch) => {
                for (i, op) in batch.ops().iter().enumerate() {
                    self.apply_live_op(entry.slot, i as u32, *op, round);
                }
            }
        }
    }

    /// Applies a donor-confirmed decision to a slot this replica could
    /// not (or, recovering, would not) decide locally. Same WAL-before-
    /// externalize discipline as [`Self::apply_slot`], under
    /// [`Record::Transferred`] so a rebuild can tell the paths apart.
    fn apply_transferred(
        &mut self,
        slot: u64,
        decision: Decision<Batch>,
        cert: Option<CommitEvidence>,
        round: u64,
    ) {
        let bytes = match &decision {
            Decision::Value(b) => b.to_wire_bytes(),
            Decision::Bot => Vec::new(),
        };
        self.journal_append(&Record::Transferred { slot, value: bytes.clone() });
        if let Some(ev) = cert {
            self.journal_append(&Record::Evidence { slot, evidence: ev.to_wire_bytes() });
            self.evidence.insert(slot, ev);
        }
        self.applied.insert(slot);
        self.applied_values.insert(slot, bytes);
        self.transferred.remove(&slot);
        self.vouches.remove(&slot);
        self.stats.slots_transferred += 1;
        match &decision {
            Decision::Bot => self.stats.skipped_slots += 1,
            Decision::Value(batch) => {
                for (i, op) in batch.ops().iter().enumerate() {
                    self.apply_live_op(slot, i as u32, *op, round);
                }
            }
        }
    }

    fn apply_live_op(&mut self, slot: u64, idx: u32, op: Op, round: u64) {
        let dedup = (op.client, op.seq);
        if self.committed_at.contains_key(&dedup) {
            // The same (client, seq) landed in an earlier slot (e.g. a
            // resubmission accepted by another replica): first commit
            // wins, deterministically, on every replica.
            self.stats.ops_deduped += 1;
            return;
        }
        self.committed_at.insert(dedup, (slot, idx));
        self.kv.insert(op.key, op.value);
        self.stats.ops_committed += 1;
        self.stats.client_mut(op.client).committed += 1;
        if let Some(admit_round) = self.admitted.remove(&dedup) {
            self.stats.commit_latency_rounds.record_us(round.saturating_sub(admit_round));
        }
        self.port.push_event(ServiceReply::Committed {
            client: op.client,
            seq: op.seq,
            slot,
            batch_index: idx,
        });
    }

    /// Serves a donor reply: contiguous applied slots from `from_slot`,
    /// certificates attached where held, bounded by `budget` payload
    /// bytes (always at least one entry when one exists, so progress
    /// never stalls on a tight budget). Empty when we have nothing past
    /// `from_slot` — the requester rotates to another donor.
    fn serve_fetch(&self, from_slot: u64, budget: u64) -> TransferMsg {
        let mut entries = Vec::new();
        let mut used = 0u64;
        let mut slot = from_slot;
        while slot < self.apply_cursor {
            let Some(value) = self.applied_values.get(&slot) else { break };
            let entry = TransferEntry {
                slot,
                value: value.clone(),
                cert: self.evidence.get(&slot).cloned(),
            };
            let cost = entry.to_wire_bytes().len() as u64;
            if !entries.is_empty() && used + cost > budget {
                break;
            }
            used += cost;
            entries.push(entry);
            slot += 1;
        }
        TransferMsg::CommittedBatch { from_slot, entries }
    }

    /// One round of the anti-entropy protocol: answer incoming fetches
    /// from our applied prefix, sift incoming donor batches through the
    /// certificate / `t + 1`-vouch filters, and (when recovering and
    /// stalled) ask the next donor for our missing range. Returns the
    /// outgoing transfer messages.
    fn on_transfer(
        &mut self,
        round: u64,
        inbox: &[(ProcessId, TransferMsg)],
    ) -> Vec<(ProcessId, TransferMsg)> {
        let mut out = Vec::new();
        for (from, msg) in inbox {
            match msg {
                TransferMsg::FetchCommitted { from_slot, budget } => {
                    out.push((*from, self.serve_fetch(*from_slot, *budget)));
                }
                TransferMsg::CommittedBatch { entries, .. } => {
                    for entry in entries {
                        self.sift_entry(*from, entry);
                    }
                }
            }
        }
        if self.recovering
            && self.apply_cursor < self.log.total_slots()
            && self.last_fetch_round.is_none_or(|r| round >= r + FETCH_INTERVAL_ROUNDS)
        {
            if self.last_fetch_round.is_some() && self.apply_cursor == self.last_fetch_cursor {
                // The last donor gave us nothing usable: rotate.
                self.donor_cursor += 1;
                self.stats.transfer_donor_retries += 1;
            }
            let me = self.log.id().0 as u64;
            let n = self.cfg.n() as u64;
            let peers = n - 1;
            let donor = ProcessId((((me + 1) + self.donor_cursor % peers) % n) as u32);
            debug_assert_ne!(donor, self.log.id());
            out.push((
                donor,
                TransferMsg::FetchCommitted {
                    from_slot: self.apply_cursor,
                    budget: DEFAULT_FETCH_BUDGET,
                },
            ));
            self.last_fetch_round = Some(round);
            self.last_fetch_cursor = self.apply_cursor;
        }
        out
    }

    /// Filters one donor-claimed slot. Certified claims are adopted iff
    /// the certificate re-derives the claim; uncertified claims are
    /// tallied per donor and adopted at `t + 1` byte-identical matches.
    /// Forgeries are counted and dropped.
    fn sift_entry(&mut self, from: ProcessId, entry: &TransferEntry) {
        if self.applied.contains(&entry.slot) || self.transferred.contains_key(&entry.slot) {
            return;
        }
        if entry.cert.is_some() {
            match verify_certified(&self.cfg, &self.pki, entry) {
                Some(decision) => {
                    self.stats.transfer_certs_verified += 1;
                    self.stats.transfer_bytes += entry.to_wire_bytes().len() as u64;
                    self.transferred.insert(entry.slot, (decision, entry.cert.clone()));
                }
                None => self.stats.transfer_certs_rejected += 1,
            }
            return;
        }
        let Some(decision) = claimed_decision(entry) else {
            self.stats.transfer_certs_rejected += 1;
            return;
        };
        let donors =
            self.vouches.entry(entry.slot).or_default().entry(entry.value.clone()).or_default();
        donors.insert(from);
        if donors.len() >= self.cfg.idk_threshold() {
            self.stats.transfer_vouches_accepted += 1;
            self.stats.transfer_bytes += entry.to_wire_bytes().len() as u64;
            self.transferred.insert(entry.slot, (decision, None));
        }
    }

    /// Whether this replica is still in post-restart recovering mode.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// The canonical bytes applied at `slot` (empty = `⊥`), if applied.
    pub fn applied_value(&self, slot: u64) -> Option<&[u8]> {
        self.applied_values.get(&slot).map(Vec::as_slice)
    }

    /// The commit certificate held for `slot`, if any.
    pub fn slot_evidence(&self, slot: u64) -> Option<&CommitEvidence> {
        self.evidence.get(&slot)
    }

    /// The highest slot that has opened by `round` — a confirmed read
    /// waits until the applied prefix covers it.
    fn confirm_barrier(&self, round: u64) -> u64 {
        (round / self.log.stride()).min(self.log.total_slots().saturating_sub(1))
    }

    fn take_reads(&mut self, round: u64) {
        for req in self.port.drain_reads() {
            let barrier = match req.mode {
                ReadMode::Fast => 0,
                ReadMode::Confirmed => self.confirm_barrier(round),
            };
            self.pending_reads.push((req, barrier));
        }
    }

    fn serve_reads(&mut self) {
        let cursor = self.apply_cursor;
        let mut keep = Vec::new();
        for (req, barrier) in std::mem::take(&mut self.pending_reads) {
            let ready = matches!(req.mode, ReadMode::Fast) || cursor > barrier;
            if ready {
                self.port.push_event(ServiceReply::ReadResult {
                    client: req.client,
                    key: req.key,
                    value: self.kv.get(&req.key).copied(),
                    applied_slots: cursor,
                    mode: req.mode,
                });
            } else {
                keep.push((req, barrier));
            }
        }
        self.pending_reads = keep;
    }
}

impl<F> Actor for ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    type Msg = ReplicaMsg<ServiceMsg<F>>;

    fn id(&self) -> ProcessId {
        self.log.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let round = ctx.round().as_u64();
        // Demultiplex: log traffic drives the agreement engine through a
        // nested context, transfer traffic feeds the anti-entropy path.
        let mut log_inbox: Vec<Envelope<ServiceMsg<F>>> = Vec::new();
        let mut transfer_inbox: Vec<(ProcessId, TransferMsg)> = Vec::new();
        for env in ctx.inbox() {
            match &env.msg {
                ReplicaMsg::Log(m) => {
                    log_inbox.push(Envelope { from: env.from, msg: m.clone() });
                }
                ReplicaMsg::Transfer(t) => transfer_inbox.push((env.from, t.clone())),
            }
        }
        self.drain_admissions(round);
        if let Some(batch) = self.batcher.tick(round) {
            self.enqueue_batch(batch);
        }
        self.bind_due_slot(round);
        let mut inner = RoundCtx::new(ctx.round(), ctx.me(), ctx.n(), &log_inbox);
        self.log.on_round(&mut inner);
        for (dest, msg) in inner.take_outbox() {
            match dest {
                Dest::To(p) => ctx.send(p, ReplicaMsg::Log(msg)),
                Dest::All => ctx.broadcast(ReplicaMsg::Log(msg)),
            }
        }
        for (to, msg) in self.on_transfer(round, &transfer_inbox) {
            ctx.send(to, ReplicaMsg::Transfer(msg));
        }
        self.apply_committed(round);
        self.take_reads(round);
        self.serve_reads();
    }

    fn done(&self) -> bool {
        self.log.done()
            && self.pending_reads.is_empty()
            && (!self.recovering || self.apply_cursor >= self.log.total_slots())
    }

    fn on_rejoin(&mut self, round: Round) {
        // Every slot opening from this round on is watched end-to-end,
        // so only slots below the horizon need donor confirmation. The
        // runtime only delivers this signal on a fate-driven in-process
        // rejoin; a relaunched OS process never gets it and keeps the
        // conservative full-log horizon.
        self.recovery_horizon =
            Some(round.as_u64().div_ceil(self.log.stride()).min(self.log.total_slots()));
    }
}

impl<F> std::fmt::Debug for ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceReplica")
            .field("me", &self.log.id())
            .field("applied", &self.apply_cursor)
            .field("queued", &self.log.queued())
            .field("keys", &self.kv.len())
            .finish_non_exhaustive()
    }
}
