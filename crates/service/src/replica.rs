//! A serving replica: the replicated log plus the client-facing state
//! machine.
//!
//! [`ServiceReplica`] wraps a [`ReplicatedLog`] and runs, inside the same
//! round loop, the full client pipeline: admission (drain the bounded
//! [`ServicePort`] while the pipeline window has room), batching, the
//! write-ahead journal discipline, apply-with-dedup, and the read path.
//! It is an ordinary [`Actor`] over the same wire messages as the bare
//! log, so it runs unchanged on all four backends (lockstep, threaded,
//! TCP, discrete-event).
//!
//! # Journal discipline
//!
//! Two service-level records extend the `meba-journal` vocabulary:
//!
//! * [`Record::Proposed`] — written (and flushed) *before* this replica
//!   binds a batch to one of its proposer slots, i.e. before the batch
//!   can leave in a signed `SenderValue`. On crash-restart the journaled
//!   bindings are replayed as the log's initial command queue, so the
//!   rebuilt replica re-binds byte-identical values to the same slots and
//!   the deterministic signer reproduces the same signatures — a restart
//!   can never equivocate about a slot binding.
//! * [`Record::Committed`] — written (and flushed) *before* the
//!   client-visible `Committed` ack leaves the process. Replay rebuilds
//!   the `(client, seq)` dedup table and the applied state exactly, so a
//!   restarted replica never acks the same op twice.
//!
//! A slot whose critical rounds the replica missed while down may retire
//! as `⊥` locally even when the surviving quorum committed a value there
//! (the outage counts toward `f` for that instance); the replica's KV
//! state can therefore trail until client retries re-land the ops in a
//! later slot — state transfer is future work, documented in
//! `docs/CORRECTNESS.md`.

use crate::admission::{ReadRequest, ServicePort};
use crate::batch::{Batch, BatchPolicy, Batcher, Op};
use crate::protocol::{ReadMode, ServiceReply};
use meba_core::bb::BbBaValue;
use meba_core::{Decision, FallbackFactory, SubProtocol, SystemConfig};
use meba_crypto::{Pki, ProcessId, SecretKey, WireCodec};
use meba_journal::{Journal, Record};
use meba_sim::{Actor, RoundCtx, ServiceStats};
use meba_smr::{LogEntry, ReplicatedLog, SmrMsg};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The fallback's wire-message type over [`Batch`] values.
pub type ServiceFbMsg<F> = <<F as FallbackFactory<BbBaValue<Batch>>>::Protocol as SubProtocol>::Msg;

/// A service replica's wire-message type: identical to the bare
/// [`ReplicatedLog`]'s, so every backend and adversary that drives the
/// log drives the service.
pub type ServiceMsg<F> = SmrMsg<Batch, ServiceFbMsg<F>>;

/// Sizing of one service deployment.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Slots the log runs.
    pub total_slots: u64,
    /// Pipeline window `W`.
    pub window: u64,
    /// Batch close policy.
    pub batch: BatchPolicy,
    /// Admission-queue bound of the replica's [`ServicePort`].
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            total_slots: 8,
            window: 2,
            batch: BatchPolicy::default(),
            queue_capacity: 64,
        }
    }
}

/// One replica of the replicated service. See the module docs.
pub struct ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    log: ReplicatedLog<Batch, F>,
    port: Arc<ServicePort>,
    batcher: Batcher,
    journal: Option<Journal>,
    /// Replicated KV state: last committed write per key.
    kv: BTreeMap<u64, u64>,
    /// `(client, seq)` → `(slot, batch_index)` of its unique commit —
    /// the dedup table, authoritative at apply time.
    committed_at: BTreeMap<(u64, u64), (u64, u32)>,
    /// Slots already applied (pre-crash applies replayed from the
    /// journal stay in here so fast-forward does not re-apply them).
    applied: BTreeSet<u64>,
    /// Next slot to apply; applies are strictly contiguous.
    apply_cursor: u64,
    /// In-flight admissions: `(client, seq)` → admit round.
    admitted: BTreeMap<(u64, u64), u64>,
    /// Slots whose binding this replica has already journaled.
    journaled_proposals: BTreeSet<u64>,
    pending_reads: Vec<(ReadRequest, u64)>,
    stats: ServiceStats,
}

impl<F> ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    /// A fresh replica. `journal` is the service-level write-ahead log
    /// (`None` disables crash durability; fine for lockstep tests).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        service: ServiceConfig,
        port: Arc<ServicePort>,
        journal: Option<Journal>,
    ) -> Self {
        Self::with_commands(cfg, me, key, pki, factory, service, port, journal, Vec::new())
    }

    #[allow(clippy::too_many_arguments)]
    fn with_commands(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        service: ServiceConfig,
        port: Arc<ServicePort>,
        journal: Option<Journal>,
        commands: Vec<Batch>,
    ) -> Self {
        let log = ReplicatedLog::new(
            cfg,
            me,
            key,
            pki,
            factory,
            service.total_slots,
            commands,
            Batch::noop(),
        )
        .with_window(service.window);
        ServiceReplica {
            log,
            port,
            batcher: Batcher::new(service.batch),
            journal,
            kv: BTreeMap::new(),
            committed_at: BTreeMap::new(),
            applied: BTreeSet::new(),
            apply_cursor: 0,
            admitted: BTreeMap::new(),
            journaled_proposals: BTreeSet::new(),
            pending_reads: Vec::new(),
            stats: ServiceStats::default(),
        }
    }

    /// Rebuilds a crashed replica from its journal: replays
    /// [`Record::Committed`] into the KV state and the dedup table, and
    /// [`Record::Proposed`] into the log's initial command queue so
    /// fast-forward re-binds byte-identical values to the same slots.
    /// Returns the rebuilt replica and the number of records replayed.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O or decode failures (a torn tail is fine —
    /// replay stops at the last intact record).
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        service: ServiceConfig,
        port: Arc<ServicePort>,
        mut journal: Journal,
    ) -> std::io::Result<(Self, u64)> {
        let report = journal.replay()?;
        let replayed = report.records.len() as u64;
        let mut proposals: Vec<(u64, Batch)> = Vec::new();
        let mut committed: Vec<(u64, Option<Batch>)> = Vec::new();
        for rec in report.records {
            match rec {
                Record::Proposed { slot, value } => {
                    let batch = Batch::from_wire_bytes(&value).map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Proposed batch")
                    })?;
                    proposals.push((slot, batch));
                }
                Record::Committed { slot, value } => {
                    // Empty bytes encode a ⊥ slot; a batch otherwise.
                    let entry = if value.is_empty() {
                        None
                    } else {
                        Some(Batch::from_wire_bytes(&value).map_err(|_| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                "bad Committed batch",
                            )
                        })?)
                    };
                    committed.push((slot, entry));
                }
                _ => {}
            }
        }
        let commands: Vec<Batch> = proposals.iter().map(|(_, b)| b.clone()).collect();
        let mut replica =
            Self::with_commands(cfg, me, key, pki, factory, service, port, Some(journal), commands);
        replica.journaled_proposals = proposals.into_iter().map(|(s, _)| s).collect();
        for (slot, entry) in committed {
            replica.applied.insert(slot);
            match entry {
                None => replica.stats.skipped_slots += 1,
                Some(batch) => {
                    for (i, op) in batch.ops().iter().enumerate() {
                        replica.replay_op(slot, i as u32, *op);
                    }
                }
            }
        }
        while replica.applied.contains(&replica.apply_cursor) {
            replica.apply_cursor += 1;
        }
        Ok((replica, replayed))
    }

    /// Replays one committed op during rebuild: state and dedup only, no
    /// journal write and no client event (the pre-crash incarnation
    /// already acked it).
    fn replay_op(&mut self, slot: u64, idx: u32, op: Op) {
        let dedup = (op.client, op.seq);
        if self.committed_at.contains_key(&dedup) {
            self.stats.ops_deduped += 1;
            return;
        }
        self.committed_at.insert(dedup, (slot, idx));
        self.kv.insert(op.key, op.value);
        self.stats.ops_committed += 1;
        self.stats.client_mut(op.client).committed += 1;
    }

    /// The replica's port (the handle gateways and test drivers share).
    pub fn port(&self) -> &Arc<ServicePort> {
        &self.port
    }

    /// The underlying replicated log.
    pub fn log(&self) -> &ReplicatedLog<Batch, F> {
        &self.log
    }

    /// The applied KV state.
    pub fn kv(&self) -> &BTreeMap<u64, u64> {
        &self.kv
    }

    /// Where `(client, seq)` committed, if it has.
    pub fn committed_at(&self, client: u64, seq: u64) -> Option<(u64, u32)> {
        self.committed_at.get(&(client, seq)).copied()
    }

    /// Number of contiguously applied slots.
    pub fn applied_slots(&self) -> u64 {
        self.apply_cursor
    }

    /// Service metrics: the replica's pipeline counters merged with the
    /// port's front-door (submitted/accepted/rejected) counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats.clone();
        let c = self.port.counters();
        s.ops_submitted = c.submitted;
        s.ops_accepted = c.accepted;
        s.ops_rejected = c.rejected;
        for (client, pc) in c.per_client {
            let m = s.client_mut(client);
            m.submitted = pc.submitted;
            m.accepted = pc.accepted;
            m.rejected = pc.rejected;
        }
        s
    }

    fn journal_append(&mut self, rec: &Record) {
        if let Some(j) = &mut self.journal {
            j.append(rec).expect("service journal append");
            j.flush().expect("service journal flush");
        }
    }

    /// WAL discipline for slot bindings: if a slot opens this round with
    /// us as proposer, journal the exact value about to bind *before*
    /// the spawn can externalize it, then spawn through the
    /// collision-checked path.
    fn bind_due_slot(&mut self, round: u64) {
        let Some(slot) = self.log.due_slot(round) else { return };
        if self.log.proposer_of(slot) == self.log.id() && !self.journaled_proposals.contains(&slot)
        {
            // Don't waste our proposer slot on a no-op while ops sit in
            // the open batch: close it early so the slot carries them.
            if self.log.queued() == 0 {
                if let Some(batch) = self.batcher.close() {
                    self.enqueue_batch(batch);
                }
            }
            let value = self.log.queued_front().cloned().unwrap_or_else(Batch::noop);
            self.journal_append(&Record::Proposed { slot, value: value.to_wire_bytes() });
            self.journaled_proposals.insert(slot);
        }
        if self.log.spawn_due(round).is_err() {
            self.stats.session_collisions += 1;
        }
    }

    /// Drains the port while the pipeline window has room. Backpressure:
    /// once `W` batches sit unbound, draining stops, the bounded port
    /// fills, and clients get typed `Overloaded` rejections.
    fn drain_admissions(&mut self, round: u64) {
        while (self.log.queued() as u64) < self.log.window() {
            let ops = self.port.drain_submits(self.batcher.policy().max_batch_ops);
            if ops.is_empty() {
                break;
            }
            for op in ops {
                self.admit(op, round);
            }
        }
    }

    fn admit(&mut self, op: Op, round: u64) {
        let dedup = (op.client, op.seq);
        if let Some(&(slot, batch_index)) = self.committed_at.get(&dedup) {
            // Client retry of an already-committed op: idempotent re-ack.
            self.stats.ops_deduped += 1;
            self.port.push_event(ServiceReply::Committed {
                client: op.client,
                seq: op.seq,
                slot,
                batch_index,
            });
            return;
        }
        if self.admitted.contains_key(&dedup) {
            // Retry while the first copy is still in flight: the pending
            // copy's eventual commit acks both.
            self.stats.ops_deduped += 1;
            return;
        }
        self.admitted.insert(dedup, round);
        if let Some(batch) = self.batcher.push(op, round) {
            self.enqueue_batch(batch);
        }
    }

    fn enqueue_batch(&mut self, batch: Batch) {
        self.stats.batches_proposed += 1;
        self.stats.batched_ops += batch.len() as u64;
        self.log.enqueue(batch);
    }

    /// Applies newly committed slots in strict slot order.
    fn apply_committed(&mut self, round: u64) {
        loop {
            if self.applied.contains(&self.apply_cursor) {
                // Replayed from the journal pre-crash.
                self.apply_cursor += 1;
                continue;
            }
            let cursor = self.apply_cursor;
            let Ok(i) = self.log.log().binary_search_by_key(&cursor, |e| e.slot) else {
                break;
            };
            let entry = self.log.log()[i].clone();
            self.apply_slot(&entry, round);
            self.apply_cursor += 1;
        }
    }

    fn apply_slot(&mut self, entry: &LogEntry<Batch>, round: u64) {
        // Journal before the client-visible ack can leave.
        let bytes = match &entry.entry {
            Decision::Value(b) => b.to_wire_bytes(),
            Decision::Bot => Vec::new(),
        };
        self.journal_append(&Record::Committed { slot: entry.slot, value: bytes });
        self.applied.insert(entry.slot);
        match &entry.entry {
            Decision::Bot => self.stats.skipped_slots += 1,
            Decision::Value(batch) => {
                for (i, op) in batch.ops().iter().enumerate() {
                    self.apply_live_op(entry.slot, i as u32, *op, round);
                }
            }
        }
    }

    fn apply_live_op(&mut self, slot: u64, idx: u32, op: Op, round: u64) {
        let dedup = (op.client, op.seq);
        if self.committed_at.contains_key(&dedup) {
            // The same (client, seq) landed in an earlier slot (e.g. a
            // resubmission accepted by another replica): first commit
            // wins, deterministically, on every replica.
            self.stats.ops_deduped += 1;
            return;
        }
        self.committed_at.insert(dedup, (slot, idx));
        self.kv.insert(op.key, op.value);
        self.stats.ops_committed += 1;
        self.stats.client_mut(op.client).committed += 1;
        if let Some(admit_round) = self.admitted.remove(&dedup) {
            self.stats.commit_latency_rounds.record_us(round.saturating_sub(admit_round));
        }
        self.port.push_event(ServiceReply::Committed {
            client: op.client,
            seq: op.seq,
            slot,
            batch_index: idx,
        });
    }

    /// The highest slot that has opened by `round` — a confirmed read
    /// waits until the applied prefix covers it.
    fn confirm_barrier(&self, round: u64) -> u64 {
        (round / self.log.stride()).min(self.log.total_slots().saturating_sub(1))
    }

    fn take_reads(&mut self, round: u64) {
        for req in self.port.drain_reads() {
            let barrier = match req.mode {
                ReadMode::Fast => 0,
                ReadMode::Confirmed => self.confirm_barrier(round),
            };
            self.pending_reads.push((req, barrier));
        }
    }

    fn serve_reads(&mut self) {
        let cursor = self.apply_cursor;
        let mut keep = Vec::new();
        for (req, barrier) in std::mem::take(&mut self.pending_reads) {
            let ready = matches!(req.mode, ReadMode::Fast) || cursor > barrier;
            if ready {
                self.port.push_event(ServiceReply::ReadResult {
                    client: req.client,
                    key: req.key,
                    value: self.kv.get(&req.key).copied(),
                    applied_slots: cursor,
                    mode: req.mode,
                });
            } else {
                keep.push((req, barrier));
            }
        }
        self.pending_reads = keep;
    }
}

impl<F> Actor for ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    type Msg = ServiceMsg<F>;

    fn id(&self) -> ProcessId {
        self.log.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let round = ctx.round().as_u64();
        self.drain_admissions(round);
        if let Some(batch) = self.batcher.tick(round) {
            self.enqueue_batch(batch);
        }
        self.bind_due_slot(round);
        self.log.on_round(ctx);
        self.apply_committed(round);
        self.take_reads(round);
        self.serve_reads();
    }

    fn done(&self) -> bool {
        self.log.done() && self.pending_reads.is_empty()
    }
}

impl<F> std::fmt::Debug for ServiceReplica<F>
where
    F: FallbackFactory<BbBaValue<Batch>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceReplica")
            .field("me", &self.log.id())
            .field("applied", &self.apply_cursor)
            .field("queued", &self.log.queued())
            .field("keys", &self.kv.len())
            .finish_non_exhaustive()
    }
}
