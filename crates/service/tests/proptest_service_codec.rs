//! Property tests for the client protocol's canonical codec, mirroring
//! `meba-wire`'s `proptest_codec`:
//!
//! 1. **Round-trip**: `decode(encode(m))` succeeds and re-encodes to the
//!    identical bytes.
//! 2. **Truncation is total**: every strict prefix errors, never panics.
//! 3. **Bit flips are total and canonical**: a mutated encoding either
//!    errors or decodes to a message that re-encodes to exactly the
//!    mutated bytes — the decoder accepts only canonical encodings.

use meba_core::DecideProof;
use meba_crypto::{trusted_setup, Digest, ProcessId, WireCodec};
use meba_service::{
    Batch, ClientHello, ClientRequest, Op, ReadMode, ReplicaMsg, ServiceReply, ServiceSnapshot,
    TransferEntry, TransferMsg, SERVICE_VERSION,
};
use meba_smr::CommitEvidence;
use proptest::prelude::*;

/// A structurally valid commit certificate over `value`'s bytes (a real
/// threshold signature under a throwaway setup — the codec does not
/// verify, it only round-trips the structure).
fn dummy_cert(value: u64) -> CommitEvidence {
    let n = 3;
    let (pki, keys) = trusted_setup(n, 0x0dec);
    let bytes = value.to_le_bytes();
    let shares: Vec<_> = keys.iter().map(|k| k.sign(&bytes)).collect();
    let qc = pki.combine(n, &bytes, &shares).expect("shares combine");
    CommitEvidence { ba_value: bytes.to_vec(), proof: DecideProof { phase: 1, qc } }
}

/// One instance of every client-protocol frame family, parameterized by
/// the generated scalars.
fn corpus(client: u64, seq: u64, key: u64, value: u64, ops: usize) -> Vec<Vec<u8>> {
    let op = Op { client, seq, key, value };
    let batch = Batch(
        (0..ops as u64).map(|i| Op { client, seq: seq.wrapping_add(i), key, value }).collect(),
    );
    let mut out: Vec<Vec<u8>> = Vec::new();

    let hello = ClientHello {
        version: SERVICE_VERSION,
        client,
        config_digest: Digest::of(&key.to_le_bytes()),
    };
    out.push(hello.to_wire_bytes());

    let reqs = [
        ClientRequest::Submit { op },
        ClientRequest::Read { client, key, mode: ReadMode::Fast },
        ClientRequest::Read { client, key, mode: ReadMode::Confirmed },
    ];
    out.extend(reqs.iter().map(|m| m.to_wire_bytes()));

    let replies = [
        ServiceReply::HelloOk { replica: ProcessId((client % 7) as u32) },
        ServiceReply::Accepted { client, seq },
        ServiceReply::Overloaded { client, seq, queue_len: key, capacity: value },
        ServiceReply::Committed { client, seq, slot: key, batch_index: (value % 1024) as u32 },
        ServiceReply::ReadResult {
            client,
            key,
            value: Some(value),
            applied_slots: seq,
            mode: ReadMode::Confirmed,
        },
        ServiceReply::ReadResult {
            client,
            key,
            value: None,
            applied_slots: 0,
            mode: ReadMode::Fast,
        },
    ];
    out.extend(replies.iter().map(|m| m.to_wire_bytes()));

    out.push(batch.to_wire_bytes());

    // The anti-entropy (state transfer) frame families: the fetch
    // request, a donor batch mixing bare and certified entries, the two
    // entry shapes on their own, the journal-compaction snapshot, and
    // both arms of the replica envelope that multiplexes log and
    // transfer traffic over one link.
    let bare = TransferEntry { slot: key, value: batch.to_wire_bytes(), cert: None };
    let certified = TransferEntry {
        slot: key.wrapping_add(1),
        value: Vec::new(),
        cert: Some(dummy_cert(value)),
    };
    let fetch = TransferMsg::FetchCommitted { from_slot: key, budget: value };
    out.push(fetch.to_wire_bytes());
    let donor_batch = TransferMsg::CommittedBatch {
        from_slot: key,
        entries: vec![bare.clone(), certified.clone()],
    };
    out.push(donor_batch.to_wire_bytes());
    out.push(bare.to_wire_bytes());
    out.push(certified.to_wire_bytes());
    let snapshot = ServiceSnapshot {
        upto_slot: seq,
        applied: vec![(key, batch.to_wire_bytes()), (key.wrapping_add(1), Vec::new())],
        proposals: vec![(key, batch.to_wire_bytes())],
        evidence: vec![(key, dummy_cert(value))],
    };
    out.push(snapshot.to_wire_bytes());
    out.push(ReplicaMsg::Log(batch).to_wire_bytes());
    out.push(ReplicaMsg::<Batch>::Transfer(fetch).to_wire_bytes());
    out
}

const FAMILIES: usize = 18;

/// Decodes `bytes` with the family that produced corpus index `i`,
/// returning the re-encoding if decoding succeeded.
fn redecode(i: usize, bytes: &[u8]) -> Option<Vec<u8>> {
    fn via<M: WireCodec>(bytes: &[u8]) -> Option<Vec<u8>> {
        M::from_wire_bytes(bytes).ok().map(|m| m.to_wire_bytes())
    }
    match i {
        0 => via::<ClientHello>(bytes),
        1..=3 => via::<ClientRequest>(bytes),
        4..=9 => via::<ServiceReply>(bytes),
        10 => via::<Batch>(bytes),
        11 | 12 => via::<TransferMsg>(bytes),
        13 | 14 => via::<TransferEntry>(bytes),
        15 => via::<ServiceSnapshot>(bytes),
        16 | 17 => via::<ReplicaMsg<Batch>>(bytes),
        _ => unreachable!("corpus has {FAMILIES} entries"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_frame_round_trips_canonically(
        client in any::<u64>(),
        seq in any::<u64>(),
        key in any::<u64>(),
        value in any::<u64>(),
        ops in 0usize..16,
    ) {
        let corpus = corpus(client, seq, key, value, ops);
        prop_assert_eq!(corpus.len(), FAMILIES);
        for (i, bytes) in corpus.iter().enumerate() {
            let re = redecode(i, bytes);
            prop_assert_eq!(
                re.as_deref(),
                Some(&bytes[..]),
                "family {} must decode and re-encode to identical bytes",
                i
            );
        }
    }

    #[test]
    fn truncated_frames_error_and_never_panic(
        client in any::<u64>(),
        seq in any::<u64>(),
        key in any::<u64>(),
        value in any::<u64>(),
        ops in 0usize..16,
    ) {
        let corpus = corpus(client, seq, key, value, ops);
        for (i, bytes) in corpus.iter().enumerate() {
            for cut in 0..bytes.len() {
                prop_assert!(
                    redecode(i, &bytes[..cut]).is_none(),
                    "family {}: prefix of {} / {} bytes must not decode",
                    i, cut, bytes.len()
                );
            }
        }
    }

    #[test]
    fn bit_flips_error_or_stay_canonical(
        client in any::<u64>(),
        seq in any::<u64>(),
        key in any::<u64>(),
        value in any::<u64>(),
        ops in 0usize..16,
        flip in any::<u64>(),
    ) {
        let corpus = corpus(client, seq, key, value, ops);
        for (i, bytes) in corpus.iter().enumerate() {
            let mut mutated = bytes.clone();
            let bit = (flip as usize) % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            if let Some(re) = redecode(i, &mutated) {
                prop_assert_eq!(
                    &re,
                    &mutated,
                    "family {}: an accepted mutation must still be canonical",
                    i
                );
            }
        }
    }
}
