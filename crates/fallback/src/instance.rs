//! Instance identifiers and participant scopes for the recursive BA.
//!
//! The recursion always splits a *contiguous range* of process indices, so
//! a participant set is a half-open range [`Scope`]; an [`InstanceId`]
//! names one component run (a graded agreement, a base-case interactive
//! consistency, or a certificate exchange) within the recursion tree.
//! Every signature binds its instance id, so shares from one subset or
//! iteration cannot be replayed in another.

use meba_crypto::{DecodeError, Decoder, Encoder, ProcessId, WireCodec};
use std::fmt;

/// A contiguous, half-open range of process indices `[lo, hi)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scope {
    /// First member index.
    pub lo: u32,
    /// One past the last member index.
    pub hi: u32,
}

impl Scope {
    /// The full system scope.
    pub fn full(n: usize) -> Scope {
        Scope { lo: 0, hi: n as u32 }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the scope is empty.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: ProcessId) -> bool {
        p.0 >= self.lo && p.0 < self.hi
    }

    /// Iterates over the members.
    pub fn members(&self) -> impl Iterator<Item = ProcessId> {
        (self.lo..self.hi).map(ProcessId)
    }

    /// Splits into two halves (left gets the extra element for odd sizes).
    ///
    /// # Panics
    ///
    /// Panics if the scope has fewer than 2 members.
    pub fn split(&self) -> (Scope, Scope) {
        assert!(self.len() >= 2, "cannot split scope of {} members", self.len());
        let mid = self.lo + self.len().div_ceil(2) as u32;
        (Scope { lo: self.lo, hi: mid }, Scope { lo: mid, hi: self.hi })
    }

    /// Honest-majority threshold `⌊len/2⌋ + 1`: when the scope has an
    /// honest majority, this many distinct members must include one honest
    /// process, and the honest members alone can reach it.
    pub fn majority(&self) -> usize {
        self.len() / 2 + 1
    }

    /// Canonical encoding for signed payloads.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.lo);
        enc.put_u32(self.hi);
    }
}

impl WireCodec for Scope {
    fn encode_wire(&self, enc: &mut Encoder) {
        self.encode(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let lo = dec.get_u32()?;
        let hi = dec.get_u32()?;
        Ok(Scope { lo, hi })
    }
}

impl fmt::Debug for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// Names one component instance inside the recursion tree.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// The participant scope of the component.
    pub scope: Scope,
    /// Disambiguates repeated components over the same scope (e.g. the
    /// first vs. second graded agreement of a level).
    pub seq: u8,
}

impl InstanceId {
    /// Creates an id.
    pub fn new(scope: Scope, seq: u8) -> Self {
        InstanceId { scope, seq }
    }

    /// Canonical encoding for signed payloads.
    pub fn encode(&self, enc: &mut Encoder) {
        self.scope.encode(enc);
        enc.put_u32(self.seq as u32);
    }
}

impl WireCodec for InstanceId {
    fn encode_wire(&self, enc: &mut Encoder) {
        self.encode(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let scope = Scope::decode_wire(dec)?;
        let seq = dec.get_u32()?;
        let seq =
            u8::try_from(seq).map_err(|_| DecodeError::Invalid { what: "instance seq > 255" })?;
        Ok(InstanceId { scope, seq })
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.scope, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_halves_cover() {
        let s = Scope::full(7);
        let (l, r) = s.split();
        assert_eq!(l, Scope { lo: 0, hi: 4 });
        assert_eq!(r, Scope { lo: 4, hi: 7 });
        assert_eq!(l.len() + r.len(), s.len());
    }

    #[test]
    fn membership_and_majority() {
        let s = Scope { lo: 2, hi: 6 };
        assert!(s.contains(ProcessId(2)));
        assert!(s.contains(ProcessId(5)));
        assert!(!s.contains(ProcessId(6)));
        assert_eq!(s.len(), 4);
        assert_eq!(s.majority(), 3);
        assert_eq!(s.members().count(), 4);
    }

    #[test]
    fn at_least_one_half_keeps_honest_majority() {
        // The recursion's pigeonhole: if a scope has an honest majority,
        // at most one half can be Byzantine-majority. Check exhaustively
        // for sizes up to 33 and all fault counts below half.
        for m in 2..=33u32 {
            let s = Scope { lo: 0, hi: m };
            let (l, r) = s.split();
            for f in 0..s.majority() as u32 {
                // Worst case: pack faults into one half first.
                let fl = f.min(l.hi - l.lo);
                let fr = f - fl;
                let l_bad = fl as usize >= l.majority();
                let r_bad = fr as usize >= r.majority();
                assert!(!(l_bad && r_bad), "m={m} f={f}");
            }
        }
    }

    #[test]
    fn instance_ids_encode_distinctly() {
        fn bytes(i: InstanceId) -> Vec<u8> {
            let mut e = Encoder::new();
            i.encode(&mut e);
            e.into_bytes()
        }
        let a = InstanceId::new(Scope { lo: 0, hi: 4 }, 0);
        let b = InstanceId::new(Scope { lo: 0, hi: 4 }, 1);
        let c = InstanceId::new(Scope { lo: 0, hi: 5 }, 0);
        assert_ne!(bytes(a), bytes(b));
        assert_ne!(bytes(a), bytes(c));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_singleton_panics() {
        let _ = Scope { lo: 0, hi: 1 }.split();
    }
}
