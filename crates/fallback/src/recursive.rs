//! The quadratic fallback strong BA: recursive halving over graded
//! agreements, in the shape of Momose–Ren's optimal-communication BA.
//!
//! `RecBA(P)` for a participant scope `P`:
//!
//! 1. If `|P| ≤ B` (base size): run interactive consistency
//!    ([`crate::ds::IcInstance`]) and return its decision.
//! 2. Otherwise split `P` into halves `L`, `R` and run
//!    `GA(P) → RecBA(L) → Cert(L) → GA(P) → RecBA(R) → Cert(R)`,
//!    where `Cert(C)` has each member of `C` broadcast a signed share of
//!    its recursive decision to all of `P`, and every member of `P` whose
//!    last grade is `< 2` adopts the value carried by `⌊|C|/2⌋ + 1`
//!    distinct shares.
//!
//! # Correctness sketch (induction over scopes with honest majority)
//!
//! *Strong unanimity*: unanimous honest inputs give grade 2 in every GA
//! (GA validity), so certificates are never adopted and the common value
//! survives to the output.
//!
//! *Agreement*: at most one half of an honest-majority scope can be
//! Byzantine-majority (pigeonhole, tested exhaustively in
//! `instance::tests`). Consider the good half `C`. By GA consistency,
//! when any honest process holds grade 2 on `v`, *all* honest hold `v`,
//! so `C`'s honest members enter `RecBA(C)` unanimously with `v`, decide
//! `v` (induction), and the unique certificate (a Byzantine minority in
//! `C` cannot reach `⌊|C|/2⌋ + 1` distinct shares) re-distributes `v` —
//! adopters and grade-2 keepers agree. When no honest grade 2 exists,
//! everyone adopts the unique certificate. If the *bad* half comes second
//! it cannot undo this: the GA before it turns the already-unanimous
//! honest value into grade 2 everywhere, and grade-2 holders ignore
//! certificates.
//!
//! *Termination* is structural: the schedule is a fixed function of `n`.
//!
//! # Complexity
//!
//! Each level runs two GAs and two certificate exchanges over `m`
//! processes — `O(m²)` words — and recurses on halves:
//! `T(m) = 2·T(m/2) + O(m²) = O(m²)`, the quadratic shape the paper needs
//! from `A_fallback` (§6). The measured constant is validated in
//! experiment E3.

use crate::ds::{ic_steps, IcInstance};
use crate::ga::{GaInstance, GA_STEPS};
use crate::instance::{InstanceId, Scope};
use crate::messages::{RecBaMsg, RecDecideSig};
use meba_core::{FallbackFactory, SubProtocol, SystemConfig, Value};
use meba_crypto::{Pki, ProcessId, SecretKey, Signable};
use meba_sim::Dest;
use std::collections::{BTreeMap, BTreeSet};

/// Scopes of at most this many members run the interactive-consistency
/// base case instead of recursing.
pub const BASE_SCOPE: usize = 4;

/// Sequence tag for certificate instances (distinct from the GA tags 0/1).
const CERT_SEQ: u8 = 250;

#[derive(Clone, Copy, Debug)]
enum SegKind {
    Ga(u8),
    Ic,
    Cert { child: Scope },
}

#[derive(Clone, Copy, Debug)]
struct Segment {
    start: u64,
    len: u64,
    scope: Scope,
    kind: SegKind,
}

fn build_plan(scope: Scope, start: u64, segs: &mut Vec<Segment>, base: usize) -> u64 {
    if scope.len() <= base {
        let len = ic_steps(&scope);
        segs.push(Segment { start, len, scope, kind: SegKind::Ic });
        return start + len;
    }
    let (l, r) = scope.split();
    let mut s = start;
    segs.push(Segment { start: s, len: GA_STEPS, scope, kind: SegKind::Ga(0) });
    s += GA_STEPS;
    s = build_plan(l, s, segs, base);
    segs.push(Segment { start: s, len: 2, scope, kind: SegKind::Cert { child: l } });
    s += 2;
    segs.push(Segment { start: s, len: GA_STEPS, scope, kind: SegKind::Ga(1) });
    s += GA_STEPS;
    s = build_plan(r, s, segs, base);
    segs.push(Segment { start: s, len: 2, scope, kind: SegKind::Cert { child: r } });
    s += 2;
    s
}

/// Total virtual steps the recursive BA needs for a system of `n`
/// processes (default base size).
pub fn recursive_ba_steps(n: usize) -> u64 {
    recursive_ba_steps_with_base(n, BASE_SCOPE)
}

/// Total virtual steps with an explicit base-case size (ablation E10).
pub fn recursive_ba_steps_with_base(n: usize, base: usize) -> u64 {
    let mut segs = Vec::new();
    build_plan(Scope::full(n), 0, &mut segs, base.max(1)) + 1
}

/// One participant of the recursive fallback BA.
pub struct RecursiveBa<V: Value> {
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    plan: Vec<Segment>,
    end: u64,
    seg_idx: usize,
    /// Stack of `(scope, value, grade)` — one level per recursion depth
    /// this process is currently a member of.
    levels: Vec<(Scope, V, u8)>,
    active_ga: Option<GaInstance<V>>,
    active_ic: Option<IcInstance<V>>,
    cert_shares: BTreeMap<V, BTreeSet<ProcessId>>,
    output: Option<V>,
}

impl<V: Value> RecursiveBa<V> {
    /// Creates a participant with initial value `input` and the default
    /// base-case size.
    pub fn new(cfg: SystemConfig, me: ProcessId, key: SecretKey, pki: Pki, input: V) -> Self {
        Self::with_base(cfg, me, key, pki, input, BASE_SCOPE)
    }

    /// Creates a participant with an explicit base-case size: scopes of
    /// at most `base` members run interactive consistency instead of
    /// recursing (the base-size ablation, experiment E10). Larger bases
    /// trade recursion overhead for the IC's `O(B³)`-ish base cost.
    pub fn with_base(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        input: V,
        base: usize,
    ) -> Self {
        let base = base.max(1);
        let mut plan = Vec::new();
        let end = build_plan(Scope::full(cfg.n()), 0, &mut plan, base);
        RecursiveBa {
            cfg,
            me,
            key,
            pki,
            plan,
            end,
            seg_idx: 0,
            levels: vec![(Scope::full(cfg.n()), input, 0)],
            active_ga: None,
            active_ic: None,
            cert_shares: BTreeMap::new(),
            output: None,
        }
    }

    fn cert_inst(child: Scope) -> InstanceId {
        InstanceId::new(child, CERT_SEQ)
    }

    fn top(&mut self) -> &mut (Scope, V, u8) {
        self.levels.last_mut().expect("root level always present")
    }

    fn scope_broadcast(
        &self,
        scope: Scope,
        msgs: Vec<RecBaMsg<V>>,
        out: &mut Vec<(Dest, RecBaMsg<V>)>,
    ) {
        for msg in msgs {
            for m in scope.members() {
                out.push((Dest::To(m), msg.clone()));
            }
        }
    }

    fn enter_segment(&mut self, seg: Segment, out: &mut Vec<(Dest, RecBaMsg<V>)>) {
        // Descend one recursion level when a child segment begins.
        if seg.scope.contains(self.me) {
            let (top_scope, top_value, _) = self.top().clone();
            if seg.scope != top_scope && seg.scope.len() < top_scope.len() {
                self.levels.push((seg.scope, top_value, 0));
            }
        }
        match seg.kind {
            SegKind::Ga(seq) => {
                if seg.scope.contains(self.me) {
                    let input = self.top().1.clone();
                    self.active_ga = Some(GaInstance::new(
                        InstanceId::new(seg.scope, seq),
                        self.cfg.session(),
                        self.me,
                        self.key.clone(),
                        self.pki.clone(),
                        input,
                    ));
                }
            }
            SegKind::Ic => {
                if seg.scope.contains(self.me) {
                    let input = self.top().1.clone();
                    self.active_ic = Some(IcInstance::new(
                        InstanceId::new(seg.scope, 0),
                        self.cfg.session(),
                        self.me,
                        self.key.clone(),
                        self.pki.clone(),
                        input,
                    ));
                }
            }
            SegKind::Cert { child } => {
                self.cert_shares.clear();
                if child.contains(self.me) {
                    // Pop the child level: its value is this member's
                    // recursive decision, to be attested.
                    let (popped_scope, decision, _) =
                        self.levels.pop().expect("child level present");
                    debug_assert_eq!(popped_scope, child, "stack discipline");
                    let payload = RecDecideSig {
                        session: self.cfg.session(),
                        inst: Self::cert_inst(child),
                        value: &decision,
                    };
                    let sig = self.key.sign(&payload.signing_bytes());
                    self.scope_broadcast(
                        seg.scope,
                        vec![RecBaMsg::CertShare {
                            inst: Self::cert_inst(child),
                            value: decision,
                            sig,
                        }],
                        out,
                    );
                }
            }
        }
    }
}

impl<V: Value> SubProtocol for RecursiveBa<V> {
    type Msg = RecBaMsg<V>;
    type Output = V;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, RecBaMsg<V>)],
        out: &mut Vec<(Dest, RecBaMsg<V>)>,
    ) {
        if self.output.is_some() {
            return;
        }
        if step >= self.end {
            debug_assert_eq!(self.levels.len(), 1, "all child levels popped");
            self.output = Some(self.levels[0].1.clone());
            return;
        }
        // Advance to the segment containing `step` (the plan is
        // contiguous, so entry happens exactly at each segment's start).
        while self.seg_idx < self.plan.len() {
            let seg = self.plan[self.seg_idx];
            if step < seg.start + seg.len {
                break;
            }
            self.seg_idx += 1;
        }
        let seg = self.plan[self.seg_idx];
        let k = step - seg.start;
        if k == 0 {
            self.enter_segment(seg, out);
        }

        let borrowed: Vec<(ProcessId, &RecBaMsg<V>)> = inbox.iter().map(|(p, m)| (*p, m)).collect();
        match seg.kind {
            SegKind::Ga(_) => {
                if let Some(ga) = &mut self.active_ga {
                    let mut msgs = Vec::new();
                    ga.on_step(k, &borrowed, &mut msgs);
                    if k == GA_STEPS - 1 {
                        if let Some((v, g)) = ga.result().cloned() {
                            let top = self.top();
                            debug_assert_eq!(top.0, seg.scope);
                            top.1 = v;
                            top.2 = g;
                        }
                        self.active_ga = None;
                    }
                    self.scope_broadcast(seg.scope, msgs, out);
                }
            }
            SegKind::Ic => {
                if let Some(ic) = &mut self.active_ic {
                    let mut msgs = Vec::new();
                    ic.on_step(k, &borrowed, &mut msgs);
                    if k == seg.len - 1 {
                        if let Some(v) = ic.decision().cloned() {
                            let top = self.top();
                            debug_assert_eq!(top.0, seg.scope);
                            top.1 = v;
                        }
                        self.active_ic = None;
                    }
                    self.scope_broadcast(seg.scope, msgs, out);
                }
            }
            SegKind::Cert { child } => {
                if k == 1 && seg.scope.contains(self.me) {
                    let inst = Self::cert_inst(child);
                    for (_, msg) in inbox {
                        if let RecBaMsg::CertShare { inst: i, value, sig } = msg {
                            if *i == inst && child.contains(sig.signer()) {
                                let payload =
                                    RecDecideSig { session: self.cfg.session(), inst, value };
                                if self.pki.verify(&payload.signing_bytes(), sig).is_ok() {
                                    self.cert_shares
                                        .entry(value.clone())
                                        .or_default()
                                        .insert(sig.signer());
                                }
                            }
                        }
                    }
                    let winner = self
                        .cert_shares
                        .iter()
                        .filter(|(_, signers)| signers.len() >= child.majority())
                        .max_by(|a, b| a.1.len().cmp(&b.1.len()).then(b.0.cmp(a.0)))
                        .map(|(v, _)| v.clone());
                    if let Some(v) = winner {
                        let top = self.top();
                        debug_assert_eq!(top.0, seg.scope);
                        if top.2 < 2 {
                            top.1 = v;
                        }
                    }
                }
            }
        }
    }

    fn output(&self) -> Option<V> {
        self.output.clone()
    }

    fn done(&self) -> bool {
        self.output.is_some()
    }
}

impl<V: Value> std::fmt::Debug for RecursiveBa<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecursiveBa")
            .field("me", &self.me)
            .field("levels", &self.levels.len())
            .field("output", &self.output)
            .finish_non_exhaustive()
    }
}

/// Factory wiring [`RecursiveBa`] into the adaptive protocols as their
/// `A_fallback`.
#[derive(Clone)]
pub struct RecursiveBaFactory {
    cfg: SystemConfig,
    key: SecretKey,
    pki: Pki,
}

impl RecursiveBaFactory {
    /// Creates the factory for one process (holding its signing key).
    pub fn new(cfg: SystemConfig, key: SecretKey, pki: Pki) -> Self {
        RecursiveBaFactory { cfg, key, pki }
    }
}

impl std::fmt::Debug for RecursiveBaFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecursiveBaFactory").finish_non_exhaustive()
    }
}

impl<V: Value> FallbackFactory<V> for RecursiveBaFactory {
    type Protocol = RecursiveBa<V>;

    fn create(&self, me: ProcessId, input: V) -> RecursiveBa<V> {
        debug_assert_eq!(self.key.id(), me, "factory key must belong to the running process");
        RecursiveBa::new(self.cfg, me, self.key.clone(), self.pki.clone(), input)
    }

    fn max_steps(&self) -> u64 {
        recursive_ba_steps(self.cfg.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_core::LockstepAdapter;
    use meba_crypto::trusted_setup;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type Msg = RecBaMsg<u64>;

    fn make_sim(inputs: &[u64], crashed: &[u32]) -> Simulation<Msg> {
        let n = inputs.len();
        let cfg = SystemConfig::new(n, 1).unwrap();
        let (pki, keys) = trusted_setup(n, 3);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
            } else {
                let rb = RecursiveBa::new(cfg, id, key, pki.clone(), inputs[i]);
                actors.push(Box::new(LockstepAdapter::new(id, rb)));
            }
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn outputs(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<u64> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let a: &LockstepAdapter<RecursiveBa<u64>> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect()
    }

    #[test]
    fn plan_is_contiguous_and_quadratic() {
        for n in [5usize, 9, 17, 33, 65] {
            let mut segs = Vec::new();
            let end = build_plan(Scope::full(n), 0, &mut segs, BASE_SCOPE);
            let mut cursor = 0;
            for seg in &segs {
                assert_eq!(seg.start, cursor, "plan must be gap-free");
                cursor += seg.len;
            }
            assert_eq!(cursor, end);
            // Rounds are linear-ish in n (2 T(m/2) + c recursion).
            assert!(end <= 30 * n as u64);
        }
    }

    #[test]
    fn unanimous_small_system() {
        let mut sim = make_sim(&[5, 5, 5], &[]);
        sim.run_until_done(100).unwrap();
        assert!(outputs(&sim, &[]).iter().all(|&v| v == 5));
    }

    #[test]
    fn unanimous_recursive_system() {
        // n = 9 recurses: 9 -> (5, 4) -> ((3, 2), 4).
        let mut sim = make_sim(&[7; 9], &[]);
        sim.run_until_done(400).unwrap();
        assert!(outputs(&sim, &[]).iter().all(|&v| v == 7), "strong unanimity");
    }

    #[test]
    fn mixed_inputs_agree() {
        let mut sim = make_sim(&[1, 2, 3, 4, 5, 6, 7, 8, 9], &[]);
        sim.run_until_done(400).unwrap();
        let outs = outputs(&sim, &[]);
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement: {outs:?}");
    }

    #[test]
    fn unanimity_survives_max_crashes() {
        // n = 9, t = 4 crashes — the regime the adaptive protocols
        // delegate to this fallback.
        let crashed = [0u32, 2, 5, 7];
        let mut sim = make_sim(&[3; 9], &crashed);
        sim.run_until_done(400).unwrap();
        assert!(outputs(&sim, &crashed).iter().all(|&v| v == 3), "strong unanimity");
    }

    #[test]
    fn agreement_survives_max_crashes_mixed_inputs() {
        let crashed = [1u32, 3, 6, 8];
        let mut sim = make_sim(&[2, 9, 2, 9, 2, 9, 2, 9, 2], &crashed);
        sim.run_until_done(400).unwrap();
        let outs = outputs(&sim, &crashed);
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement: {outs:?}");
    }

    #[test]
    fn words_scale_quadratically() {
        let mut words = Vec::new();
        for n in [9usize, 17, 33] {
            let mut sim = make_sim(&vec![1u64; n], &[]);
            sim.run_until_done(2000).unwrap();
            words.push((n, sim.metrics().correct_words()));
        }
        // Quadratic shape: words(2n)/words(n) should be around 4 and well
        // below the cubic ratio 8.
        for w in words.windows(2) {
            let ratio = w[1].1 as f64 / w[0].1 as f64;
            assert!(ratio > 2.0 && ratio < 7.0, "ratio {ratio} for {:?}", w);
        }
    }
}
