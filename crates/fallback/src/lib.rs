//! Quadratic synchronous strong BA substrate for the `meba` workspace.
//!
//! The adaptive protocols of `meba-core` delegate to a strong BA
//! (`A_fallback`, Momose–Ren in the paper) whenever the actual fault count
//! is high enough that quadratic communication is within budget. This
//! crate provides:
//!
//! * [`RecursiveBa`] — the production fallback: recursive halving over
//!   [`GaInstance`] graded agreements with [`IcInstance`]
//!   (Dolev–Strong interactive consistency) base cases; `O(n²)`-shaped
//!   words, strong unanimity, agreement and termination at `n = 2t + 1`;
//! * [`DolevStrongBb`] — the classic `t + 1`-round authenticated
//!   broadcast, used as the non-adaptive baseline in the Table 1
//!   experiments;
//! * the signed-payload and instance-scoping machinery that makes shares
//!   from different subsets and iterations non-replayable.
//!
//! See `DESIGN.md` §6 for why this substitution preserves everything the
//! reproduced paper needs from Momose–Ren's black box.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ds;
pub mod ga;
pub mod gradecast;
pub mod instance;
pub mod messages;
pub mod recursive;

pub use ds::{ic_steps, DolevStrongBb, DsCore, IcInstance};
pub use ga::{GaInstance, GA_STEPS};
pub use gradecast::{Gradecast, GRADECAST_STEPS};
pub use instance::{InstanceId, Scope};
pub use messages::{DsBbMsg, RecBaMsg};
pub use recursive::{
    recursive_ba_steps, recursive_ba_steps_with_base, RecursiveBa, RecursiveBaFactory, BASE_SCOPE,
};
