//! Wire messages and signed payloads of the fallback protocols.

use crate::instance::InstanceId;
use meba_core::Value;
use meba_crypto::{
    AggregateSignature, DecodeError, Decoder, Encoder, ProcessId, Signable, Signature,
    ThresholdSignature, WireCodec, WordCost,
};
use meba_sim::Message;

/// Signed payload of a graded-agreement input share.
#[derive(Debug)]
pub struct GaInputSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// Component instance.
    pub inst: InstanceId,
    /// The input value.
    pub value: &'a V,
}

impl<V: Value> Signable for GaInputSig<'_, V> {
    const DOMAIN: &'static str = "meba/fallback/ga-input";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.inst.encode(enc);
        self.value.encode_value(enc);
    }
}

/// Signed payload of a graded-agreement vote share.
#[derive(Debug)]
pub struct GaVoteSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// Component instance.
    pub inst: InstanceId,
    /// The voted value.
    pub value: &'a V,
}

impl<V: Value> Signable for GaVoteSig<'_, V> {
    const DOMAIN: &'static str = "meba/fallback/ga-vote";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.inst.encode(enc);
        self.value.encode_value(enc);
    }
}

/// Signed payload of a Dolev–Strong forwarding chain: the instance, the
/// designated sender, and the value.
#[derive(Debug)]
pub struct DsValSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// Component instance.
    pub inst: InstanceId,
    /// The Dolev–Strong designated sender.
    pub ds_sender: ProcessId,
    /// The value being broadcast.
    pub value: &'a V,
}

impl<V: Value> Signable for DsValSig<'_, V> {
    const DOMAIN: &'static str = "meba/fallback/ds-val";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.inst.encode(enc);
        enc.put_id(self.ds_sender);
        self.value.encode_value(enc);
    }
}

/// Signed payload of a gradecast sender value.
#[derive(Debug)]
pub struct GcValSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// Component instance.
    pub inst: InstanceId,
    /// The designated gradecast sender.
    pub sender: ProcessId,
    /// The broadcast value.
    pub value: &'a V,
}

impl<V: Value> Signable for GcValSig<'_, V> {
    const DOMAIN: &'static str = "meba/fallback/gc-val";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.inst.encode(enc);
        enc.put_id(self.sender);
        self.value.encode_value(enc);
    }
}

/// Signed payload of a recursive-BA decision share for a child scope.
#[derive(Debug)]
pub struct RecDecideSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// The *child* instance whose decision is being attested.
    pub inst: InstanceId,
    /// The decided value.
    pub value: &'a V,
}

impl<V: Value> Signable for RecDecideSig<'_, V> {
    const DOMAIN: &'static str = "meba/fallback/rec-decide";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.inst.encode(enc);
        self.value.encode_value(enc);
    }
}

/// Wire messages of the recursive fallback BA.
#[derive(Clone, Debug)]
pub enum RecBaMsg<V> {
    /// GA round 1: signed input broadcast.
    GaInput {
        /// Instance.
        inst: InstanceId,
        /// Input value.
        value: V,
        /// Signature over [`GaInputSig`].
        sig: Signature,
    },
    /// GA round 2: echo of a first-round certificate `C1(v)`.
    GaEcho {
        /// Instance.
        inst: InstanceId,
        /// Certified value.
        value: V,
        /// `(maj, n)`-threshold certificate over [`GaInputSig`].
        c1: ThresholdSignature,
    },
    /// GA round 3: vote, carrying the unique `C1` the voter saw.
    GaVote {
        /// Instance.
        inst: InstanceId,
        /// Voted value.
        value: V,
        /// Signature over [`GaVoteSig`].
        sig: Signature,
        /// The certificate justifying the vote.
        c1: ThresholdSignature,
    },
    /// GA: evidence of two conflicting first-round certificates.
    GaConflict {
        /// Instance.
        inst: InstanceId,
        /// First certified value.
        v1: V,
        /// Its certificate.
        c1a: ThresholdSignature,
        /// Second certified value (≠ `v1`).
        v2: V,
        /// Its certificate.
        c1b: ThresholdSignature,
    },
    /// GA round 4: second-level certificate `C2(v)` broadcast.
    GaCert2 {
        /// Instance.
        inst: InstanceId,
        /// Certified value.
        value: V,
        /// `(maj, n)`-threshold certificate over [`GaVoteSig`].
        c2: ThresholdSignature,
    },
    /// Dolev–Strong forwarding message inside an interactive-consistency
    /// base case.
    DsForward {
        /// Instance.
        inst: InstanceId,
        /// Which member's broadcast this chain belongs to.
        ds_sender: ProcessId,
        /// The forwarded value.
        value: V,
        /// Aggregate signature chain over [`DsValSig`].
        agg: AggregateSignature,
    },
    /// Gradecast round 1: the designated sender's signed value.
    GcSend {
        /// Instance.
        inst: InstanceId,
        /// The sender's value.
        value: V,
        /// Signature over [`GcValSig`] by the designated sender.
        sig: Signature,
    },
    /// A child-scope member's signed decision share.
    CertShare {
        /// The child instance.
        inst: InstanceId,
        /// The decided value.
        value: V,
        /// Signature over [`RecDecideSig`].
        sig: Signature,
    },
}

impl<V: Value> Message for RecBaMsg<V> {
    fn words(&self) -> u64 {
        match self {
            RecBaMsg::GaInput { value, sig, .. } => value.value_words() + sig.words(),
            RecBaMsg::GaEcho { value, c1, .. } => value.value_words() + c1.words(),
            RecBaMsg::GaVote { value, sig, c1, .. } => {
                value.value_words() + sig.words() + c1.words()
            }
            RecBaMsg::GaConflict { v1, c1a, v2, c1b, .. } => {
                v1.value_words() + c1a.words() + v2.value_words() + c1b.words()
            }
            RecBaMsg::GaCert2 { value, c2, .. } => value.value_words() + c2.words(),
            RecBaMsg::DsForward { value, agg, .. } => value.value_words() + agg.words(),
            RecBaMsg::GcSend { value, sig, .. } => value.value_words() + sig.words(),
            RecBaMsg::CertShare { value, sig, .. } => value.value_words() + sig.words(),
        }
    }

    fn constituent_sigs(&self) -> u64 {
        match self {
            RecBaMsg::GaInput { sig, .. }
            | RecBaMsg::GcSend { sig, .. }
            | RecBaMsg::CertShare { sig, .. } => sig.constituent_sigs(),
            RecBaMsg::GaEcho { c1, .. } => c1.constituent_sigs(),
            RecBaMsg::GaVote { sig, c1, .. } => sig.constituent_sigs() + c1.constituent_sigs(),
            RecBaMsg::GaConflict { c1a, c1b, .. } => {
                c1a.constituent_sigs() + c1b.constituent_sigs()
            }
            RecBaMsg::GaCert2 { c2, .. } => c2.constituent_sigs(),
            RecBaMsg::DsForward { agg, .. } => agg.constituent_sigs(),
        }
    }

    fn component(&self) -> &'static str {
        "fallback"
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<V: Value> WireCodec for RecBaMsg<V> {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            RecBaMsg::GaInput { inst, value, sig } => {
                enc.put_u32(0);
                inst.encode(enc);
                value.encode_value(enc);
                sig.encode(enc);
            }
            RecBaMsg::GaEcho { inst, value, c1 } => {
                enc.put_u32(1);
                inst.encode(enc);
                value.encode_value(enc);
                c1.encode(enc);
            }
            RecBaMsg::GaVote { inst, value, sig, c1 } => {
                enc.put_u32(2);
                inst.encode(enc);
                value.encode_value(enc);
                sig.encode(enc);
                c1.encode(enc);
            }
            RecBaMsg::GaConflict { inst, v1, c1a, v2, c1b } => {
                enc.put_u32(3);
                inst.encode(enc);
                v1.encode_value(enc);
                c1a.encode(enc);
                v2.encode_value(enc);
                c1b.encode(enc);
            }
            RecBaMsg::GaCert2 { inst, value, c2 } => {
                enc.put_u32(4);
                inst.encode(enc);
                value.encode_value(enc);
                c2.encode(enc);
            }
            RecBaMsg::DsForward { inst, ds_sender, value, agg } => {
                enc.put_u32(5);
                inst.encode(enc);
                enc.put_id(*ds_sender);
                value.encode_value(enc);
                agg.encode(enc);
            }
            RecBaMsg::GcSend { inst, value, sig } => {
                enc.put_u32(6);
                inst.encode(enc);
                value.encode_value(enc);
                sig.encode(enc);
            }
            RecBaMsg::CertShare { inst, value, sig } => {
                enc.put_u32(7);
                inst.encode(enc);
                value.encode_value(enc);
                sig.encode(enc);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            0 => Ok(RecBaMsg::GaInput {
                inst: InstanceId::decode_wire(dec)?,
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
            }),
            1 => Ok(RecBaMsg::GaEcho {
                inst: InstanceId::decode_wire(dec)?,
                value: V::decode_value(dec)?,
                c1: ThresholdSignature::decode(dec)?,
            }),
            2 => Ok(RecBaMsg::GaVote {
                inst: InstanceId::decode_wire(dec)?,
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
                c1: ThresholdSignature::decode(dec)?,
            }),
            3 => Ok(RecBaMsg::GaConflict {
                inst: InstanceId::decode_wire(dec)?,
                v1: V::decode_value(dec)?,
                c1a: ThresholdSignature::decode(dec)?,
                v2: V::decode_value(dec)?,
                c1b: ThresholdSignature::decode(dec)?,
            }),
            4 => Ok(RecBaMsg::GaCert2 {
                inst: InstanceId::decode_wire(dec)?,
                value: V::decode_value(dec)?,
                c2: ThresholdSignature::decode(dec)?,
            }),
            5 => Ok(RecBaMsg::DsForward {
                inst: InstanceId::decode_wire(dec)?,
                ds_sender: dec.get_id()?,
                value: V::decode_value(dec)?,
                agg: AggregateSignature::decode(dec)?,
            }),
            6 => Ok(RecBaMsg::GcSend {
                inst: InstanceId::decode_wire(dec)?,
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
            }),
            7 => Ok(RecBaMsg::CertShare {
                inst: InstanceId::decode_wire(dec)?,
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
            }),
            _ => Err(DecodeError::Invalid { what: "RecBaMsg variant tag" }),
        }
    }
}

/// Wire message of the standalone Dolev–Strong Byzantine Broadcast
/// baseline.
#[derive(Clone, Debug)]
pub struct DsBbMsg<V> {
    /// The forwarded value.
    pub value: V,
    /// Aggregate signature chain over [`DsValSig`] (with the full-system
    /// instance).
    pub agg: AggregateSignature,
}

impl<V: Value> Message for DsBbMsg<V> {
    fn words(&self) -> u64 {
        self.value.value_words() + self.agg.words()
    }
    fn constituent_sigs(&self) -> u64 {
        self.agg.constituent_sigs()
    }
    fn component(&self) -> &'static str {
        "dolev-strong"
    }
    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<V: Value> WireCodec for DsBbMsg<V> {
    fn encode_wire(&self, enc: &mut Encoder) {
        self.value.encode_value(enc);
        self.agg.encode(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let value = V::decode_value(dec)?;
        let agg = AggregateSignature::decode(dec)?;
        Ok(DsBbMsg { value, agg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Scope;
    use meba_crypto::Signable;

    #[test]
    fn payload_domains_are_disjoint() {
        let inst = InstanceId::new(Scope::full(4), 0);
        let a = GaInputSig { session: 1, inst, value: &5u64 }.signing_bytes();
        let b = GaVoteSig { session: 1, inst, value: &5u64 }.signing_bytes();
        let c = RecDecideSig { session: 1, inst, value: &5u64 }.signing_bytes();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn ds_payload_binds_sender() {
        let inst = InstanceId::new(Scope::full(4), 0);
        let a =
            DsValSig { session: 1, inst, ds_sender: ProcessId(0), value: &5u64 }.signing_bytes();
        let b =
            DsValSig { session: 1, inst, ds_sender: ProcessId(1), value: &5u64 }.signing_bytes();
        assert_ne!(a, b);
    }

    #[test]
    fn instance_separates_payloads() {
        let i1 = InstanceId::new(Scope { lo: 0, hi: 4 }, 0);
        let i2 = InstanceId::new(Scope { lo: 4, hi: 8 }, 0);
        let a = GaInputSig { session: 1, inst: i1, value: &5u64 }.signing_bytes();
        let b = GaInputSig { session: 1, inst: i2, value: &5u64 }.signing_bytes();
        assert_ne!(a, b);
    }
}
