//! Signed gradecast: graded broadcast with a designated sender.
//!
//! Classic primitive (Feldman–Micali lineage): the sender broadcasts a
//! signed value; every participant outputs `(value, grade)` with
//! `grade ∈ {0, 1, 2}` such that, for scopes with an honest majority:
//!
//! * **Validity** — an honest sender's value is output with grade 2 by
//!   every honest participant;
//! * **Consistency** — if any honest participant outputs grade 2 on `v`,
//!   every honest participant outputs `v` with grade ≥ 1 (in particular
//!   no conflicting grade-2 outputs exist).
//!
//! # Construction
//!
//! One sender round followed by a full [`GaInstance`] among the
//! participants that received a validly sender-signed value (others
//! observe and can still reach grade 1 via `C2` certificates). This
//! inherits the GA's *structural* grade-2 argument — a conflicting `C2`
//! is impossible once any honest participant forms one — which is what
//! makes the final round immune to last-minute evidence injection, the
//! classic pitfall of blame-based gradecasts.
//!
//! Six steps total (1 sender round + [`GA_STEPS`]). `O(m²)` words.

use crate::ga::{GaInstance, GA_STEPS};
use crate::instance::InstanceId;
use crate::messages::{GaVoteSig, GcValSig, RecBaMsg};
use meba_core::Value;
use meba_crypto::{Pki, ProcessId, SecretKey, Signable};
use std::collections::BTreeSet;

/// Total steps a gradecast occupies.
pub const GRADECAST_STEPS: u64 = 1 + GA_STEPS;

/// One participant's gradecast state machine.
#[derive(Debug)]
pub struct Gradecast<V> {
    inst: InstanceId,
    session: u64,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    sender: ProcessId,
    /// `Some` at the designated sender.
    input: Option<V>,
    /// The first validly sender-signed value received.
    received: Option<V>,
    ga: Option<GaInstance<V>>,
    /// `C2`-certified values observed (for grade-1 fallback at
    /// participants the sender skipped).
    c2_seen: BTreeSet<V>,
    result: Option<(Option<V>, u8)>,
}

impl<V: Value> Gradecast<V> {
    /// Creates a participant; `input` is `Some` only at `sender`.
    pub fn new(
        inst: InstanceId,
        session: u64,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        sender: ProcessId,
        input: Option<V>,
    ) -> Self {
        Gradecast {
            inst,
            session,
            me,
            key,
            pki,
            sender,
            input,
            received: None,
            ga: None,
            c2_seen: BTreeSet::new(),
            result: None,
        }
    }

    /// The `(value, grade)` output, available after the final step.
    /// Grade 0 outputs carry no value.
    pub fn result(&self) -> Option<&(Option<V>, u8)> {
        self.result.as_ref()
    }

    fn sender_payload<'a>(&self, value: &'a V) -> GcValSig<'a, V> {
        GcValSig { session: self.session, inst: self.inst, sender: self.sender, value }
    }

    /// Executes local step `k`; outgoing messages are broadcast to the
    /// scope by the caller.
    pub fn on_step(
        &mut self,
        k: u64,
        inbox: &[(ProcessId, &RecBaMsg<V>)],
        out: &mut Vec<RecBaMsg<V>>,
    ) {
        // Track C2 certificates at any step (observers need them).
        for (_, msg) in inbox {
            if let RecBaMsg::GaCert2 { inst, value, c2 } = msg {
                if *inst == self.inst
                    && c2.threshold() == self.inst.scope.majority()
                    && self
                        .pki
                        .verify_threshold(
                            &GaVoteSig { session: self.session, inst: self.inst, value }
                                .signing_bytes(),
                            c2,
                        )
                        .is_ok()
                {
                    self.c2_seen.insert(value.clone());
                }
            }
        }
        if k == 0 {
            if self.me == self.sender {
                if let Some(v) = self.input.clone() {
                    let sig = self.key.sign(&self.sender_payload(&v).signing_bytes());
                    self.received = Some(v.clone());
                    out.push(RecBaMsg::GcSend { inst: self.inst, value: v, sig });
                }
            }
            return;
        }
        if k == 1 {
            // Adopt the first validly sender-signed value.
            if self.received.is_none() {
                for (_, msg) in inbox {
                    if let RecBaMsg::GcSend { inst, value, sig } = msg {
                        if *inst == self.inst
                            && sig.signer() == self.sender
                            && self
                                .pki
                                .verify(&self.sender_payload(value).signing_bytes(), sig)
                                .is_ok()
                        {
                            self.received = Some(value.clone());
                            break;
                        }
                    }
                }
            }
            if let Some(v) = self.received.clone() {
                self.ga = Some(GaInstance::new(
                    self.inst,
                    self.session,
                    self.me,
                    self.key.clone(),
                    self.pki.clone(),
                    v,
                ));
            }
        }
        // Steps 1..=GA_STEPS map to GA steps 0..GA_STEPS-1.
        if (1..=GA_STEPS).contains(&k) {
            if let Some(ga) = &mut self.ga {
                ga.on_step(k - 1, inbox, out);
            }
        }
        if k == GA_STEPS {
            self.result = Some(match &self.ga {
                Some(ga) => match ga.result() {
                    Some((v, 0)) => {
                        // The GA kept our input with no certificate; we
                        // only know the sender said v — grade 1 requires
                        // a certificate, so downgrade honestly.
                        if self.c2_seen.contains(v) {
                            (Some(v.clone()), 1)
                        } else {
                            (None, 0)
                        }
                    }
                    Some((v, g)) => (Some(v.clone()), *g),
                    None => (None, 0),
                },
                // Observer: a certificate read off the wire gives grade 1.
                None => match self.c2_seen.iter().next() {
                    Some(v) => (Some(v.clone()), 1),
                    None => (None, 0),
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Scope;
    use meba_crypto::trusted_setup;

    /// Drives gradecast participants in lockstep. `inputs[sender]` is the
    /// sender's value; `equivocate` optionally makes the (Byzantine)
    /// sender sign a second value and split the scope.
    fn run(
        n: usize,
        sender: u32,
        value: u64,
        silent: &[u32],
        equivocate: Option<u64>,
    ) -> Vec<Option<(Option<u64>, u8)>> {
        let (pki, keys) = trusted_setup(n, 55);
        let inst = InstanceId::new(Scope::full(n), 7);
        let mut nodes: Vec<Option<Gradecast<u64>>> = (0..n)
            .map(|i| {
                if silent.contains(&(i as u32)) {
                    None
                } else {
                    let input = (i as u32 == sender).then_some(value);
                    Some(Gradecast::new(
                        inst,
                        0,
                        ProcessId(i as u32),
                        keys[i].clone(),
                        pki.clone(),
                        ProcessId(sender),
                        input,
                    ))
                }
            })
            .collect();
        let mut pending: Vec<(ProcessId, RecBaMsg<u64>)> = Vec::new();
        for k in 0..GRADECAST_STEPS {
            let mut inbox: Vec<(ProcessId, &RecBaMsg<u64>)> =
                pending.iter().map(|(p, m)| (*p, m)).collect();
            // Byzantine equivocation: inject a second sender-signed value
            // to the upper half at step 1.
            let extra: Vec<(ProcessId, RecBaMsg<u64>)> = if k == 1 {
                match equivocate {
                    Some(w) => {
                        let payload =
                            GcValSig { session: 0, inst, sender: ProcessId(sender), value: &w };
                        let sig = keys[sender as usize].sign(&payload.signing_bytes());
                        vec![(ProcessId(sender), RecBaMsg::GcSend { inst, value: w, sig })]
                    }
                    None => vec![],
                }
            } else {
                vec![]
            };
            let extra_refs: Vec<(ProcessId, &RecBaMsg<u64>)> =
                extra.iter().map(|(p, m)| (*p, m)).collect();
            let mut next = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                if let Some(node) = node {
                    let mut view = inbox.clone();
                    // Deliver the equivocating copy only to the upper half.
                    if i >= n / 2 {
                        view.extend(extra_refs.iter().cloned());
                    }
                    let mut out = Vec::new();
                    node.on_step(k, &view, &mut out);
                    for m in out {
                        next.push((ProcessId(i as u32), m));
                    }
                }
            }
            inbox.clear();
            pending = next;
        }
        nodes.iter().map(|o| o.as_ref().and_then(|g| g.result().cloned())).collect()
    }

    #[test]
    fn honest_sender_all_grade_two() {
        let out = run(7, 2, 44, &[], None);
        for r in out {
            assert_eq!(r, Some((Some(44), 2)));
        }
    }

    #[test]
    fn honest_sender_with_crashes_still_grade_two() {
        let out = run(7, 0, 9, &[5, 6], None);
        for r in out.iter().take(5) {
            assert_eq!(*r, Some((Some(9), 2)));
        }
    }

    #[test]
    fn silent_sender_all_grade_zero() {
        let out = run(5, 1, 3, &[1], None);
        for (i, r) in out.iter().enumerate() {
            if i != 1 {
                assert_eq!(*r, Some((None, 0)), "p{i}");
            }
        }
    }

    #[test]
    fn equivocating_sender_consistency_holds() {
        // Byzantine sender signs 10 and 20, splitting the scope.
        let out = run(7, 0, 10, &[0], Some(20));
        let honest: Vec<(Option<u64>, u8)> = out.into_iter().flatten().collect();
        // Consistency: grade-2 pins everyone's value.
        if let Some((Some(v2), _)) = honest.iter().find(|(_, g)| *g == 2) {
            for (v, g) in &honest {
                assert!(*g >= 1, "grade-2 exists: {honest:?}");
                assert_eq!(v.as_ref(), Some(v2), "value split: {honest:?}");
            }
        }
        // Never two conflicting grade-2 outputs.
        let twos: Vec<u64> =
            honest.iter().filter(|(_, g)| *g == 2).filter_map(|(v, _)| *v).collect();
        assert!(twos.windows(2).all(|w| w[0] == w[1]), "{honest:?}");
    }
}
