//! Dolev–Strong authenticated broadcast and interactive consistency.
//!
//! [`DsCore`] is the classic Dolev–Strong forwarding engine with
//! signature-chain compression via aggregate signatures: a round-`k`
//! message carries one aggregate with at least `k` constituent signatures
//! (one word), so the whole broadcast costs `O(m²)` words regardless of
//! faults — every correct process forwards at most two values.
//!
//! It serves two roles:
//!
//! * [`DolevStrongBb`] — a standalone Byzantine Broadcast baseline over
//!   the full system, tolerating `t` faults with `t + 1` rounds. This is
//!   the non-adaptive comparator for experiment E1 (its cost does not
//!   shrink when `f < t`).
//! * [`IcInstance`] — interactive consistency over a (small) scope:
//!   `m` parallel Dolev–Strong instances, one per member, tolerating up to
//!   `m - 1` faults in `m` rounds, followed by a deterministic majority
//!   vote over the common vector. This is the recursion's base-case strong
//!   BA (honest-majority scopes get strong unanimity; all scopes get
//!   agreement + termination).

use crate::instance::{InstanceId, Scope};
use crate::messages::{DsBbMsg, DsValSig, RecBaMsg};
use meba_core::{Decision, SubProtocol, SystemConfig};
use meba_crypto::{AggregateSignature, Pki, ProcessId, SecretKey, Signable};
use meba_sim::Dest;
use std::collections::BTreeMap;

/// The Dolev–Strong forwarding engine for a single designated sender.
#[derive(Debug)]
pub struct DsCore<V> {
    inst: InstanceId,
    session: u64,
    ds_sender: ProcessId,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    scope: Scope,
    rounds: u64,
    accepted: Vec<V>,
    input: Option<V>,
    output: Option<Option<V>>,
}

impl<V: meba_core::Value> DsCore<V> {
    /// Creates the engine; `input` is `Some` only at the designated
    /// sender. `rounds` is `t_max + 1` where `t_max` is the tolerated
    /// fault count.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        inst: InstanceId,
        session: u64,
        ds_sender: ProcessId,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        rounds: u64,
        input: Option<V>,
    ) -> Self {
        DsCore {
            inst,
            session,
            ds_sender,
            me,
            key,
            pki,
            scope: inst.scope,
            rounds,
            accepted: Vec::new(),
            input,
            output: None,
        }
    }

    fn payload<'a>(&self, value: &'a V) -> DsValSig<'a, V> {
        DsValSig { session: self.session, inst: self.inst, ds_sender: self.ds_sender, value }
    }

    /// The extracted value: `Some(Some(v))` after the final round when the
    /// sender broadcast consistently, `Some(None)` for the default `⊥`.
    pub fn output(&self) -> Option<&Option<V>> {
        self.output.as_ref()
    }

    /// Executes local step `k`; `inbox` holds `(value, chain)` pairs
    /// addressed to this instance, `out` collects pairs to broadcast to
    /// the scope.
    pub fn on_step(
        &mut self,
        k: u64,
        inbox: &[(V, AggregateSignature)],
        out: &mut Vec<(V, AggregateSignature)>,
    ) {
        if k == 0 {
            if self.me == self.ds_sender {
                if let Some(v) = self.input.clone() {
                    let sig = self.key.sign(&self.payload(&v).signing_bytes());
                    let agg = self
                        .pki
                        .aggregate(&self.payload(&v).signing_bytes(), &[sig])
                        .expect("own share aggregates");
                    self.accepted.push(v.clone());
                    out.push((v, agg));
                }
            }
            return;
        }
        if k <= self.rounds {
            for (value, agg) in inbox {
                if self.accepted.len() >= 2 {
                    break;
                }
                let chain_ok = agg.len() as u64 >= k
                    && agg.contains(self.ds_sender)
                    && agg.signers().iter().all(|s| self.scope.contains(*s))
                    && self.pki.verify_aggregate(&self.payload(value).signing_bytes(), agg).is_ok();
                if !chain_ok || self.accepted.contains(value) {
                    continue;
                }
                self.accepted.push(value.clone());
                // Forward with our signature appended, unless the chain is
                // already maximal or we already signed it.
                if k < self.rounds && !agg.contains(self.me) && self.scope.contains(self.me) {
                    let sig = self.key.sign(&self.payload(value).signing_bytes());
                    let extended = self
                        .pki
                        .extend_aggregate(&self.payload(value).signing_bytes(), agg, &sig)
                        .expect("fresh signature extends");
                    out.push((value.clone(), extended));
                }
            }
        }
        if k == self.rounds && self.output.is_none() {
            self.output =
                Some(if self.accepted.len() == 1 { Some(self.accepted[0].clone()) } else { None });
        }
    }
}

/// Standalone Dolev–Strong Byzantine Broadcast over the full system:
/// `t + 1` rounds, `O(n²)` words, *non-adaptive* (the baseline of E1).
#[derive(Debug)]
pub struct DolevStrongBb<V> {
    core: DsCore<V>,
    rounds: u64,
    finished: bool,
}

impl<V: meba_core::Value> DolevStrongBb<V> {
    /// Creates a participant; `input` is `Some` only at the sender.
    pub fn new(
        cfg: &SystemConfig,
        sender: ProcessId,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        input: Option<V>,
    ) -> Self {
        let inst = InstanceId::new(Scope::full(cfg.n()), 0);
        let rounds = cfg.t() as u64 + 1;
        DolevStrongBb {
            core: DsCore::new(inst, cfg.session(), sender, me, key, pki, rounds, input),
            rounds,
            finished: false,
        }
    }

    /// Total steps the protocol needs.
    pub fn total_steps(cfg: &SystemConfig) -> u64 {
        cfg.t() as u64 + 2
    }
}

impl<V: meba_core::Value> SubProtocol for DolevStrongBb<V> {
    type Msg = DsBbMsg<V>;
    type Output = Decision<V>;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, DsBbMsg<V>)],
        out: &mut Vec<(Dest, DsBbMsg<V>)>,
    ) {
        if self.finished {
            return;
        }
        let pairs: Vec<(V, AggregateSignature)> =
            inbox.iter().map(|(_, m)| (m.value.clone(), m.agg.clone())).collect();
        let mut core_out = Vec::new();
        self.core.on_step(step, &pairs, &mut core_out);
        for (value, agg) in core_out {
            out.push((Dest::All, DsBbMsg { value, agg }));
        }
        if step >= self.rounds {
            self.finished = true;
        }
    }

    fn output(&self) -> Option<Decision<V>> {
        self.core.output().map(|o| match o {
            Some(v) => Decision::Value(v.clone()),
            None => Decision::Bot,
        })
    }

    fn done(&self) -> bool {
        self.finished
    }
}

/// Interactive consistency over a scope: `m` parallel Dolev–Strong
/// broadcasts plus a deterministic majority vote. The recursion's
/// base-case BA.
#[derive(Debug)]
pub struct IcInstance<V> {
    inst: InstanceId,
    input: V,
    cores: BTreeMap<ProcessId, DsCore<V>>,
    rounds: u64,
    decision: Option<V>,
}

/// Steps an interactive-consistency instance occupies for a scope of `m`
/// members: `m` Dolev–Strong rounds plus the vote step.
pub fn ic_steps(scope: &Scope) -> u64 {
    scope.len() as u64 + 1
}

impl<V: meba_core::Value> IcInstance<V> {
    /// Creates a participant with initial value `input`.
    pub fn new(
        inst: InstanceId,
        session: u64,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        input: V,
    ) -> Self {
        let scope = inst.scope;
        let rounds = scope.len() as u64;
        let cores = scope
            .members()
            .map(|s| {
                let core_input = if s == me { Some(input.clone()) } else { None };
                (
                    s,
                    DsCore::new(
                        InstanceId::new(scope, inst.seq),
                        session,
                        s,
                        me,
                        key.clone(),
                        pki.clone(),
                        rounds,
                        core_input,
                    ),
                )
            })
            .collect();
        IcInstance { inst, input, cores, rounds, decision: None }
    }

    /// The decision, available after the final step.
    pub fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }

    /// Executes local step `k`.
    pub fn on_step(
        &mut self,
        k: u64,
        inbox: &[(ProcessId, &RecBaMsg<V>)],
        out: &mut Vec<RecBaMsg<V>>,
    ) {
        if k <= self.rounds {
            // Demultiplex by designated sender.
            let mut by_sender: BTreeMap<ProcessId, Vec<(V, AggregateSignature)>> = BTreeMap::new();
            for (_, msg) in inbox {
                if let RecBaMsg::DsForward { inst, ds_sender, value, agg } = msg {
                    if *inst == self.inst {
                        by_sender.entry(*ds_sender).or_default().push((value.clone(), agg.clone()));
                    }
                }
            }
            let empty = Vec::new();
            for (sender, core) in self.cores.iter_mut() {
                let pairs = by_sender.get(sender).unwrap_or(&empty);
                let mut core_out = Vec::new();
                core.on_step(k, pairs, &mut core_out);
                for (value, agg) in core_out {
                    out.push(RecBaMsg::DsForward {
                        inst: self.inst,
                        ds_sender: *sender,
                        value,
                        agg,
                    });
                }
            }
        }
        if k == self.rounds + 1 - 1 {
            // Outputs are final after the last DS round (k == rounds).
            let mut counts: BTreeMap<V, usize> = BTreeMap::new();
            for core in self.cores.values() {
                if let Some(Some(v)) = core.output() {
                    *counts.entry(v.clone()).or_default() += 1;
                }
            }
            let winner = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                .map(|(v, _)| v.clone())
                .unwrap_or_else(|| self.input.clone());
            self.decision = Some(winner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::trusted_setup;

    fn run_ic(inputs: &[u64], silent: &[u32]) -> Vec<Option<u64>> {
        let n = inputs.len();
        let (pki, keys) = trusted_setup(n, 13);
        let inst = InstanceId::new(Scope::full(n), 0);
        let mut nodes: Vec<Option<IcInstance<u64>>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if silent.contains(&(i as u32)) {
                    None
                } else {
                    Some(IcInstance::new(
                        inst,
                        0,
                        ProcessId(i as u32),
                        k.clone(),
                        pki.clone(),
                        inputs[i],
                    ))
                }
            })
            .collect();
        let mut pending: Vec<(ProcessId, RecBaMsg<u64>)> = Vec::new();
        for k in 0..ic_steps(&Scope::full(n)) {
            let inbox: Vec<(ProcessId, &RecBaMsg<u64>)> =
                pending.iter().map(|(p, m)| (*p, m)).collect();
            let mut next = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                if let Some(node) = node {
                    let mut out = Vec::new();
                    node.on_step(k, &inbox, &mut out);
                    for m in out {
                        next.push((ProcessId(i as u32), m));
                    }
                }
            }
            pending = next;
        }
        nodes.iter().map(|n| n.as_ref().and_then(|n| n.decision().copied())).collect()
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        let out = run_ic(&[6, 6, 6, 6], &[]);
        assert!(out.iter().all(|d| *d == Some(6)));
    }

    #[test]
    fn majority_input_wins() {
        let out = run_ic(&[6, 6, 6, 1], &[]);
        assert!(out.iter().all(|d| *d == Some(6)));
    }

    #[test]
    fn agreement_under_crash() {
        let out = run_ic(&[3, 5, 5, 3], &[0]);
        let alive: Vec<u64> = out.iter().skip(1).map(|d| d.unwrap()).collect();
        assert!(alive.windows(2).all(|w| w[0] == w[1]), "agreement: {alive:?}");
        // Strong unanimity does not apply (inputs differ), but the value
        // must be someone's input.
        assert!([3u64, 5].contains(&alive[0]));
    }

    #[test]
    fn lone_survivor_keeps_input() {
        let out = run_ic(&[9, 1, 1], &[1, 2]);
        assert_eq!(out[0], Some(9));
    }

    fn run_ds_bb(n: usize, sender: u32, input: u64, silent: &[u32]) -> Vec<Option<Decision<u64>>> {
        let cfg = SystemConfig::new(n, 0).unwrap();
        let (pki, keys) = trusted_setup(n, 19);
        let mut nodes: Vec<Option<DolevStrongBb<u64>>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if silent.contains(&(i as u32)) {
                    None
                } else {
                    let inp = if i as u32 == sender { Some(input) } else { None };
                    Some(DolevStrongBb::new(
                        &cfg,
                        ProcessId(sender),
                        ProcessId(i as u32),
                        k.clone(),
                        pki.clone(),
                        inp,
                    ))
                }
            })
            .collect();
        let mut pending: Vec<(ProcessId, DsBbMsg<u64>)> = Vec::new();
        for k in 0..DolevStrongBb::<u64>::total_steps(&cfg) {
            let inbox = pending.clone();
            let mut next = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                if let Some(node) = node {
                    let mut out = Vec::new();
                    node.on_step(k, &inbox, &mut out);
                    for (_, m) in out {
                        next.push((ProcessId(i as u32), m));
                    }
                }
            }
            pending = next;
        }
        nodes.iter().map(|n| n.as_ref().and_then(|n| n.output())).collect()
    }

    #[test]
    fn ds_bb_delivers_sender_value() {
        let out = run_ds_bb(5, 1, 44, &[]);
        assert!(out.iter().all(|d| *d == Some(Decision::Value(44))));
    }

    #[test]
    fn ds_bb_silent_sender_bot() {
        let out = run_ds_bb(5, 0, 44, &[0]);
        assert!(out.iter().skip(1).all(|d| *d == Some(Decision::Bot)));
    }

    #[test]
    fn ds_bb_agreement_with_crashes() {
        let out = run_ds_bb(7, 2, 8, &[4, 5]);
        for (i, d) in out.iter().enumerate() {
            if ![4usize, 5].contains(&i) {
                assert_eq!(*d, Some(Decision::Value(8)));
            }
        }
    }
}

#[cfg(test)]
mod chain_hardening_tests {
    use super::*;
    use meba_crypto::{trusted_setup, Signable};

    fn core_at(
        n: usize,
        me: u32,
        sender: u32,
    ) -> (DsCore<u64>, meba_crypto::Pki, Vec<meba_crypto::SecretKey>) {
        let (pki, keys) = trusted_setup(n, 91);
        let inst = InstanceId::new(Scope::full(n), 0);
        let core = DsCore::new(
            inst,
            0,
            ProcessId(sender),
            ProcessId(me),
            keys[me as usize].clone(),
            pki.clone(),
            n as u64 - 1,
            None,
        );
        (core, pki, keys)
    }

    fn chain(
        pki: &meba_crypto::Pki,
        keys: &[meba_crypto::SecretKey],
        signers: &[usize],
        sender: u32,
        value: u64,
        n: usize,
    ) -> (u64, meba_crypto::AggregateSignature) {
        let inst = InstanceId::new(Scope::full(n), 0);
        let payload = DsValSig { session: 0, inst, ds_sender: ProcessId(sender), value: &value };
        let sigs: Vec<_> =
            signers.iter().map(|&i| keys[i].sign(&payload.signing_bytes())).collect();
        (value, pki.aggregate(&payload.signing_bytes(), &sigs).unwrap())
    }

    #[test]
    fn chain_without_sender_signature_rejected() {
        let (mut core, pki, keys) = core_at(5, 1, 0);
        // Chain signed by p2, p3 but not the designated sender p0.
        let msg = chain(&pki, &keys, &[2, 3], 0, 7, 5);
        let mut out = Vec::new();
        core.on_step(2, &[msg], &mut out);
        assert!(out.is_empty(), "must not forward a senderless chain");
        core.on_step(4, &[], &mut out);
        assert_eq!(core.output(), Some(&None), "nothing extracted");
    }

    #[test]
    fn short_chain_arriving_late_rejected() {
        let (mut core, pki, keys) = core_at(5, 1, 0);
        // A 1-signature chain arriving at step 3 (needs >= 3 signatures):
        // the classic "withheld until the last round" attack.
        let msg = chain(&pki, &keys, &[0], 0, 7, 5);
        let mut out = Vec::new();
        core.on_step(3, &[msg], &mut out);
        assert!(out.is_empty());
        core.on_step(4, &[], &mut out);
        assert_eq!(core.output(), Some(&None));
    }

    #[test]
    fn adequate_chain_accepted_and_extended() {
        let (mut core, pki, keys) = core_at(5, 1, 0);
        let msg = chain(&pki, &keys, &[0, 2], 0, 7, 5);
        let mut out = Vec::new();
        core.on_step(2, &[msg], &mut out);
        assert_eq!(out.len(), 1, "accepted value is forwarded");
        assert_eq!(out[0].1.len(), 3, "our signature was appended");
        assert!(out[0].1.contains(ProcessId(1)));
        core.on_step(3, &[], &mut out);
        core.on_step(4, &[], &mut out);
        assert_eq!(core.output(), Some(&Some(7)));
    }

    #[test]
    fn out_of_scope_signer_rejected() {
        // Scope is [0, 3) but a signer from outside (p4 of the global
        // setup) contributes: the whole chain must be discarded.
        let n = 5;
        let (pki, keys) = trusted_setup(n, 91);
        let inst = InstanceId::new(Scope { lo: 0, hi: 3 }, 0);
        let mut core = DsCore::<u64>::new(
            inst,
            0,
            ProcessId(0),
            ProcessId(1),
            keys[1].clone(),
            pki.clone(),
            2,
            None,
        );
        let payload = DsValSig { session: 0, inst, ds_sender: ProcessId(0), value: &7u64 };
        let sigs =
            vec![keys[0].sign(&payload.signing_bytes()), keys[4].sign(&payload.signing_bytes())];
        let agg = pki.aggregate(&payload.signing_bytes(), &sigs).unwrap();
        let mut out = Vec::new();
        core.on_step(2, &[(7, agg)], &mut out);
        assert!(out.is_empty());
        assert_eq!(core.output(), Some(&None));
    }

    #[test]
    fn third_value_is_ignored() {
        // Dolev–Strong tracks at most two values; a third accepted value
        // would change nothing (still ⊥) and must not be forwarded.
        let (mut core, pki, keys) = core_at(5, 1, 0);
        let m1 = chain(&pki, &keys, &[0], 0, 1, 5);
        let m2 = chain(&pki, &keys, &[0], 0, 2, 5);
        let m3 = chain(&pki, &keys, &[0], 0, 3, 5);
        let mut out = Vec::new();
        core.on_step(1, &[m1, m2, m3], &mut out);
        assert_eq!(out.len(), 2, "only the first two values are forwarded");
        core.on_step(2, &[], &mut out);
        core.on_step(3, &[], &mut out);
        core.on_step(4, &[], &mut out);
        assert_eq!(core.output(), Some(&None), "two conflicting values yield ⊥");
    }
}
