//! Graded agreement over a participant scope (5 rounds, `O(m²)` words).
//!
//! The building block of the recursive fallback BA, in the role Momose–Ren
//! give their graded agreement. Participants start with a value and end
//! with `(value, grade)`, `grade ∈ {0, 1, 2}`:
//!
//! * **Validity**: if the scope has an honest majority and all its honest
//!   members input `v`, every honest member outputs `(v, 2)`.
//! * **Consistency**: if the scope has an honest majority and some honest
//!   member outputs grade 2 on `v`, every honest member outputs grade ≥ 1
//!   with value `v`.
//!
//! # Protocol (round per step; `maj = ⌊m/2⌋ + 1`)
//!
//! 1. Broadcast the signed input.
//! 2. For any value with `maj` distinct input signatures, batch a
//!    first-level certificate `C1(v)` and echo it.
//! 3. If exactly one certified value was seen, broadcast a signed vote
//!    carrying its `C1`; if two were seen, broadcast the conflicting pair.
//! 4. Batch `maj` votes into `C2(v)` and broadcast it. Tentatively grade 2
//!    if a unique `C2` formed and no conflicting `C1`s are known.
//! 5. Adopt received `C2`s for grade 1.
//!
//! # Why grade 2 is safe to finalize in round 4
//!
//! Suppose honest `i` forms `C2(v)` with no conflict known by round 4.
//! Any `C2(w ≠ v)` needs `maj` vote signatures, hence (honest majority) at
//! least one honest vote for `w`; that voter broadcast its vote *with
//! `C1(w)` attached* in round 3, so `i` would know both `C1(v)` (from the
//! votes it batched) and `C1(w)` by round 4 — contradiction. So no
//! conflicting `C2` can ever exist, and `i`'s own `C2(v)` broadcast makes
//! every honest member reach grade ≥ 1 with `v` in round 5. A conflict
//! surfacing only *after* round 4 therefore cannot invalidate the grade-2
//! output — the argument is structural, not evidence-based, which is what
//! makes the final round injection-proof.

use crate::instance::{InstanceId, Scope};
use crate::messages::{GaInputSig, GaVoteSig, RecBaMsg};
use meba_core::Value;
use meba_crypto::{Pki, ProcessId, SecretKey, Signable, Signature, ThresholdSignature};
use std::collections::{BTreeMap, BTreeSet};

/// Number of steps a graded agreement occupies.
pub const GA_STEPS: u64 = 5;

/// One participant's graded-agreement state machine.
#[derive(Debug)]
pub struct GaInstance<V> {
    inst: InstanceId,
    session: u64,
    key: SecretKey,
    pki: Pki,
    scope: Scope,
    thr: usize,
    input: V,
    input_sigs: BTreeMap<V, BTreeMap<ProcessId, Signature>>,
    c1_seen: BTreeMap<V, ThresholdSignature>,
    votes: BTreeMap<V, BTreeMap<ProcessId, Signature>>,
    conflicted: bool,
    tentative2: Option<V>,
    c2_seen: BTreeSet<V>,
    result: Option<(V, u8)>,
}

impl<V: Value> GaInstance<V> {
    /// Creates a participant with the given input.
    pub fn new(
        inst: InstanceId,
        session: u64,
        _me: ProcessId,
        key: SecretKey,
        pki: Pki,
        input: V,
    ) -> Self {
        let scope = inst.scope;
        GaInstance {
            inst,
            session,
            key,
            pki,
            scope,
            thr: scope.majority(),
            input,
            input_sigs: BTreeMap::new(),
            c1_seen: BTreeMap::new(),
            votes: BTreeMap::new(),
            conflicted: false,
            tentative2: None,
            c2_seen: BTreeSet::new(),
            result: None,
        }
    }

    /// The `(value, grade)` output, available after the final step.
    pub fn result(&self) -> Option<&(V, u8)> {
        self.result.as_ref()
    }

    fn input_payload<'a>(&self, value: &'a V) -> GaInputSig<'a, V> {
        GaInputSig { session: self.session, inst: self.inst, value }
    }

    fn vote_payload<'a>(&self, value: &'a V) -> GaVoteSig<'a, V> {
        GaVoteSig { session: self.session, inst: self.inst, value }
    }

    fn c1_valid(&self, value: &V, c1: &ThresholdSignature) -> bool {
        c1.threshold() == self.thr
            && self.pki.verify_threshold(&self.input_payload(value).signing_bytes(), c1).is_ok()
    }

    fn note_c1(&mut self, value: &V, c1: &ThresholdSignature) {
        if self.c1_valid(value, c1) {
            self.c1_seen.entry(value.clone()).or_insert_with(|| c1.clone());
            if self.c1_seen.len() >= 2 {
                self.conflicted = true;
            }
        }
    }

    /// Executes local step `k` (0-based); outgoing messages are broadcast
    /// to the scope by the caller.
    pub fn on_step(
        &mut self,
        k: u64,
        inbox: &[(ProcessId, &RecBaMsg<V>)],
        out: &mut Vec<RecBaMsg<V>>,
    ) {
        match k {
            0 => {
                let sig = self.key.sign(&self.input_payload(&self.input).signing_bytes());
                out.push(RecBaMsg::GaInput { inst: self.inst, value: self.input.clone(), sig });
            }
            1 => {
                for (_, msg) in inbox {
                    if let RecBaMsg::GaInput { inst, value, sig } = msg {
                        if *inst == self.inst
                            && self.scope.contains(sig.signer())
                            && self
                                .pki
                                .verify(&self.input_payload(value).signing_bytes(), sig)
                                .is_ok()
                        {
                            self.input_sigs
                                .entry(value.clone())
                                .or_default()
                                .insert(sig.signer(), sig.clone());
                        }
                    }
                }
                // Echo a certificate for every sufficiently-signed value
                // (at most 3 can qualify; the bound keeps the word cost
                // constant per process).
                let certifiable: Vec<(V, Vec<Signature>)> = self
                    .input_sigs
                    .iter()
                    .filter(|(_, sigs)| sigs.len() >= self.thr)
                    .map(|(v, sigs)| (v.clone(), sigs.values().cloned().collect()))
                    .collect();
                for (value, shares) in certifiable.into_iter().take(3) {
                    let c1 = self
                        .pki
                        .combine(self.thr, &self.input_payload(&value).signing_bytes(), &shares)
                        .expect("verified shares combine");
                    self.note_c1(&value, &c1);
                    out.push(RecBaMsg::GaEcho { inst: self.inst, value, c1 });
                }
            }
            2 => {
                for (_, msg) in inbox {
                    if let RecBaMsg::GaEcho { inst, value, c1 } = msg {
                        if *inst == self.inst {
                            self.note_c1(value, c1);
                        }
                    }
                }
                if self.c1_seen.len() == 1 {
                    let (value, c1) = self
                        .c1_seen
                        .iter()
                        .next()
                        .map(|(v, c)| (v.clone(), c.clone()))
                        .expect("len checked");
                    let sig = self.key.sign(&self.vote_payload(&value).signing_bytes());
                    out.push(RecBaMsg::GaVote { inst: self.inst, value, sig, c1 });
                } else if self.conflicted {
                    let mut it = self.c1_seen.iter();
                    let (v1, c1a) = it.next().expect("conflicted implies two");
                    let (v2, c1b) = it.next().expect("conflicted implies two");
                    out.push(RecBaMsg::GaConflict {
                        inst: self.inst,
                        v1: v1.clone(),
                        c1a: c1a.clone(),
                        v2: v2.clone(),
                        c1b: c1b.clone(),
                    });
                }
            }
            3 => {
                let msgs: Vec<RecBaMsg<V>> = inbox.iter().map(|(_, m)| (*m).clone()).collect();
                for msg in &msgs {
                    match msg {
                        RecBaMsg::GaVote { inst, value, sig, c1 } if *inst == self.inst => {
                            self.note_c1(value, c1);
                            if self.scope.contains(sig.signer())
                                && self
                                    .pki
                                    .verify(&self.vote_payload(value).signing_bytes(), sig)
                                    .is_ok()
                            {
                                self.votes
                                    .entry(value.clone())
                                    .or_default()
                                    .insert(sig.signer(), sig.clone());
                            }
                        }
                        RecBaMsg::GaConflict { inst, v1, c1a, v2, c1b }
                            if *inst == self.inst
                                && v1 != v2
                                && self.c1_valid(v1, c1a)
                                && self.c1_valid(v2, c1b) =>
                        {
                            self.conflicted = true;
                        }
                        _ => {}
                    }
                }
                let mut formed: Vec<V> = Vec::new();
                let combinable: Vec<(V, Vec<Signature>)> = self
                    .votes
                    .iter()
                    .filter(|(_, sigs)| sigs.len() >= self.thr)
                    .map(|(v, sigs)| (v.clone(), sigs.values().cloned().collect()))
                    .collect();
                for (value, shares) in combinable.into_iter().take(2) {
                    let c2 = self
                        .pki
                        .combine(self.thr, &self.vote_payload(&value).signing_bytes(), &shares)
                        .expect("verified shares combine");
                    self.c2_seen.insert(value.clone());
                    out.push(RecBaMsg::GaCert2 { inst: self.inst, value: value.clone(), c2 });
                    formed.push(value);
                }
                if formed.len() == 1 && !self.conflicted {
                    self.tentative2 = Some(formed.remove(0));
                }
            }
            4 => {
                for (_, msg) in inbox {
                    if let RecBaMsg::GaCert2 { inst, value, c2 } = msg {
                        if *inst == self.inst
                            && c2.threshold() == self.thr
                            && self
                                .pki
                                .verify_threshold(&self.vote_payload(value).signing_bytes(), c2)
                                .is_ok()
                        {
                            self.c2_seen.insert(value.clone());
                        }
                    }
                }
                self.result = Some(if let Some(v) = self.tentative2.take() {
                    (v, 2)
                } else if let Some(v) = self.c2_seen.iter().next() {
                    (v.clone(), 1)
                } else {
                    (self.input.clone(), 0)
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::trusted_setup;

    /// Drives a set of GA instances in lockstep; `silent` members produce
    /// no messages (crash faults).
    fn run_ga(inputs: &[u64], silent: &[u32]) -> Vec<Option<(u64, u8)>> {
        let n = inputs.len();
        let (pki, keys) = trusted_setup(n, 77);
        let inst = InstanceId::new(Scope::full(n), 0);
        let mut nodes: Vec<Option<GaInstance<u64>>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if silent.contains(&(i as u32)) {
                    None
                } else {
                    Some(GaInstance::new(
                        inst,
                        0,
                        ProcessId(i as u32),
                        k.clone(),
                        pki.clone(),
                        inputs[i],
                    ))
                }
            })
            .collect();
        let mut pending: Vec<(ProcessId, RecBaMsg<u64>)> = Vec::new();
        for k in 0..GA_STEPS {
            let inbox: Vec<(ProcessId, &RecBaMsg<u64>)> =
                pending.iter().map(|(p, m)| (*p, m)).collect();
            let mut next: Vec<(ProcessId, RecBaMsg<u64>)> = Vec::new();
            for (i, node) in nodes.iter_mut().enumerate() {
                if let Some(node) = node {
                    let mut out = Vec::new();
                    node.on_step(k, &inbox, &mut out);
                    for m in out {
                        next.push((ProcessId(i as u32), m));
                    }
                }
            }
            pending = next;
        }
        nodes.iter().map(|n| n.as_ref().and_then(|n| n.result().cloned())).collect()
    }

    #[test]
    fn unanimous_inputs_grade_two() {
        let out = run_ga(&[9, 9, 9, 9, 9], &[]);
        for r in out {
            assert_eq!(r, Some((9, 2)));
        }
    }

    #[test]
    fn unanimous_with_minority_crashes_still_grade_two() {
        let out = run_ga(&[4, 4, 4, 4, 4, 4, 4], &[5, 6]);
        for r in out.iter().take(5) {
            assert_eq!(*r, Some((4, 2)));
        }
    }

    #[test]
    fn split_inputs_consistent() {
        // 3 vs 2: the majority value can reach a certificate.
        let out = run_ga(&[1, 1, 1, 2, 2], &[]);
        let grades: Vec<_> = out.iter().map(|r| r.unwrap()).collect();
        // Consistency: if anyone graded 2 on v, everyone must hold v with
        // grade >= 1.
        if let Some((v2, _)) = grades.iter().find(|(_, g)| *g == 2) {
            for (v, g) in &grades {
                assert!(*g >= 1, "grade-2 exists, all must be >= 1");
                assert_eq!(v, v2);
            }
        }
    }

    #[test]
    fn even_split_cannot_certify() {
        // 2 vs 2 inputs in a 4-member scope: majority threshold 3 never
        // reached, all grade 0 keeping their inputs.
        let out = run_ga(&[1, 1, 2, 2], &[]);
        assert_eq!(out[0], Some((1, 0)));
        assert_eq!(out[3], Some((2, 0)));
    }

    #[test]
    fn half_crashes_degrade_but_do_not_mislead() {
        // 3 of 5 crashed: threshold 3 unreachable by the 2 survivors.
        let out = run_ga(&[7, 7, 7, 7, 7], &[2, 3, 4]);
        assert_eq!(out[0], Some((7, 0)));
        assert_eq!(out[1], Some((7, 0)));
    }
}
