//! Property tests for the fallback substrate: graded-agreement invariants
//! and recursive-BA agreement/unanimity under random crash patterns.

use meba_core::{LockstepAdapter, SubProtocol, SystemConfig};
use meba_crypto::{trusted_setup, ProcessId};
use meba_fallback::{GaInstance, InstanceId, RecBaMsg, RecursiveBa, Scope, GA_STEPS};
use meba_sim::{Actor, AnyActor, IdleActor, RoundCtx, SimBuilder};
use proptest::prelude::*;

/// Wraps a GaInstance as a lockstep actor.
struct GaActor {
    me: ProcessId,
    ga: GaInstance<u64>,
}

impl Actor for GaActor {
    type Msg = RecBaMsg<u64>;
    fn id(&self) -> ProcessId {
        self.me
    }
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let inbox: Vec<(ProcessId, &RecBaMsg<u64>)> =
            ctx.inbox().iter().map(|e| (e.from, &e.msg)).collect();
        let mut out = Vec::new();
        self.ga.on_step(ctx.round().as_u64(), &inbox, &mut out);
        for m in out {
            ctx.broadcast(m);
        }
    }
    fn done(&self) -> bool {
        self.ga.result().is_some()
    }
}

fn run_ga(n: usize, inputs: &[u64], crashed: &[usize]) -> Vec<Option<(u64, u8)>> {
    let (pki, keys) = trusted_setup(n, 42);
    let inst = InstanceId::new(Scope::full(n), 0);
    let mut actors: Vec<Box<dyn AnyActor<Msg = RecBaMsg<u64>>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if crashed.contains(&i) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let ga = GaInstance::new(inst, 0, id, key, pki.clone(), inputs[i]);
            actors.push(Box::new(GaActor { me: id, ga }));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in crashed {
        b = b.corrupt(ProcessId(c as u32));
    }
    let mut sim = b.build();
    sim.run_rounds(GA_STEPS + 1);
    (0..n)
        .map(|i| {
            if crashed.contains(&i) {
                None
            } else {
                let a: &GaActor = sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
                a.ga.result().copied()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn ga_invariants_random_crashes(
        inputs in proptest::collection::vec(0u64..4, 7),
        crash_mask in proptest::collection::vec(any::<bool>(), 7),
    ) {
        let crashed: Vec<usize> = crash_mask
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i)
            .take(3) // at most t = 3 for n = 7
            .collect();
        let out = run_ga(7, &inputs, &crashed);
        let honest: Vec<(u64, u8)> = out.iter().flatten().copied().collect();
        // GA consistency: a grade-2 output pins everyone's value at >= 1.
        if let Some((v2, _)) = honest.iter().find(|(_, g)| *g == 2) {
            for (v, g) in &honest {
                prop_assert!(*g >= 1, "grade-2 exists: {honest:?}");
                prop_assert_eq!(v, v2, "value consistency: {:?}", honest);
            }
        }
        // GA validity: unanimous honest inputs + honest majority intact.
        let honest_inputs: Vec<u64> = (0..7)
            .filter(|i| !crashed.contains(i))
            .map(|i| inputs[i])
            .collect();
        let unanimous = honest_inputs.windows(2).all(|w| w[0] == w[1]);
        if unanimous && honest_inputs.len() >= 4 {
            for (v, g) in &honest {
                prop_assert_eq!(*g, 2, "validity: {:?}", honest);
                prop_assert_eq!(*v, honest_inputs[0]);
            }
        }
    }

    #[test]
    fn recursive_ba_agreement_random_crashes(
        inputs in proptest::collection::vec(0u64..4, 9),
        crash_mask in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let crashed: Vec<usize> = crash_mask
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| i)
            .take(4) // t = 4 for n = 9
            .collect();
        let cfg = SystemConfig::new(9, 0).unwrap();
        let (pki, keys) = trusted_setup(9, 11);
        let mut actors: Vec<Box<dyn AnyActor<Msg = RecBaMsg<u64>>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&i) {
                actors.push(Box::new(IdleActor::new(id)));
            } else {
                let rb = RecursiveBa::new(cfg, id, key, pki.clone(), inputs[i]);
                actors.push(Box::new(LockstepAdapter::new(id, rb)));
            }
        }
        let mut b = SimBuilder::new(actors);
        for &c in &crashed {
            b = b.corrupt(ProcessId(c as u32));
        }
        let mut sim = b.build();
        sim.run_until_done(1_000).unwrap();
        let outs: Vec<u64> = (0..9)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let a: &LockstepAdapter<RecursiveBa<u64>> =
                    sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect();
        prop_assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement: {outs:?}");
        // Strong unanimity.
        let honest_inputs: Vec<u64> =
            (0..9).filter(|i| !crashed.contains(i)).map(|i| inputs[i]).collect();
        if honest_inputs.windows(2).all(|w| w[0] == w[1]) {
            prop_assert_eq!(outs[0], honest_inputs[0], "strong unanimity");
        }
    }
}
