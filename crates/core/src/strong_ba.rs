//! Binary strong BA with linear words in the failure-free case
//! (Algorithm 5, §7).
//!
//! A single leader collects all signed inputs. Because the domain is
//! binary and `n = 2t + 1`, some value is proposed by `t + 1` processes
//! (pigeonhole), so the leader can batch a `(t+1, n)` propose certificate.
//! It then collects signed `decide` shares on the certified value; an
//! `(n, n)` decide certificate lets every process decide. Any correct
//! process that does not decide broadcasts a `fallback` message; everyone
//! who hears one echoes it (with its own decision and proof attached) and
//! runs `A_fallback` with `δ' = 2δ` after a `2δ` safety window, exactly as
//! in the weak BA (Lemmas 17–18, 25–29).
//!
//! Failure-free complexity: 4 leader rounds, `O(n)` words. Otherwise the
//! fallback dominates with `O(n²)`.

use crate::config::SystemConfig;
use crate::signing::{sign_payload, verify_payload, StrongDecideSig, StrongInputSig};
use crate::subprotocol::{FallbackFactory, SkewAdapter, SkewEnvelope, SubProtocol};
use meba_crypto::{
    DecodeError, Decoder, Encoder, Pki, ProcessId, SecretKey, Signable, Signature,
    ThresholdSignature, WireCodec, WordCost,
};
use meba_sim::{Dest, Message};
use std::collections::BTreeMap;

/// Message type of the fallback used by [`StrongBa`] instances.
pub type StrongFallbackMsgOf<F> = <<F as FallbackFactory<bool>>::Protocol as SubProtocol>::Msg;

/// Wire messages of binary strong BA.
#[derive(Clone, Debug)]
pub enum StrongBaMsg<FM> {
    /// `⟨v_i⟩_p` to the leader (line 2).
    Input {
        /// The binary input.
        value: bool,
        /// Signature over [`StrongInputSig`].
        sig: Signature,
    },
    /// `⟨propose, v, QC⟩_leader` broadcast (line 6).
    Propose {
        /// The certified value.
        value: bool,
        /// `(t+1, n)` certificate over [`StrongInputSig`].
        qc: ThresholdSignature,
    },
    /// `⟨decide, v⟩_p` to the leader (line 8).
    DecideShare {
        /// The value.
        value: bool,
        /// Signature over [`StrongDecideSig`].
        sig: Signature,
    },
    /// `⟨decide, v, QC⟩_leader` broadcast (line 12).
    DecideCert {
        /// The decided value.
        value: bool,
        /// `(n, n)` certificate over [`StrongDecideSig`].
        qc: ThresholdSignature,
    },
    /// `⟨fallback, v?, proof?⟩` broadcast (lines 17 / 26).
    Fallback {
        /// The sender's decision and its `(n, n)` proof, if any.
        decision: Option<(bool, ThresholdSignature)>,
    },
    /// Inner `A_fallback` traffic.
    Inner(SkewEnvelope<FM>),
}

impl<FM: Message + WireCodec> Message for StrongBaMsg<FM> {
    fn words(&self) -> u64 {
        match self {
            StrongBaMsg::Input { sig, .. } | StrongBaMsg::DecideShare { sig, .. } => {
                1 + sig.words()
            }
            StrongBaMsg::Propose { qc, .. } | StrongBaMsg::DecideCert { qc, .. } => 1 + qc.words(),
            StrongBaMsg::Fallback { decision } => {
                1 + decision.as_ref().map_or(0, |(_, qc)| qc.words())
            }
            StrongBaMsg::Inner(env) => env.msg.words(),
        }
    }

    fn constituent_sigs(&self) -> u64 {
        match self {
            StrongBaMsg::Input { sig, .. } | StrongBaMsg::DecideShare { sig, .. } => {
                sig.constituent_sigs()
            }
            StrongBaMsg::Propose { qc, .. } | StrongBaMsg::DecideCert { qc, .. } => {
                qc.constituent_sigs()
            }
            StrongBaMsg::Fallback { decision } => {
                decision.as_ref().map_or(0, |(_, qc)| qc.constituent_sigs())
            }
            StrongBaMsg::Inner(env) => env.msg.constituent_sigs(),
        }
    }

    fn component(&self) -> &'static str {
        match self {
            StrongBaMsg::Inner(env) => env.msg.component(),
            StrongBaMsg::Fallback { .. } => "strong-ba/fallback-coord",
            _ => "strong-ba/fast-path",
        }
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<FM: WireCodec> WireCodec for StrongBaMsg<FM> {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            StrongBaMsg::Input { value, sig } => {
                enc.put_u32(0);
                enc.put_bool(*value);
                sig.encode(enc);
            }
            StrongBaMsg::Propose { value, qc } => {
                enc.put_u32(1);
                enc.put_bool(*value);
                qc.encode(enc);
            }
            StrongBaMsg::DecideShare { value, sig } => {
                enc.put_u32(2);
                enc.put_bool(*value);
                sig.encode(enc);
            }
            StrongBaMsg::DecideCert { value, qc } => {
                enc.put_u32(3);
                enc.put_bool(*value);
                qc.encode(enc);
            }
            StrongBaMsg::Fallback { decision } => {
                enc.put_u32(4);
                enc.put_option(decision, |e, (v, qc)| {
                    e.put_bool(*v);
                    qc.encode(e);
                });
            }
            StrongBaMsg::Inner(env) => {
                enc.put_u32(5);
                env.encode_wire(enc);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            0 => Ok(StrongBaMsg::Input { value: dec.get_bool()?, sig: Signature::decode(dec)? }),
            1 => Ok(StrongBaMsg::Propose {
                value: dec.get_bool()?,
                qc: ThresholdSignature::decode(dec)?,
            }),
            2 => Ok(StrongBaMsg::DecideShare {
                value: dec.get_bool()?,
                sig: Signature::decode(dec)?,
            }),
            3 => Ok(StrongBaMsg::DecideCert {
                value: dec.get_bool()?,
                qc: ThresholdSignature::decode(dec)?,
            }),
            4 => Ok(StrongBaMsg::Fallback {
                decision: dec
                    .get_option(|d| Ok((d.get_bool()?, ThresholdSignature::decode(d)?)))?,
            }),
            5 => Ok(StrongBaMsg::Inner(SkewEnvelope::decode_wire(dec)?)),
            _ => Err(DecodeError::Invalid { what: "StrongBaMsg variant tag" }),
        }
    }
}

/// The binary strong BA state machine (one per process).
pub struct StrongBa<F>
where
    F: FallbackFactory<bool>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    factory: F,
    input: bool,

    decision: Option<bool>,
    proof: Option<ThresholdSignature>,
    bu_decision: bool,
    bu_proof: Option<ThresholdSignature>,
    sent_decide_share: bool,
    fallback_start: Option<u64>,
    fallback: Option<SkewAdapter<F::Protocol>>,
    pending_fb: Vec<(ProcessId, SkewEnvelope<StrongFallbackMsgOf<F>>)>,
    fallback_ran: bool,
    decided_at: Option<u64>,
    finished: bool,
}

impl<F> StrongBa<F>
where
    F: FallbackFactory<bool>,
{
    /// Creates a strong BA instance with binary input `input`.
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        input: bool,
    ) -> Self {
        StrongBa {
            cfg,
            me,
            key,
            pki,
            factory,
            input,
            decision: None,
            proof: None,
            bu_decision: input,
            bu_proof: None,
            sent_decide_share: false,
            fallback_start: None,
            fallback: None,
            pending_fb: Vec::new(),
            fallback_ran: false,
            decided_at: None,
            finished: false,
        }
    }

    /// The single leader (`p_1` in the paper; `p0` here).
    pub fn leader(&self) -> ProcessId {
        ProcessId(0)
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// Whether this process executed `A_fallback`.
    pub fn used_fallback(&self) -> bool {
        self.fallback_ran
    }

    /// Step at which the decision was reached.
    pub fn decided_at(&self) -> Option<u64> {
        self.decided_at
    }

    /// Last step at which fallback coordination messages are accepted.
    fn fallback_deadline(&self) -> u64 {
        10
    }

    fn decide_cert_valid(&self, value: bool, qc: &ThresholdSignature) -> bool {
        qc.threshold() == self.cfg.n()
            && self
                .pki
                .verify_threshold(
                    &StrongDecideSig { session: self.cfg.session(), value }.signing_bytes(),
                    qc,
                )
                .is_ok()
    }

    fn handle_fallback_msg(
        &mut self,
        step: u64,
        decision: &Option<(bool, ThresholdSignature)>,
        out: &mut Vec<(Dest, StrongBaMsg<StrongFallbackMsgOf<F>>)>,
    ) {
        if self.fallback.is_some() || step > self.fallback_deadline() {
            return;
        }
        // Safety-window adoption (lines 21–24).
        if let Some((v, qc)) = decision {
            if self.decision.is_none() && self.decide_cert_valid(*v, qc) {
                self.bu_decision = *v;
                self.bu_proof = Some(qc.clone());
            }
        }
        // First receipt: echo and schedule (lines 25–27).
        if self.fallback_start.is_none() {
            let own = match (self.decision, &self.proof) {
                (Some(v), Some(p)) => Some((v, p.clone())),
                _ => self.bu_proof.clone().map(|p| (self.bu_decision, p)),
            };
            out.push((Dest::All, StrongBaMsg::Fallback { decision: own }));
            self.fallback_start = Some(step + 2);
        }
    }

    fn start_fallback_if_due(&mut self, step: u64) {
        if self.fallback.is_some() {
            return;
        }
        let Some(start) = self.fallback_start else { return };
        if step != start {
            return;
        }
        if let Some(v) = self.decision {
            self.bu_decision = v; // line 19
        }
        let inner = self.factory.create(self.me, self.bu_decision);
        let mut adapter = SkewAdapter::bounded(inner, start, self.factory.max_steps());
        for (from, env) in self.pending_fb.drain(..) {
            adapter.deliver(from, env);
        }
        self.fallback = Some(adapter);
        self.fallback_ran = true;
    }
}

impl<F> SubProtocol for StrongBa<F>
where
    F: FallbackFactory<bool>,
{
    type Msg = StrongBaMsg<StrongFallbackMsgOf<F>>;
    type Output = bool;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    ) {
        if self.finished {
            return;
        }
        let leader = self.leader();

        // --- Global handlers.
        // Decide certificates are accepted only at their scheduled
        // arrival (round 5, line 13). Accepting one later would let the
        // adversary create a lone decider after fallback coordination has
        // begun, splitting it from its peers.
        for (from, msg) in inbox {
            if let StrongBaMsg::DecideCert { value, qc } = msg {
                if step == 4
                    && *from == leader
                    && self.decision.is_none()
                    && self.decide_cert_valid(*value, qc)
                {
                    self.decision = Some(*value);
                    self.proof = Some(qc.clone());
                }
            }
        }
        let fb_msgs: Vec<Option<(bool, ThresholdSignature)>> = inbox
            .iter()
            .filter_map(|(_, m)| match m {
                StrongBaMsg::Fallback { decision } => Some(decision.clone()),
                _ => None,
            })
            .collect();
        for d in fb_msgs {
            self.handle_fallback_msg(step, &d, out);
        }
        for (from, msg) in inbox {
            if let StrongBaMsg::Inner(env) = msg {
                match &mut self.fallback {
                    Some(ad) => ad.deliver(*from, env.clone()),
                    None if self.fallback_start.is_some() => {
                        self.pending_fb.push((*from, env.clone()));
                    }
                    None => {}
                }
            }
        }

        // --- Scheduled actions.
        match step {
            // Round 1: send the signed input to the leader (line 2).
            0 => {
                let sig = sign_payload(
                    &self.key,
                    &StrongInputSig { session: self.cfg.session(), value: self.input },
                );
                out.push((Dest::To(leader), StrongBaMsg::Input { value: self.input, sig }));
            }
            // Round 2 (leader): batch t+1 matching inputs (lines 3–6).
            1 if self.me == leader => {
                let mut by_value: BTreeMap<bool, BTreeMap<ProcessId, Signature>> = BTreeMap::new();
                for (from, msg) in inbox {
                    if let StrongBaMsg::Input { value, sig } = msg {
                        let payload = StrongInputSig { session: self.cfg.session(), value: *value };
                        if sig.signer() == *from && verify_payload(&self.pki, &payload, sig) {
                            by_value.entry(*value).or_default().insert(*from, sig.clone());
                        }
                    }
                }
                for (value, sigs) in by_value {
                    if sigs.len() >= self.cfg.idk_threshold() {
                        let payload = StrongInputSig { session: self.cfg.session(), value };
                        let qc = self
                            .pki
                            .combine(
                                self.cfg.idk_threshold(),
                                &payload.signing_bytes(),
                                &sigs.into_values().collect::<Vec<_>>(),
                            )
                            .expect("verified shares combine");
                        out.push((Dest::All, StrongBaMsg::Propose { value, qc }));
                        break;
                    }
                }
            }
            // Round 3: decide-share for the first valid proposal
            // (lines 7–8).
            2 => {
                for (from, msg) in inbox {
                    if self.sent_decide_share {
                        break;
                    }
                    if let StrongBaMsg::Propose { value, qc } = msg {
                        let input_payload =
                            StrongInputSig { session: self.cfg.session(), value: *value };
                        let valid = *from == leader
                            && qc.threshold() == self.cfg.idk_threshold()
                            && self
                                .pki
                                .verify_threshold(&input_payload.signing_bytes(), qc)
                                .is_ok();
                        if valid {
                            let sig = sign_payload(
                                &self.key,
                                &StrongDecideSig { session: self.cfg.session(), value: *value },
                            );
                            out.push((
                                Dest::To(leader),
                                StrongBaMsg::DecideShare { value: *value, sig },
                            ));
                            self.sent_decide_share = true;
                        }
                    }
                }
            }
            // Round 4 (leader): batch n decide shares (lines 9–12).
            3 if self.me == leader => {
                let mut by_value: BTreeMap<bool, BTreeMap<ProcessId, Signature>> = BTreeMap::new();
                for (from, msg) in inbox {
                    if let StrongBaMsg::DecideShare { value, sig } = msg {
                        let payload =
                            StrongDecideSig { session: self.cfg.session(), value: *value };
                        if sig.signer() == *from && verify_payload(&self.pki, &payload, sig) {
                            by_value.entry(*value).or_default().insert(*from, sig.clone());
                        }
                    }
                }
                for (value, sigs) in by_value {
                    if sigs.len() == self.cfg.n() {
                        let payload = StrongDecideSig { session: self.cfg.session(), value };
                        let qc = self
                            .pki
                            .combine(
                                self.cfg.n(),
                                &payload.signing_bytes(),
                                &sigs.into_values().collect::<Vec<_>>(),
                            )
                            .expect("verified shares combine");
                        out.push((Dest::All, StrongBaMsg::DecideCert { value, qc }));
                        break;
                    }
                }
            }
            // Round 5: anyone still undecided triggers the fallback
            // (lines 16–18). The decide certificate, if any, was adopted
            // by the global handler above this match.
            4 if self.decision.is_none() && self.fallback_start.is_none() => {
                out.push((Dest::All, StrongBaMsg::Fallback { decision: None }));
                self.fallback_start = Some(step + 2);
            }
            _ => {}
        }

        // --- Fallback execution (lines 28–30).
        self.start_fallback_if_due(step);
        let mut finished_fb: Option<bool> = None;
        if let Some(ad) = &mut self.fallback {
            let mut fb_out = Vec::new();
            ad.tick(step, &mut fb_out);
            for (dest, env) in fb_out {
                out.push((dest, StrongBaMsg::Inner(env)));
            }
            if ad.done() {
                finished_fb = ad.inner().output();
            }
        }
        if let Some(v) = finished_fb {
            if self.decision.is_none() {
                self.decision = Some(v);
            }
            self.fallback = None;
            self.finished = true;
        }

        if !self.finished
            && step > self.fallback_deadline()
            && self.fallback.is_none()
            && self.fallback_start.is_none_or(|s| s <= step)
            && self.decision.is_some()
        {
            self.finished = true;
        }

        if self.decision.is_some() && self.decided_at.is_none() {
            self.decided_at = Some(step);
        }
    }

    fn output(&self) -> Option<bool> {
        if self.finished {
            self.decision
        } else {
            None
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

impl<F> std::fmt::Debug for StrongBa<F>
where
    F: FallbackFactory<bool>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrongBa")
            .field("me", &self.me)
            .field("input", &self.input)
            .field("decision", &self.decision)
            .field("fallback_ran", &self.fallback_ran)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::EchoFallbackFactory;
    use crate::subprotocol::LockstepAdapter;
    use meba_crypto::trusted_setup;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type Sba = StrongBa<EchoFallbackFactory>;
    type Msg = <Sba as SubProtocol>::Msg;

    fn make_sim(inputs: &[bool], crashed: &[u32]) -> Simulation<Msg> {
        let n = inputs.len();
        let cfg = SystemConfig::new(n, 5).unwrap();
        let (pki, keys) = trusted_setup(n, 31);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
            } else {
                let sba = StrongBa::new(cfg, id, key, pki.clone(), EchoFallbackFactory, inputs[i]);
                actors.push(Box::new(LockstepAdapter::new(id, sba)));
            }
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn decisions(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<bool> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let a: &LockstepAdapter<Sba> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect()
    }

    #[test]
    fn failure_free_unanimous_true() {
        let mut sim = make_sim(&[true; 7], &[]);
        sim.run_until_done(100).unwrap();
        assert!(decisions(&sim, &[]).iter().all(|&d| d));
        for i in 0..7u32 {
            let a: &LockstepAdapter<Sba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback(), "Lemma 8: no fallback when f = 0");
        }
    }

    #[test]
    fn failure_free_majority_of_inputs_or_agreement() {
        // Mixed inputs: 4 true, 3 false. The leader certifies whichever
        // value reaches t+1 = 4 first; all must agree.
        let inputs = [true, true, false, true, false, true, false];
        let mut sim = make_sim(&inputs, &[]);
        sim.run_until_done(100).unwrap();
        let ds = decisions(&sim, &[]);
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "agreement: {ds:?}");
    }

    #[test]
    fn failure_free_words_linear() {
        for n in [5usize, 9, 17, 33] {
            let mut sim = make_sim(&vec![true; n], &[]);
            sim.run_until_done(100).unwrap();
            let words = sim.metrics().correct_words();
            assert!(words <= 9 * n as u64, "n={n}: {words} words");
        }
    }

    #[test]
    fn crashed_leader_falls_back_and_agrees() {
        let crashed = [0u32];
        let inputs = [false, true, true, true, true, true, true];
        let mut sim = make_sim(&inputs, &crashed);
        sim.run_until_done(200).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "agreement: {ds:?}");
        // Strong unanimity among correct: all correct proposed true.
        assert!(ds.iter().all(|&d| d));
        for i in 1..7u32 {
            let a: &LockstepAdapter<Sba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(a.inner().used_fallback());
        }
    }

    #[test]
    fn one_crashed_follower_still_agrees() {
        // A missing decide share forces the (n, n) certificate to fail and
        // the protocol to fall back — complexity becomes quadratic but
        // agreement and validity hold.
        let crashed = [3u32];
        let inputs = [true; 7];
        let mut sim = make_sim(&inputs, &crashed);
        sim.run_until_done(200).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.iter().all(|&d| d), "strong unanimity: {ds:?}");
    }
}
