//! Word-cost audit tests for every wire-message variant.
//!
//! The complexity results live and die by the accounting: a message that
//! under-reports its words would fake the Table 1 shapes. This module
//! (test-only) constructs one of every message variant and checks its
//! cost against the §2 model: each value, signature, threshold signature
//! and aggregate costs one word; a message costs the sum (minimum 1,
//! enforced by the simulator).

#![cfg(test)]

use crate::bb::{BbBaValue, BbMsg};
use crate::fallback::EchoMsg;
use crate::signing::*;
use crate::strong_ba::StrongBaMsg;
use crate::subprotocol::SkewEnvelope;
use crate::weak_ba::WeakBaMsg;
use crate::SystemConfig;
use meba_crypto::{trusted_setup, Signable};
use meba_sim::Message;

type WbaM = WeakBaMsg<u64, EchoMsg<u64>>;
type BbM = BbMsg<u64, EchoMsg<BbBaValue<u64>>>;
type SbaM = StrongBaMsg<EchoMsg<bool>>;

fn fixtures() -> (SystemConfig, meba_crypto::Pki, Vec<meba_crypto::SecretKey>) {
    let cfg = SystemConfig::new(7, 1).unwrap();
    let (pki, keys) = trusted_setup(7, 1);
    (cfg, pki, keys)
}

#[test]
fn weak_ba_message_costs() {
    let (cfg, pki, keys) = fixtures();
    let v = 5u64;
    let vote_sig = sign_payload(&keys[0], &VoteSig { session: 1, value: &v, level: 1 });
    let decide_sig = sign_payload(&keys[0], &DecideSig { session: 1, value: &v, phase: 1 });
    let vote_payload = VoteSig { session: 1, value: &v, level: 1 };
    let shares: Vec<_> =
        keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &vote_payload)).collect();
    let qc = pki.combine(cfg.quorum(), &vote_payload.signing_bytes(), &shares).unwrap();
    let commit = CommitProof { level: 1, qc: qc.clone() };
    let decide = DecideProof { phase: 1, qc: qc.clone() };

    let cases: Vec<(WbaM, u64, u64)> = vec![
        (WeakBaMsg::Propose { phase: 1, value: v }, 1, 0),
        (WeakBaMsg::Vote { phase: 1, value: v, sig: vote_sig.clone() }, 2, 1),
        (
            WeakBaMsg::CommitReply { phase: 1, value: v, proof: commit.clone() },
            2,
            cfg.quorum() as u64,
        ),
        (WeakBaMsg::CommitCert { phase: 1, value: v, proof: commit }, 2, cfg.quorum() as u64),
        (WeakBaMsg::Decide { phase: 1, value: v, sig: decide_sig }, 2, 1),
        (
            WeakBaMsg::FinalizeCert { phase: 1, value: v, proof: decide.clone() },
            2,
            cfg.quorum() as u64,
        ),
        (WeakBaMsg::HelpReq { sig: vote_sig }, 1, 1),
        (WeakBaMsg::Help { value: v, proof: decide.clone() }, 2, cfg.quorum() as u64),
        (WeakBaMsg::FallbackCert { qc: qc.clone(), decision: None }, 1, cfg.quorum() as u64),
        (WeakBaMsg::FallbackCert { qc, decision: Some((v, decide)) }, 3, 2 * cfg.quorum() as u64),
        (WeakBaMsg::Fallback(SkewEnvelope { vstep: 0, msg: EchoMsg(9u64) }), 1, 0),
    ];
    for (msg, words, sigs) in cases {
        assert_eq!(msg.words(), words, "words of {msg:?}");
        assert_eq!(msg.constituent_sigs(), sigs, "sigs of {msg:?}");
        assert!(!msg.component().is_empty());
    }
}

#[test]
fn bb_message_costs() {
    let (cfg, pki, keys) = fixtures();
    let sender_sig = sign_payload(&keys[0], &BbValueSig { session: 1, value: &9u64 });
    let idk_payload = BbIdkSig { session: 1, phase: 2 };
    let shares: Vec<_> =
        keys.iter().take(cfg.idk_threshold()).map(|k| sign_payload(k, &idk_payload)).collect();
    let idk_qc = pki.combine(cfg.idk_threshold(), &idk_payload.signing_bytes(), &shares).unwrap();
    let signed = BbBaValue::Signed { value: 9u64, sig: sender_sig.clone() };
    let quorum_v = BbBaValue::<u64>::IdkQuorum { phase: 2, qc: idk_qc };

    let cases: Vec<(BbM, u64, u64)> = vec![
        (BbMsg::SenderValue { value: 9, sig: sender_sig }, 2, 1),
        (BbMsg::VetHelpReq { phase: 2 }, 1, 0),
        (BbMsg::VetValue { phase: 2, value: signed.clone() }, 2, 1),
        (BbMsg::VetValue { phase: 2, value: quorum_v.clone() }, 1, cfg.idk_threshold() as u64),
        (BbMsg::Vetted { phase: 2, value: signed }, 2, 1),
        (BbMsg::Vetted { phase: 2, value: quorum_v }, 1, cfg.idk_threshold() as u64),
    ];
    for (msg, words, sigs) in cases {
        assert_eq!(msg.words(), words, "words of {msg:?}");
        assert_eq!(msg.constituent_sigs(), sigs, "sigs of {msg:?}");
    }
}

#[test]
fn strong_ba_message_costs() {
    let (cfg, pki, keys) = fixtures();
    let input_payload = StrongInputSig { session: 1, value: true };
    let sig = sign_payload(&keys[0], &input_payload);
    let shares: Vec<_> =
        keys.iter().take(cfg.idk_threshold()).map(|k| sign_payload(k, &input_payload)).collect();
    let propose_qc =
        pki.combine(cfg.idk_threshold(), &input_payload.signing_bytes(), &shares).unwrap();
    let decide_payload = StrongDecideSig { session: 1, value: true };
    let all: Vec<_> = keys.iter().map(|k| sign_payload(k, &decide_payload)).collect();
    let decide_qc = pki.combine(cfg.n(), &decide_payload.signing_bytes(), &all).unwrap();

    let cases: Vec<(SbaM, u64, u64)> = vec![
        (StrongBaMsg::Input { value: true, sig: sig.clone() }, 2, 1),
        (StrongBaMsg::Propose { value: true, qc: propose_qc }, 2, cfg.idk_threshold() as u64),
        (StrongBaMsg::DecideShare { value: true, sig }, 2, 1),
        (StrongBaMsg::DecideCert { value: true, qc: decide_qc.clone() }, 2, cfg.n() as u64),
        (StrongBaMsg::Fallback { decision: None }, 1, 0),
        (StrongBaMsg::Fallback { decision: Some((true, decide_qc)) }, 2, cfg.n() as u64),
    ];
    for (msg, words, sigs) in cases {
        assert_eq!(msg.words(), words, "words of {msg:?}");
        assert_eq!(msg.constituent_sigs(), sigs, "sigs of {msg:?}");
    }
}

#[test]
fn bb_ba_value_words() {
    use crate::value::Value;
    let (_, pki, keys) = fixtures();
    let sig = sign_payload(&keys[0], &BbValueSig { session: 1, value: &1u64 });
    let signed = BbBaValue::Signed { value: 1u64, sig };
    assert_eq!(signed.value_words(), 2);

    let payload = BbIdkSig { session: 1, phase: 1 };
    let shares: Vec<_> = keys.iter().take(4).map(|k| sign_payload(k, &payload)).collect();
    let qc = pki.combine(4, &payload.signing_bytes(), &shares).unwrap();
    let quorum = BbBaValue::<u64>::IdkQuorum { phase: 1, qc };
    assert_eq!(quorum.value_words(), 1);
}
