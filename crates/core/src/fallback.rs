//! The `A_fallback` black box and a minimal crash-fault implementation.
//!
//! The adaptive protocols only require three properties from the fallback
//! (§6): strong unanimity, agreement + termination at `n = 2t + 1`, and
//! quadratic-order words. The production implementation lives in the
//! `meba-fallback` crate (recursive-halving strong BA in the shape of
//! Momose–Ren); this module provides [`EchoFallback`], a two-step protocol
//! that satisfies those properties **under crash faults only**, so that
//! `meba-core`'s own tests can exercise the full fallback path without a
//! dependency cycle.

use crate::subprotocol::{FallbackFactory, SubProtocol};
use crate::value::Value;
use meba_crypto::{DecodeError, Decoder, Encoder, ProcessId, WireCodec};
use meba_sim::{Dest, Message};
use std::collections::BTreeMap;

/// Message of [`EchoFallback`]: the sender's initial value.
#[derive(Clone, Debug)]
pub struct EchoMsg<V>(pub V);

impl<V: Value> Message for EchoMsg<V> {
    fn words(&self) -> u64 {
        self.0.value_words()
    }
    fn component(&self) -> &'static str {
        "fallback"
    }
    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<V: Value> WireCodec for EchoMsg<V> {
    fn encode_wire(&self, enc: &mut Encoder) {
        self.0.encode_value(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EchoMsg(V::decode_value(dec)?))
    }
}

/// Crash-fault-only strong BA: broadcast inputs, decide the most frequent
/// value received (ties broken toward the smaller value).
///
/// Correct under crash faults because every correct process receives the
/// same multiset of echoes. **Not Byzantine-safe** — use
/// `meba_fallback::RecursiveBa` for adversarial runs.
#[derive(Debug)]
pub struct EchoFallback<V> {
    input: V,
    received: Vec<V>,
    decision: Option<V>,
}

impl<V: Value> EchoFallback<V> {
    /// Creates an instance with the given initial value.
    pub fn new(input: V) -> Self {
        EchoFallback { input, received: Vec::new(), decision: None }
    }
}

impl<V: Value> SubProtocol for EchoFallback<V> {
    type Msg = EchoMsg<V>;
    type Output = V;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, EchoMsg<V>)],
        out: &mut Vec<(Dest, EchoMsg<V>)>,
    ) {
        match step {
            0 => out.push((Dest::All, EchoMsg(self.input.clone()))),
            1 => {
                self.received.extend(inbox.iter().map(|(_, m)| m.0.clone()));
                let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
                for v in &self.received {
                    *counts.entry(v).or_default() += 1;
                }
                // Most frequent; BTreeMap iteration order breaks ties
                // toward the smaller value deterministically.
                let winner = counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(v, _)| (*v).clone())
                    .unwrap_or_else(|| self.input.clone());
                self.decision = Some(winner);
            }
            _ => {}
        }
    }

    fn output(&self) -> Option<V> {
        self.decision.clone()
    }

    fn done(&self) -> bool {
        self.decision.is_some()
    }
}

/// Factory for [`EchoFallback`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EchoFallbackFactory;

impl<V: Value> FallbackFactory<V> for EchoFallbackFactory {
    type Protocol = EchoFallback<V>;
    fn create(&self, _me: ProcessId, input: V) -> EchoFallback<V> {
        EchoFallback::new(input)
    }
    fn max_steps(&self) -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group(inputs: &[u64]) -> Vec<u64> {
        let n = inputs.len();
        let mut nodes: Vec<EchoFallback<u64>> =
            inputs.iter().map(|&v| EchoFallback::new(v)).collect();
        // Step 0: everyone broadcasts.
        let mut sent: Vec<(ProcessId, EchoMsg<u64>)> = Vec::new();
        for (i, node) in nodes.iter_mut().enumerate() {
            let mut out = Vec::new();
            node.on_step(0, &[], &mut out);
            for (_, m) in out {
                sent.push((ProcessId(i as u32), m));
            }
        }
        // Step 1: everyone receives all broadcasts.
        for node in nodes.iter_mut() {
            let mut out = Vec::new();
            node.on_step(1, &sent, &mut out);
            assert!(out.is_empty());
        }
        assert_eq!(sent.len(), n);
        nodes.iter().map(|n| n.output().unwrap()).collect()
    }

    #[test]
    fn unanimity_decides_the_value() {
        assert_eq!(run_group(&[5, 5, 5]), vec![5, 5, 5]);
    }

    #[test]
    fn majority_wins() {
        assert_eq!(run_group(&[5, 5, 9]), vec![5, 5, 5]);
    }

    #[test]
    fn tie_breaks_to_smaller() {
        let out = run_group(&[9, 5, 5, 9]);
        assert!(out.iter().all(|&v| v == 5));
    }

    #[test]
    fn factory_builds_fresh_instances() {
        let f = EchoFallbackFactory;
        let p: EchoFallback<u64> = f.create(ProcessId(0), 3);
        assert_eq!(p.input, 3);
        assert!(!p.done());
    }
}
