//! Signed payloads and quorum-certificate proofs used by the protocols.
//!
//! Every signature in Algorithms 1–5 binds a domain tag, the session id,
//! and the semantic fields the correctness proofs rely on:
//!
//! * weak BA votes bind `(value, level)` so a commit certificate proves
//!   its `commit_level` (Alg 4 line 43, "level is valid according to
//!   `QC_commit(v)`");
//! * weak BA decide shares bind `(value, phase)` so at most one finalize
//!   certificate exists per phase value (Lemma 15);
//! * BB idk shares bind the phase so stale certificates cannot be
//!   replayed as fresh ones.

use crate::config::SystemConfig;
use crate::value::Value;
use meba_crypto::{
    DecodeError, Decoder, Encoder, Pki, SignContext, Signable, Signature, ThresholdSignature,
    WireCodec,
};

/// Builds an equivocation context (see [`SignContext`]): the domain tag
/// plus the slot-identifying fields, excluding the value being signed.
macro_rules! context {
    ($domain:expr $(, $put:ident($field:expr))*) => {{
        let mut enc = Encoder::new();
        enc.put_bytes($domain.as_bytes());
        $( enc.$put($field); )*
        enc.into_bytes()
    }};
}

/// `⟨vote, v, level⟩` — weak BA vote share (Alg 4 line 34).
#[derive(Debug)]
pub struct VoteSig<'a, V> {
    /// Session id from [`SystemConfig::session`].
    pub session: u64,
    /// The proposed value.
    pub value: &'a V,
    /// The phase that will become the commit level.
    pub level: u32,
}

impl<V: Value> Signable for VoteSig<'_, V> {
    const DOMAIN: &'static str = "meba/weakba/vote";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.value.encode_value(enc);
        enc.put_u32(self.level);
    }
}

impl<V: Value> SignContext for VoteSig<'_, V> {
    // One vote slot per (session, level): voting two values at the same
    // level is equivocation.
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session), put_u32(self.level))
    }
}

/// `⟨decide, v, j⟩` — weak BA decide share (Alg 4 line 44).
#[derive(Debug)]
pub struct DecideSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// The value being finalized.
    pub value: &'a V,
    /// The phase forming the finalize certificate.
    pub phase: u32,
}

impl<V: Value> Signable for DecideSig<'_, V> {
    const DOMAIN: &'static str = "meba/weakba/decide";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.value.encode_value(enc);
        enc.put_u32(self.phase);
    }
}

impl<V: Value> SignContext for DecideSig<'_, V> {
    // One decide-share slot per (session, phase).
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session), put_u32(self.phase))
    }
}

/// `⟨help_req⟩` — weak BA help request (Alg 3 line 6).
#[derive(Debug)]
pub struct HelpReqSig {
    /// Session id.
    pub session: u64,
}

impl Signable for HelpReqSig {
    const DOMAIN: &'static str = "meba/weakba/help_req";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
    }
}

impl SignContext for HelpReqSig {
    // One help-request slot per session; the payload carries no free
    // choice, so re-signing is always the identical preimage.
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session))
    }
}

/// `⟨v⟩_sender` — the BB sender's signed input (Alg 1 line 2).
#[derive(Debug)]
pub struct BbValueSig<'a, V> {
    /// Session id.
    pub session: u64,
    /// The broadcast value.
    pub value: &'a V,
}

impl<V: Value> Signable for BbValueSig<'_, V> {
    const DOMAIN: &'static str = "meba/bb/value";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        self.value.encode_value(enc);
    }
}

impl<V: Value> SignContext for BbValueSig<'_, V> {
    // The BB sender signs exactly one value per session; two signed
    // values is the classic sender equivocation.
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session))
    }
}

/// `⟨idk, j⟩_p` — BB vetting "I don't know" share (Alg 2 line 21).
#[derive(Debug)]
pub struct BbIdkSig {
    /// Session id.
    pub session: u64,
    /// Vetting phase.
    pub phase: u32,
}

impl Signable for BbIdkSig {
    const DOMAIN: &'static str = "meba/bb/idk";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        enc.put_u32(self.phase);
    }
}

impl SignContext for BbIdkSig {
    // One idk slot per (session, phase); no free choice in the payload.
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session), put_u32(self.phase))
    }
}

/// `⟨v⟩_p` — strong BA input share (Alg 5 line 2).
#[derive(Debug)]
pub struct StrongInputSig {
    /// Session id.
    pub session: u64,
    /// The binary input.
    pub value: bool,
}

impl Signable for StrongInputSig {
    const DOMAIN: &'static str = "meba/strongba/input";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        enc.put_bool(self.value);
    }
}

impl SignContext for StrongInputSig {
    // A process's binary input is fixed per session: signing both `true`
    // and `false` is equivocation.
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session))
    }
}

/// `⟨decide, v⟩_p` — strong BA decide share (Alg 5 line 8).
#[derive(Debug)]
pub struct StrongDecideSig {
    /// Session id.
    pub session: u64,
    /// The binary value.
    pub value: bool,
}

impl Signable for StrongDecideSig {
    const DOMAIN: &'static str = "meba/strongba/decide";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        enc.put_bool(self.value);
    }
}

impl SignContext for StrongDecideSig {
    // A correct process signs a decide share for at most one binary
    // value per session.
    fn context_bytes(&self) -> Vec<u8> {
        context!(Self::DOMAIN, put_u64(self.session))
    }
}

/// A weak BA commit certificate: `⌈(n+t+1)/2⌉` votes on `(value, level)`
/// (Alg 4 lines 40–42).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommitProof {
    /// The phase in which the votes were cast (the commit level).
    pub level: u32,
    /// Quorum certificate over [`VoteSig`] with the quorum threshold.
    pub qc: ThresholdSignature,
}

impl WireCodec for CommitProof {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u32(self.level);
        self.qc.encode(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let level = dec.get_u32()?;
        let qc = ThresholdSignature::decode(dec)?;
        Ok(CommitProof { level, qc })
    }
}

impl CommitProof {
    /// Verifies that this proof commits `value` at its level.
    pub fn verify<V: Value>(&self, cfg: &SystemConfig, pki: &Pki, value: &V) -> bool {
        self.qc.threshold() == cfg.quorum()
            && pki
                .verify_threshold(
                    &VoteSig { session: cfg.session(), value, level: self.level }.signing_bytes(),
                    &self.qc,
                )
                .is_ok()
    }
}

/// A weak BA finalize certificate: `⌈(n+t+1)/2⌉` decide shares on
/// `(value, phase)` (Alg 4 lines 49–51). Stored as `decide_proof`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DecideProof {
    /// The phase that finalized.
    pub phase: u32,
    /// Quorum certificate over [`DecideSig`].
    pub qc: ThresholdSignature,
}

impl WireCodec for DecideProof {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u32(self.phase);
        self.qc.encode(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let phase = dec.get_u32()?;
        let qc = ThresholdSignature::decode(dec)?;
        Ok(DecideProof { phase, qc })
    }
}

impl DecideProof {
    /// Verifies that this proof finalizes `value`.
    pub fn verify<V: Value>(&self, cfg: &SystemConfig, pki: &Pki, value: &V) -> bool {
        self.qc.threshold() == cfg.quorum()
            && pki
                .verify_threshold(
                    &DecideSig { session: cfg.session(), value, phase: self.phase }.signing_bytes(),
                    &self.qc,
                )
                .is_ok()
    }
}

/// Convenience: sign a [`Signable`] with a secret key.
pub fn sign_payload<S: Signable>(key: &meba_crypto::SecretKey, payload: &S) -> Signature {
    key.sign(&payload.signing_bytes())
}

/// Convenience: verify an individual signature over a [`Signable`].
pub fn verify_payload<S: Signable>(pki: &Pki, payload: &S, sig: &Signature) -> bool {
    pki.verify(&payload.signing_bytes(), sig).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::trusted_setup;

    fn cfg() -> SystemConfig {
        SystemConfig::new(7, 99).unwrap()
    }

    #[test]
    fn vote_binds_value_and_level() {
        let a = VoteSig { session: 1, value: &7u64, level: 2 }.signing_bytes();
        let b = VoteSig { session: 1, value: &7u64, level: 3 }.signing_bytes();
        let c = VoteSig { session: 1, value: &8u64, level: 2 }.signing_bytes();
        let d = VoteSig { session: 2, value: &7u64, level: 2 }.signing_bytes();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn vote_and_decide_domains_differ() {
        let v = VoteSig { session: 1, value: &7u64, level: 2 }.signing_bytes();
        let d = DecideSig { session: 1, value: &7u64, phase: 2 }.signing_bytes();
        assert_ne!(v, d);
    }

    #[test]
    fn commit_proof_roundtrip() {
        let cfg = cfg();
        let (pki, keys) = trusted_setup(cfg.n(), 5);
        let value = 42u64;
        let payload = VoteSig { session: cfg.session(), value: &value, level: 3 };
        let shares: Vec<_> =
            keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &payload)).collect();
        let qc = pki.combine(cfg.quorum(), &payload.signing_bytes(), &shares).unwrap();
        let proof = CommitProof { level: 3, qc };
        assert!(proof.verify(&cfg, &pki, &value));
        assert!(!proof.verify(&cfg, &pki, &43u64));
        // Tampering with the level breaks verification.
        let bad = CommitProof { level: 4, qc: proof.qc };
        assert!(!bad.verify(&cfg, &pki, &value));
    }

    #[test]
    fn commit_proof_rejects_wrong_threshold() {
        let cfg = cfg();
        let (pki, keys) = trusted_setup(cfg.n(), 5);
        let value = 1u64;
        let payload = VoteSig { session: cfg.session(), value: &value, level: 1 };
        // t+1 = 4 < quorum = 6: a certificate with a lower threshold is
        // not a commit proof even though it verifies as a (4, n) cert.
        let shares: Vec<_> = keys.iter().take(4).map(|k| sign_payload(k, &payload)).collect();
        let qc = pki.combine(4, &payload.signing_bytes(), &shares).unwrap();
        assert!(!CommitProof { level: 1, qc }.verify(&cfg, &pki, &value));
    }

    #[test]
    fn decide_proof_roundtrip() {
        let cfg = cfg();
        let (pki, keys) = trusted_setup(cfg.n(), 5);
        let value = 9u64;
        let payload = DecideSig { session: cfg.session(), value: &value, phase: 2 };
        let shares: Vec<_> =
            keys.iter().skip(1).take(cfg.quorum()).map(|k| sign_payload(k, &payload)).collect();
        let qc = pki.combine(cfg.quorum(), &payload.signing_bytes(), &shares).unwrap();
        let proof = DecideProof { phase: 2, qc };
        assert!(proof.verify(&cfg, &pki, &value));
        assert!(!DecideProof { phase: 3, qc: proof.qc }.verify(&cfg, &pki, &value));
    }

    #[test]
    fn individual_payload_sign_verify() {
        let cfg = cfg();
        let (pki, keys) = trusted_setup(cfg.n(), 5);
        let payload = BbIdkSig { session: cfg.session(), phase: 4 };
        let sig = sign_payload(&keys[2], &payload);
        assert!(verify_payload(&pki, &payload, &sig));
        assert!(!verify_payload(&pki, &BbIdkSig { session: cfg.session(), phase: 5 }, &sig));
    }
}
