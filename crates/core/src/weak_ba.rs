//! Adaptive weak Byzantine Agreement (Algorithms 3 and 4, §6).
//!
//! Weak BA decides with `O(n(f+1))` words at resilience `n = 2t + 1` and
//! satisfies **unique validity** with respect to a pluggable predicate
//! (Definition 3).
//!
//! # Structure
//!
//! 1. **Phases** (`n` phases × 5 rounds, rotating leader, Alg 4): a
//!    non-silent leader proposes its value; processes vote (quorum
//!    `⌈(n+t+1)/2⌉`) or report earlier commits; the leader relays the
//!    highest-level commit or forms a fresh one; decide shares form a
//!    finalize certificate. Leaders that already decided stay **silent**,
//!    which is where adaptivity comes from: after the first non-silent
//!    phase with a correct leader (and `f < (n-t-1)/2`), every later
//!    correct leader is silent, so only `O(f + 1)` phases cost anything.
//! 2. **Help round** (Alg 3 lines 5–14): undecided processes broadcast
//!    signed `help_req`s; deciders answer with their finalize certificate.
//! 3. **Fallback** (Alg 3 lines 9–29): `t + 1` distinct `help_req`
//!    signatures form a fallback certificate; certificate holders
//!    broadcast it and, `2δ` later, run `A_fallback` with doubled rounds
//!    (Lemmas 17–18). The extra `2δ` safety window lets undecided
//!    processes adopt any existing decision so the fallback's strong
//!    unanimity cannot contradict prior decisions (Lemma 19).
//!
//! The paper states the phase count inconsistently (Alg 3 line 1 says
//! `t + 1`, §6 prose and the Lemma 6 proof say `n`). We follow the proof:
//! `n` phases, so every correct process leads once, which Lemma 6 needs to
//! rule out correct `help_req`s when `f < (n-t-1)/2`.

use crate::config::SystemConfig;
use crate::decision::Decision;
use crate::signing::{
    sign_payload, verify_payload, CommitProof, DecideProof, DecideSig, HelpReqSig, VoteSig,
};
use crate::subprotocol::{FallbackFactory, SkewAdapter, SkewEnvelope, SubProtocol};
use crate::validity::Validity;
use crate::value::Value;
use meba_crypto::{DecodeError, Decoder, Digest, Encoder, Pki, SecretKey, Signable, Signature};
use meba_crypto::{ProcessId, SignContext, ThresholdSignature, WireCodec, WordCost};
use meba_sim::{Dest, Message, RecoveryEvent};
use std::collections::BTreeMap;

/// Message type of the fallback protocol produced by factory `F` for
/// values `V`.
pub type FallbackMsgOf<V, F> = <<F as FallbackFactory<V>>::Protocol as SubProtocol>::Msg;

/// The full wire-message type of a [`WeakBa`] built with factory `F`.
pub type WeakBaMsgOf<V, F> = WeakBaMsg<V, FallbackMsgOf<V, F>>;

/// An addressed outgoing message batch of a [`WeakBa`].
pub type WeakBaOutbox<V, F> = Vec<(Dest, WeakBaMsgOf<V, F>)>;

/// Wire messages of weak BA. `FM` is the fallback's message type.
#[derive(Clone, Debug)]
pub enum WeakBaMsg<V, FM> {
    /// `⟨propose, v, j⟩_leader` (Alg 4 line 32).
    Propose {
        /// Phase number (1-based).
        phase: u32,
        /// The leader's value.
        value: V,
    },
    /// `⟨vote, v, j⟩_p` to the leader (line 34).
    Vote {
        /// Phase.
        phase: u32,
        /// Voted value.
        value: V,
        /// Signature over [`VoteSig`].
        sig: Signature,
    },
    /// `⟨commit, w, QC, level, j⟩_p` to the leader (line 36).
    CommitReply {
        /// Phase.
        phase: u32,
        /// Previously committed value.
        value: V,
        /// Its commit certificate and level.
        proof: CommitProof,
    },
    /// `⟨commit, v, QC, level, j⟩_leader` broadcast (lines 39 / 42).
    CommitCert {
        /// Phase.
        phase: u32,
        /// Committed value.
        value: V,
        /// Certificate; `proof.level == phase` for fresh commits, older
        /// for relays.
        proof: CommitProof,
    },
    /// `⟨decide, v, j⟩_p` to the leader (line 44).
    Decide {
        /// Phase.
        phase: u32,
        /// Value being finalized.
        value: V,
        /// Signature over [`DecideSig`].
        sig: Signature,
    },
    /// `⟨finalized, v, QC, j⟩_leader` broadcast (line 51).
    FinalizeCert {
        /// Phase.
        phase: u32,
        /// Finalized value.
        value: V,
        /// Finalize certificate.
        proof: DecideProof,
    },
    /// `⟨help_req⟩_p` broadcast (Alg 3 line 6).
    HelpReq {
        /// Signature over [`HelpReqSig`].
        sig: Signature,
    },
    /// `⟨help, v, decide_proof⟩` to a requester (line 8).
    Help {
        /// The sender's decision.
        value: V,
        /// Its finalize certificate.
        proof: DecideProof,
    },
    /// `⟨fallback, QC_fallback, v?, proof?⟩` broadcast (lines 11 / 22).
    FallbackCert {
        /// `(t+1, n)`-threshold certificate over `help_req`s.
        qc: ThresholdSignature,
        /// The sender's decision and proof, if it has one.
        decision: Option<(V, DecideProof)>,
    },
    /// A message of the inner `A_fallback`, tagged with its virtual step.
    Fallback(SkewEnvelope<FM>),
}

impl<V: Value, FM: Message + WireCodec> Message for WeakBaMsg<V, FM> {
    fn words(&self) -> u64 {
        match self {
            WeakBaMsg::Propose { value, .. } => value.value_words(),
            WeakBaMsg::Vote { value, sig, .. } => value.value_words() + sig.words(),
            WeakBaMsg::CommitReply { value, proof, .. }
            | WeakBaMsg::CommitCert { value, proof, .. } => value.value_words() + proof.qc.words(),
            WeakBaMsg::Decide { value, sig, .. } => value.value_words() + sig.words(),
            WeakBaMsg::FinalizeCert { value, proof, .. } => value.value_words() + proof.qc.words(),
            WeakBaMsg::HelpReq { sig } => sig.words(),
            WeakBaMsg::Help { value, proof } => value.value_words() + proof.qc.words(),
            WeakBaMsg::FallbackCert { qc, decision } => {
                qc.words() + decision.as_ref().map_or(0, |(v, p)| v.value_words() + p.qc.words())
            }
            WeakBaMsg::Fallback(env) => env.msg.words(),
        }
    }

    fn constituent_sigs(&self) -> u64 {
        match self {
            WeakBaMsg::Propose { .. } => 0,
            WeakBaMsg::Vote { sig, .. } | WeakBaMsg::Decide { sig, .. } => sig.constituent_sigs(),
            WeakBaMsg::CommitReply { proof, .. } | WeakBaMsg::CommitCert { proof, .. } => {
                proof.qc.constituent_sigs()
            }
            WeakBaMsg::FinalizeCert { proof, .. } | WeakBaMsg::Help { proof, .. } => {
                proof.qc.constituent_sigs()
            }
            WeakBaMsg::HelpReq { sig } => sig.constituent_sigs(),
            WeakBaMsg::FallbackCert { qc, decision } => {
                qc.constituent_sigs()
                    + decision.as_ref().map_or(0, |(_, p)| p.qc.constituent_sigs())
            }
            WeakBaMsg::Fallback(env) => env.msg.constituent_sigs(),
        }
    }

    fn component(&self) -> &'static str {
        match self {
            WeakBaMsg::HelpReq { .. } | WeakBaMsg::Help { .. } | WeakBaMsg::FallbackCert { .. } => {
                "weak-ba/help"
            }
            WeakBaMsg::Fallback(env) => env.msg.component(),
            _ => "weak-ba/phases",
        }
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<V: Value, FM: WireCodec> WireCodec for WeakBaMsg<V, FM> {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            WeakBaMsg::Propose { phase, value } => {
                enc.put_u32(0);
                enc.put_u32(*phase);
                value.encode_value(enc);
            }
            WeakBaMsg::Vote { phase, value, sig } => {
                enc.put_u32(1);
                enc.put_u32(*phase);
                value.encode_value(enc);
                sig.encode(enc);
            }
            WeakBaMsg::CommitReply { phase, value, proof } => {
                enc.put_u32(2);
                enc.put_u32(*phase);
                value.encode_value(enc);
                proof.encode_wire(enc);
            }
            WeakBaMsg::CommitCert { phase, value, proof } => {
                enc.put_u32(3);
                enc.put_u32(*phase);
                value.encode_value(enc);
                proof.encode_wire(enc);
            }
            WeakBaMsg::Decide { phase, value, sig } => {
                enc.put_u32(4);
                enc.put_u32(*phase);
                value.encode_value(enc);
                sig.encode(enc);
            }
            WeakBaMsg::FinalizeCert { phase, value, proof } => {
                enc.put_u32(5);
                enc.put_u32(*phase);
                value.encode_value(enc);
                proof.encode_wire(enc);
            }
            WeakBaMsg::HelpReq { sig } => {
                enc.put_u32(6);
                sig.encode(enc);
            }
            WeakBaMsg::Help { value, proof } => {
                enc.put_u32(7);
                value.encode_value(enc);
                proof.encode_wire(enc);
            }
            WeakBaMsg::FallbackCert { qc, decision } => {
                enc.put_u32(8);
                qc.encode(enc);
                enc.put_option(decision, |e, (v, p)| {
                    v.encode_value(e);
                    p.encode_wire(e);
                });
            }
            WeakBaMsg::Fallback(env) => {
                enc.put_u32(9);
                env.encode_wire(enc);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            0 => Ok(WeakBaMsg::Propose { phase: dec.get_u32()?, value: V::decode_value(dec)? }),
            1 => Ok(WeakBaMsg::Vote {
                phase: dec.get_u32()?,
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
            }),
            2 => Ok(WeakBaMsg::CommitReply {
                phase: dec.get_u32()?,
                value: V::decode_value(dec)?,
                proof: CommitProof::decode_wire(dec)?,
            }),
            3 => Ok(WeakBaMsg::CommitCert {
                phase: dec.get_u32()?,
                value: V::decode_value(dec)?,
                proof: CommitProof::decode_wire(dec)?,
            }),
            4 => Ok(WeakBaMsg::Decide {
                phase: dec.get_u32()?,
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
            }),
            5 => Ok(WeakBaMsg::FinalizeCert {
                phase: dec.get_u32()?,
                value: V::decode_value(dec)?,
                proof: DecideProof::decode_wire(dec)?,
            }),
            6 => Ok(WeakBaMsg::HelpReq { sig: Signature::decode(dec)? }),
            7 => Ok(WeakBaMsg::Help {
                value: V::decode_value(dec)?,
                proof: DecideProof::decode_wire(dec)?,
            }),
            8 => Ok(WeakBaMsg::FallbackCert {
                qc: ThresholdSignature::decode(dec)?,
                decision: dec
                    .get_option(|d| Ok((V::decode_value(d)?, DecideProof::decode_wire(d)?)))?,
            }),
            9 => Ok(WeakBaMsg::Fallback(SkewEnvelope::decode_wire(dec)?)),
            _ => Err(DecodeError::Invalid { what: "WeakBaMsg variant tag" }),
        }
    }
}

/// Rounds per phase (Alg 4 has 5 rounds).
pub const PHASE_ROUNDS: u64 = 5;

/// `kind` tags of the [`RecoveryEvent::CertReceived`] events weak BA
/// emits for the crash-recovery journal (`meba-journal`).
pub mod cert_kind {
    /// A finalize certificate adopted from a phase leader (Alg 4
    /// lines 52–54).
    pub const FINALIZE: u32 = 0;
    /// A help answer's finalize certificate (Alg 3 lines 13–14).
    pub const HELP: u32 = 1;
    /// A fallback certificate that scheduled `A_fallback` (Alg 3
    /// lines 21–23).
    pub const FALLBACK: u32 = 2;
}

/// Per-phase leader scratch state.
#[derive(Debug)]
struct PhaseScratch<V> {
    /// Set once the first propose from the phase leader was processed.
    saw_propose: bool,
    /// The value this process proposed as leader (vote target).
    my_proposal: Option<V>,
    /// The value the leader broadcast in its commit certificate (decide
    /// shares are collected for it).
    commit_sent: Option<V>,
}

impl<V> Default for PhaseScratch<V> {
    fn default() -> Self {
        PhaseScratch { saw_propose: false, my_proposal: None, commit_sent: None }
    }
}

impl<V> PhaseScratch<V> {
    fn reset(&mut self) {
        self.saw_propose = false;
        self.my_proposal = None;
        self.commit_sent = None;
    }
}

/// The adaptive weak BA state machine (one per process).
///
/// Implements [`SubProtocol`] so it can run standalone (via
/// [`crate::subprotocol::LockstepAdapter`]) or embedded in the BB
/// reduction ([`crate::bb::Bb`]).
pub struct WeakBa<V, P, F>
where
    V: Value,
    P: Validity<V>,
    F: FallbackFactory<V>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    validity: P,
    factory: F,
    input: V,

    decision: Option<Decision<V>>,
    decide_proof: Option<DecideProof>,
    commit: Option<(V, CommitProof)>,
    commit_level: u32,
    bu_decision: V,
    bu_proof: Option<DecideProof>,

    scratch: PhaseScratch<V>,
    help_sigs: BTreeMap<ProcessId, Signature>,
    fallback_start: Option<u64>,
    fallback_cert: Option<ThresholdSignature>,
    fallback: Option<SkewAdapter<F::Protocol>>,
    pending_fb: Vec<(ProcessId, SkewEnvelope<FallbackMsgOf<V, F>>)>,
    fallback_ran: bool,
    nonsilent_as_leader: bool,
    no_safety_window: bool,
    decided_at: Option<u64>,
    finished: bool,
    /// Protocol-critical events since the last drain, consumed by the
    /// crash-recovery wrapper (`Recoverable`) which journals them
    /// *before* the step's outbox is externalized.
    recovery_events: Vec<RecoveryEvent>,
}

impl<V, P, F> WeakBa<V, P, F>
where
    V: Value,
    P: Validity<V>,
    F: FallbackFactory<V>,
{
    /// Creates a weak BA instance for process `me` with initial value
    /// `input`.
    ///
    /// The caller guarantees `input` satisfies the predicate (the paper's
    /// precondition that correct processes propose valid values).
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        validity: P,
        factory: F,
        input: V,
    ) -> Self {
        WeakBa {
            cfg,
            me,
            key,
            pki,
            validity,
            factory,
            bu_decision: input.clone(),
            input,
            decision: None,
            decide_proof: None,
            commit: None,
            commit_level: 0,
            bu_proof: None,
            scratch: PhaseScratch::default(),
            help_sigs: BTreeMap::new(),
            fallback_start: None,
            fallback_cert: None,
            fallback: None,
            pending_fb: Vec::new(),
            fallback_ran: false,
            nonsilent_as_leader: false,
            no_safety_window: false,
            decided_at: None,
            finished: false,
            recovery_events: Vec::new(),
        }
    }

    /// Records a signature production event for the recovery journal.
    fn note_signed<S: SignContext>(&mut self, payload: &S) {
        self.recovery_events.push(RecoveryEvent::Signed {
            context: payload.context_bytes(),
            digest: Digest::of(&payload.signing_bytes()),
        });
    }

    /// **Ablation only (experiment E9):** disables the paper's 2δ safety
    /// window (Alg 3 lines 17–20), i.e. undecided processes stop adopting
    /// certified decisions before the fallback. With a Byzantine helper
    /// this demonstrably breaks agreement — which is the point of the
    /// ablation. Never use outside experiments.
    pub fn disable_safety_window(&mut self) {
        self.no_safety_window = true;
    }

    /// Step at which the help round begins (`n` phases × 5 rounds).
    pub fn help_step(cfg: &SystemConfig) -> u64 {
        cfg.n() as u64 * PHASE_ROUNDS
    }

    /// Worst-case schedule length: phases, help round, certificate
    /// window, plus the doubled-round fallback at its latest start. Fixed
    /// multi-instance drivers (`meba-smr`) allocate this many rounds per
    /// instance.
    pub fn max_schedule(cfg: &SystemConfig, factory: &F) -> u64 {
        Self::help_step(cfg) + 6 + 2 * factory.max_steps() + 4
    }

    /// Last step at which fallback certificates are accepted. All
    /// correct-process certificate chains complete by `help_step + 3`; the
    /// slack only bounds how long a Byzantine certificate can wake decided
    /// processes into a no-op fallback.
    fn cert_deadline(&self) -> u64 {
        Self::help_step(&self.cfg) + 6
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<&Decision<V>> {
        self.decision.as_ref()
    }

    /// The finalize certificate backing the decision, when it came from
    /// the adaptive path.
    pub fn decide_proof(&self) -> Option<&DecideProof> {
        self.decide_proof.as_ref()
    }

    /// Whether this process executed `A_fallback`.
    pub fn used_fallback(&self) -> bool {
        self.fallback_ran
    }

    /// Whether this process initiated a non-silent phase as leader.
    pub fn led_nonsilent_phase(&self) -> bool {
        self.nonsilent_as_leader
    }

    /// Current commit level (0 = never committed).
    pub fn commit_level(&self) -> u32 {
        self.commit_level
    }

    /// The currently committed value, if any (Alg 4 lines 45–47).
    pub fn committed_value(&self) -> Option<&V> {
        self.commit.as_ref().map(|(v, _)| v)
    }

    /// Step at which this process first decided (for latency profiles).
    pub fn decided_at(&self) -> Option<u64> {
        self.decided_at
    }

    fn undecided(&self) -> bool {
        self.decision.is_none()
    }

    /// Adopt a finalize certificate (Alg 4 lines 52–54).
    ///
    /// Only at the certificate's scheduled arrival step (the round after
    /// its phase's round 5). Although the certificate is self-certifying,
    /// accepting it *later* would let the adversary hand a decision to a
    /// single process after the help round, splitting it from peers that
    /// are already headed into the fallback — exactly the hazard the
    /// paper's round-scoped handler avoids.
    fn try_adopt_finalize(
        &mut self,
        step: u64,
        from: ProcessId,
        phase: u32,
        value: &V,
        proof: &DecideProof,
    ) {
        if !self.undecided() {
            return;
        }
        if phase == 0 || phase as usize > self.cfg.n() {
            return;
        }
        if step != phase as u64 * PHASE_ROUNDS {
            return;
        }
        if from != self.cfg.leader_of_phase(phase) || proof.phase != phase {
            return;
        }
        if proof.verify(&self.cfg, &self.pki, value) {
            self.decision = Some(Decision::Value(value.clone()));
            self.decide_proof = Some(proof.clone());
            self.recovery_events
                .push(RecoveryEvent::CertReceived { kind: cert_kind::FINALIZE, step });
        }
    }

    /// Adopt a help answer (Alg 3 lines 13–14).
    fn try_adopt_help(&mut self, step: u64, value: &V, proof: &DecideProof) {
        if !self.undecided() {
            return;
        }
        if proof.phase == 0 || proof.phase as usize > self.cfg.n() {
            return;
        }
        if self.validity.validate(value) && proof.verify(&self.cfg, &self.pki, value) {
            self.decision = Some(Decision::Value(value.clone()));
            self.decide_proof = Some(proof.clone());
            self.recovery_events.push(RecoveryEvent::CertReceived { kind: cert_kind::HELP, step });
        }
    }

    fn fallback_qc_valid(&self, qc: &ThresholdSignature) -> bool {
        qc.threshold() == self.cfg.idk_threshold()
            && self
                .pki
                .verify_threshold(&HelpReqSig { session: self.cfg.session() }.signing_bytes(), qc)
                .is_ok()
    }

    /// Handle a fallback certificate (Alg 3 lines 16–23): adopt attached
    /// decisions during the safety window; on first receipt re-broadcast
    /// and schedule the fallback `2δ` later.
    fn handle_fallback_cert(
        &mut self,
        step: u64,
        qc: &ThresholdSignature,
        decision: &Option<(V, DecideProof)>,
        out: &mut WeakBaOutbox<V, F>,
    ) {
        if self.fallback.is_some() || step > self.cert_deadline() {
            return;
        }
        if !self.fallback_qc_valid(qc) {
            return;
        }
        // Safety window adoption (line 17–20): an undecided process takes
        // any certified decision as its fallback input.
        if let Some((v, proof)) = decision {
            if !self.no_safety_window
                && self.undecided()
                && self.validity.validate(v)
                && proof.verify(&self.cfg, &self.pki, v)
            {
                self.bu_decision = v.clone();
                self.bu_proof = Some(proof.clone());
            }
        }
        // First receipt: re-broadcast and schedule (lines 21–23).
        if self.fallback_start.is_none() {
            self.fallback_cert = Some(qc.clone());
            let own = self.own_cert_payload();
            out.push((Dest::All, WeakBaMsg::FallbackCert { qc: qc.clone(), decision: own }));
            self.fallback_start = Some(step + 2);
            self.recovery_events
                .push(RecoveryEvent::CertReceived { kind: cert_kind::FALLBACK, step });
        }
    }

    fn own_cert_payload(&self) -> Option<(V, DecideProof)> {
        match (&self.decision, &self.decide_proof) {
            (Some(Decision::Value(v)), Some(p)) => Some((v.clone(), p.clone())),
            _ => match (&self.bu_proof, ()) {
                (Some(p), ()) => Some((self.bu_decision.clone(), p.clone())),
                _ => None,
            },
        }
    }

    fn phase_of_step(&self, step: u64) -> Option<(u32, u64)> {
        let n = self.cfg.n() as u64;
        if step < n * PHASE_ROUNDS {
            Some(((step / PHASE_ROUNDS) as u32 + 1, step % PHASE_ROUNDS))
        } else {
            None
        }
    }

    fn run_phase_step(
        &mut self,
        phase: u32,
        sub: u64,
        inbox: &[(ProcessId, WeakBaMsgOf<V, F>)],
        out: &mut WeakBaOutbox<V, F>,
    ) {
        let leader = self.cfg.leader_of_phase(phase);
        let is_leader = leader == self.me;
        match sub {
            // Round 1: an undecided leader proposes its value (line 31–32).
            0 => {
                self.scratch.reset();
                if is_leader && self.undecided() {
                    self.nonsilent_as_leader = true;
                    self.scratch.my_proposal = Some(self.input.clone());
                    out.push((Dest::All, WeakBaMsg::Propose { phase, value: self.input.clone() }));
                }
            }
            // Round 2: vote for the first valid proposal, or report an
            // existing commit (lines 33–36).
            1 => {
                for (from, msg) in inbox {
                    if *from != leader || self.scratch.saw_propose {
                        continue;
                    }
                    if let WeakBaMsg::Propose { phase: p, value } = msg {
                        if *p != phase {
                            continue;
                        }
                        self.scratch.saw_propose = true;
                        match &self.commit {
                            None => {
                                if self.validity.validate(value) {
                                    let payload = VoteSig {
                                        session: self.cfg.session(),
                                        value,
                                        level: phase,
                                    };
                                    let sig = sign_payload(&self.key, &payload);
                                    self.note_signed(&payload);
                                    out.push((
                                        Dest::To(leader),
                                        WeakBaMsg::Vote { phase, value: value.clone(), sig },
                                    ));
                                }
                            }
                            Some((w, proof)) => {
                                out.push((
                                    Dest::To(leader),
                                    WeakBaMsg::CommitReply {
                                        phase,
                                        value: w.clone(),
                                        proof: proof.clone(),
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            // Round 3 (leader): relay the highest-level commit, else batch
            // a fresh commit certificate from quorum votes (lines 37–42).
            2 => {
                if !is_leader || self.scratch.my_proposal.is_none() {
                    return;
                }
                let my_value = self.scratch.my_proposal.clone().expect("proposal set");
                let mut best_commit: Option<(V, CommitProof)> = None;
                let mut votes: BTreeMap<ProcessId, Signature> = BTreeMap::new();
                for (from, msg) in inbox {
                    match msg {
                        WeakBaMsg::CommitReply { phase: p, value, proof }
                            if *p == phase
                                && proof.verify(&self.cfg, &self.pki, value)
                                && best_commit
                                    .as_ref()
                                    .is_none_or(|(_, b)| proof.level > b.level) =>
                        {
                            best_commit = Some((value.clone(), proof.clone()));
                        }
                        WeakBaMsg::Vote { phase: p, value, sig }
                            if *p == phase
                                && *value == my_value
                                && sig.signer() == *from
                                && verify_payload(
                                    &self.pki,
                                    &VoteSig {
                                        session: self.cfg.session(),
                                        value: &my_value,
                                        level: phase,
                                    },
                                    sig,
                                ) =>
                        {
                            votes.insert(*from, sig.clone());
                        }
                        _ => {}
                    }
                }
                if let Some((w, proof)) = best_commit {
                    self.scratch.commit_sent = Some(w.clone());
                    out.push((Dest::All, WeakBaMsg::CommitCert { phase, value: w, proof }));
                } else if votes.len() >= self.cfg.quorum() {
                    let payload =
                        VoteSig { session: self.cfg.session(), value: &my_value, level: phase };
                    let shares: Vec<Signature> = votes.into_values().collect();
                    let qc = self
                        .pki
                        .combine(self.cfg.quorum(), &payload.signing_bytes(), &shares)
                        .expect("verified shares combine");
                    self.scratch.commit_sent = Some(my_value.clone());
                    out.push((
                        Dest::All,
                        WeakBaMsg::CommitCert {
                            phase,
                            value: my_value,
                            proof: CommitProof { level: phase, qc },
                        },
                    ));
                }
            }
            // Round 4: accept the leader's commit certificate if its level
            // is not older than ours; send a decide share (lines 43–47).
            3 => {
                for (from, msg) in inbox {
                    if *from != leader {
                        continue;
                    }
                    if let WeakBaMsg::CommitCert { phase: p, value, proof } = msg {
                        if *p != phase
                            || proof.level < self.commit_level
                            || !proof.verify(&self.cfg, &self.pki, value)
                        {
                            continue;
                        }
                        let payload = DecideSig { session: self.cfg.session(), value, phase };
                        let sig = sign_payload(&self.key, &payload);
                        self.note_signed(&payload);
                        out.push((
                            Dest::To(leader),
                            WeakBaMsg::Decide { phase, value: value.clone(), sig },
                        ));
                        self.commit = Some((value.clone(), proof.clone()));
                        self.commit_level = proof.level;
                        self.recovery_events.push(RecoveryEvent::CommitLevel(proof.level as u64));
                        break;
                    }
                }
            }
            // Round 5 (leader): batch quorum decide shares into a finalize
            // certificate (lines 48–51).
            4 => {
                if !is_leader {
                    return;
                }
                let Some(w) = self.scratch.commit_sent.clone() else {
                    return;
                };
                let payload = DecideSig { session: self.cfg.session(), value: &w, phase };
                let mut shares: BTreeMap<ProcessId, Signature> = BTreeMap::new();
                for (from, msg) in inbox {
                    if let WeakBaMsg::Decide { phase: p, value, sig } = msg {
                        if *p == phase
                            && *value == w
                            && sig.signer() == *from
                            && verify_payload(&self.pki, &payload, sig)
                        {
                            shares.insert(*from, sig.clone());
                        }
                    }
                }
                if shares.len() >= self.cfg.quorum() {
                    let qc = self
                        .pki
                        .combine(
                            self.cfg.quorum(),
                            &payload.signing_bytes(),
                            &shares.into_values().collect::<Vec<_>>(),
                        )
                        .expect("verified shares combine");
                    out.push((
                        Dest::All,
                        WeakBaMsg::FinalizeCert {
                            phase,
                            value: w,
                            proof: DecideProof { phase, qc },
                        },
                    ));
                }
            }
            _ => unreachable!("phase has 5 rounds"),
        }
    }

    fn start_fallback_if_due(&mut self, step: u64) {
        if self.fallback.is_some() {
            return;
        }
        let Some(start) = self.fallback_start else { return };
        if step != start {
            return;
        }
        // Line 15: deciders run the fallback on their decision so strong
        // unanimity upholds agreement.
        if let Some(Decision::Value(v)) = &self.decision {
            self.bu_decision = v.clone();
        }
        let inner = self.factory.create(self.me, self.bu_decision.clone());
        let mut adapter = SkewAdapter::bounded(inner, start, self.factory.max_steps());
        for (from, env) in self.pending_fb.drain(..) {
            adapter.deliver(from, env);
        }
        self.fallback = Some(adapter);
        self.fallback_ran = true;
    }
}

impl<V, P, F> SubProtocol for WeakBa<V, P, F>
where
    V: Value,
    P: Validity<V>,
    F: FallbackFactory<V>,
{
    type Msg = WeakBaMsg<V, FallbackMsgOf<V, F>>;
    type Output = Decision<V>;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    ) {
        if self.finished {
            return;
        }
        let help_step = Self::help_step(&self.cfg);

        // --- Global handlers: finalize certificates, help answers,
        // fallback certificates, fallback traffic. Run before scheduled
        // actions so a finalize arriving "now" suppresses a help_req.
        let mut decided_via_help = false;
        for (from, msg) in inbox {
            match msg {
                WeakBaMsg::FinalizeCert { phase, value, proof } => {
                    self.try_adopt_finalize(step, *from, *phase, value, proof);
                }
                WeakBaMsg::Help { value, proof }
                    // Exactly round 3 of the help phase (Alg 3 line 13);
                    // a later help answer must not create a lone decider
                    // after fallback coordination has begun.
                    if step == help_step + 2 => {
                        let was = self.undecided();
                        self.try_adopt_help(step, value, proof);
                        decided_via_help = was && !self.undecided();
                    }
                _ => {}
            }
        }
        // Gap-fix for Lemma 19's propagation claim ("they receive v from
        // p"): a process that decides via a help answer *after* already
        // broadcasting its fallback certificate (necessarily with an
        // empty decision) re-broadcasts the certificate with its decision
        // attached, so the 2δ safety window delivers the decided value to
        // every fallback participant before any of them starts.
        if decided_via_help && self.fallback_start.is_some() && !self.no_safety_window {
            if let (Some(qc), Some(Decision::Value(v)), Some(p)) =
                (&self.fallback_cert, &self.decision, &self.decide_proof)
            {
                out.push((
                    Dest::All,
                    WeakBaMsg::FallbackCert {
                        qc: qc.clone(),
                        decision: Some((v.clone(), p.clone())),
                    },
                ));
            }
        }
        let certs: Vec<(ThresholdSignature, Option<(V, DecideProof)>)> = inbox
            .iter()
            .filter_map(|(_, m)| match m {
                WeakBaMsg::FallbackCert { qc, decision } => Some((qc.clone(), decision.clone())),
                _ => None,
            })
            .collect();
        for (qc, decision) in certs {
            self.handle_fallback_cert(step, &qc, &decision, out);
        }
        for (from, msg) in inbox {
            if let WeakBaMsg::Fallback(env) = msg {
                match &mut self.fallback {
                    Some(ad) => ad.deliver(*from, env.clone()),
                    None => {
                        if self.fallback_start.is_some() {
                            self.pending_fb.push((*from, env.clone()));
                        }
                        // Fallback traffic without any certificate seen is
                        // Byzantine noise; drop it.
                    }
                }
            }
        }

        // --- Scheduled actions.
        if let Some((phase, sub)) = self.phase_of_step(step) {
            self.run_phase_step(phase, sub, inbox, out);
        } else if step == help_step {
            // Alg 3 lines 5–6.
            if self.undecided() {
                let payload = HelpReqSig { session: self.cfg.session() };
                let sig = sign_payload(&self.key, &payload);
                self.note_signed(&payload);
                out.push((Dest::All, WeakBaMsg::HelpReq { sig }));
            }
        } else if step == help_step + 1 {
            // Alg 3 lines 7–12.
            let payload = HelpReqSig { session: self.cfg.session() };
            for (from, msg) in inbox {
                if let WeakBaMsg::HelpReq { sig } = msg {
                    if sig.signer() == *from && verify_payload(&self.pki, &payload, sig) {
                        self.help_sigs.insert(*from, sig.clone());
                        if let (Some(Decision::Value(v)), Some(p)) =
                            (&self.decision, &self.decide_proof)
                        {
                            if *from != self.me {
                                out.push((
                                    Dest::To(*from),
                                    WeakBaMsg::Help { value: v.clone(), proof: p.clone() },
                                ));
                            }
                        }
                    }
                }
            }
            if self.help_sigs.len() >= self.cfg.idk_threshold() && self.fallback_start.is_none() {
                let shares: Vec<Signature> = self.help_sigs.values().cloned().collect();
                let qc = self
                    .pki
                    .combine(self.cfg.idk_threshold(), &payload.signing_bytes(), &shares)
                    .expect("verified shares combine");
                self.fallback_cert = Some(qc.clone());
                let own = self.own_cert_payload();
                out.push((Dest::All, WeakBaMsg::FallbackCert { qc, decision: own }));
                self.fallback_start = Some(step + 2);
            }
        }

        // --- Fallback execution.
        self.start_fallback_if_due(step);
        let mut finished_fb: Option<V> = None;
        if let Some(ad) = &mut self.fallback {
            let mut fb_out = Vec::new();
            ad.tick(step, &mut fb_out);
            for (dest, env) in fb_out {
                out.push((dest, WeakBaMsg::Fallback(env)));
            }
            if ad.done() {
                finished_fb = ad.inner().output();
            }
        }
        if let Some(fb_val) = finished_fb {
            // Alg 3 lines 25–29.
            if self.undecided() {
                self.decision = Some(if self.validity.validate(&fb_val) {
                    Decision::Value(fb_val)
                } else {
                    Decision::Bot
                });
            }
            self.fallback = None;
            self.finished = true;
        }

        if let (Some(decision), None) = (self.decision.as_ref(), self.decided_at) {
            self.decided_at = Some(step);
            let bytes = match decision {
                Decision::Value(v) => {
                    let mut enc = Encoder::new();
                    v.encode_value(&mut enc);
                    enc.into_bytes()
                }
                // ⊥ journals as an empty value.
                Decision::Bot => Vec::new(),
            };
            self.recovery_events.push(RecoveryEvent::Decided(bytes));
        }
        // A decided process with no pending fallback finishes once the
        // certificate acceptance window has passed.
        if !self.finished
            && step > self.cert_deadline()
            && self.fallback.is_none()
            && self.fallback_start.is_none_or(|s| s <= step)
            && !self.undecided()
        {
            self.finished = true;
        }
    }

    fn output(&self) -> Option<Decision<V>> {
        if self.finished {
            self.decision.clone()
        } else {
            None
        }
    }

    fn done(&self) -> bool {
        self.finished
    }

    fn drain_recovery_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.recovery_events)
    }
}

impl<V, P, F> std::fmt::Debug for WeakBa<V, P, F>
where
    V: Value,
    P: Validity<V>,
    F: FallbackFactory<V>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeakBa")
            .field("me", &self.me)
            .field("decision", &self.decision)
            .field("commit_level", &self.commit_level)
            .field("fallback_ran", &self.fallback_ran)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::EchoFallbackFactory;
    use crate::subprotocol::LockstepAdapter;
    use crate::validity::AlwaysValid;
    use meba_crypto::trusted_setup;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type Wba = WeakBa<u64, AlwaysValid, EchoFallbackFactory>;
    type Msg = <Wba as SubProtocol>::Msg;

    fn make_sim(n: usize, inputs: &[u64], crashed: &[u32]) -> Simulation<Msg> {
        let cfg = SystemConfig::new(n, 7).unwrap();
        let (pki, keys) = trusted_setup(n, 11);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
            } else {
                let wba = WeakBa::new(
                    cfg,
                    id,
                    key,
                    pki.clone(),
                    AlwaysValid,
                    EchoFallbackFactory,
                    inputs[i],
                );
                actors.push(Box::new(LockstepAdapter::new(id, wba)));
            }
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn decisions(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<Decision<u64>> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let a: &LockstepAdapter<Wba> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect()
    }

    #[test]
    fn unanimous_failure_free_decides_in_first_phase() {
        let n = 7;
        let mut sim = make_sim(n, &[42; 7], &[]);
        sim.run_until_done(200).unwrap();
        let ds = decisions(&sim, &[]);
        assert!(ds.iter().all(|d| *d == Decision::Value(42)));
        // No fallback ran.
        for i in 0..n as u32 {
            let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback());
        }
    }

    #[test]
    fn mixed_inputs_failure_free_agree_on_leader_value() {
        let inputs = [3, 1, 4, 1, 5, 9, 2];
        let mut sim = make_sim(7, &inputs, &[]);
        sim.run_until_done(200).unwrap();
        let ds = decisions(&sim, &[]);
        // Phase 1 leader is p1 (j=1, p_{1 mod 7}); its proposal wins.
        assert!(ds.iter().all(|d| *d == ds[0]));
        assert_eq!(ds[0], Decision::Value(inputs[1]));
    }

    #[test]
    fn one_crash_below_adaptive_bound_no_fallback() {
        // n=9, t=4: adaptive bound = (9-4-1)/2 = 2, so f=1 is safe.
        let inputs = [7u64; 9];
        let mut sim = make_sim(9, &inputs, &[1]);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &[1]);
        assert!(ds.iter().all(|d| *d == Decision::Value(7)));
        for i in (0..9u32).filter(|i| *i != 1) {
            let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback(), "Lemma 6: no fallback below the bound");
        }
    }

    #[test]
    fn max_crashes_trigger_fallback_and_still_agree() {
        // n=5, t=2: crash 2 — quorum 4 unreachable, fallback must run.
        let inputs = [8u64; 5];
        let crashed = [3u32, 4];
        let mut sim = make_sim(5, &inputs, &crashed);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.iter().all(|d| *d == Decision::Value(8)), "strong unanimity via fallback");
        for i in 0..3u32 {
            let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(a.inner().used_fallback());
        }
    }

    #[test]
    fn fallback_with_divergent_inputs_agrees() {
        let inputs = [1u64, 2, 3, 0, 0];
        let crashed = [3u32, 4];
        let mut sim = make_sim(5, &inputs, &crashed);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "agreement under fallback: {ds:?}");
    }

    #[test]
    fn words_failure_free_linear_in_n() {
        for n in [5usize, 9, 17] {
            let inputs = vec![1u64; n];
            let mut sim = make_sim(n, &inputs, &[]);
            sim.run_until_done(600).unwrap();
            let words = sim.metrics().correct_words();
            // O(n(f+1)) with f=0: generously c*n with c = 16.
            assert!(words <= 16 * n as u64, "n={n}: failure-free weak BA used {words} words");
        }
    }

    #[test]
    fn silent_phases_after_first_decision() {
        let n = 7;
        let mut sim = make_sim(n, &[5; 7], &[]);
        sim.run_until_done(300).unwrap();
        // Only the phase-1 leader should have gone non-silent.
        let mut nonsilent = 0;
        for i in 0..n as u32 {
            let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            if a.inner().led_nonsilent_phase() {
                nonsilent += 1;
            }
        }
        assert_eq!(nonsilent, 1);
    }
}
