//! System configuration: `n`, `t`, thresholds and leader rotation.

use meba_crypto::ProcessId;
use std::error::Error;
use std::fmt;

/// Error constructing a [`SystemConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `n` must satisfy `n >= 2t + 1` with `t >= 1`.
    BadResilience {
        /// Requested system size.
        n: usize,
        /// Requested fault threshold.
        t: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadResilience { n, t } => {
                write!(f, "resilience requires n >= 2t + 1 and t >= 1, got n={n}, t={t}")
            }
        }
    }
}

impl Error for ConfigError {}

/// Static parameters of one protocol instance.
///
/// The paper's protocols assume optimal resilience `n = 2t + 1`
/// ([`SystemConfig::new`]); configurations with slack (`n > 2t + 1`) are
/// also accepted ([`SystemConfig::with_resilience`]) since every bound in
/// the protocols is written in terms of `n` and `t`.
///
/// `session` domain-separates signatures across protocol instances so a
/// certificate from one run cannot be replayed into another.
///
/// # Examples
///
/// ```
/// use meba_core::SystemConfig;
///
/// let cfg = SystemConfig::new(7, 0)?;
/// assert_eq!(cfg.t(), 3);
/// assert_eq!(cfg.quorum(), 6);           // ⌈(n+t+1)/2⌉
/// assert_eq!(cfg.idk_threshold(), 4);    // t + 1
/// assert_eq!(cfg.adaptive_fault_bound(), 1); // (n-t-1)/2 exclusive bound
/// # Ok::<(), meba_core::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    n: usize,
    t: usize,
    session: u64,
    quorum_override: Option<usize>,
}

impl SystemConfig {
    /// Creates a configuration with optimal resilience: odd `n = 2t + 1`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadResilience`] if `n` is even or below 3.
    pub fn new(n: usize, session: u64) -> Result<Self, ConfigError> {
        if n < 3 || n.is_multiple_of(2) {
            return Err(ConfigError::BadResilience { n, t: n.saturating_sub(1) / 2 });
        }
        Self::with_resilience(n, (n - 1) / 2, session)
    }

    /// Creates a configuration with explicit `t` (requires `n >= 2t + 1`).
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadResilience`] if `t = 0` or `n < 2t + 1`.
    pub fn with_resilience(n: usize, t: usize, session: u64) -> Result<Self, ConfigError> {
        if t == 0 || n < 2 * t + 1 {
            return Err(ConfigError::BadResilience { n, t });
        }
        Ok(SystemConfig { n, t, session, quorum_override: None })
    }

    /// **Ablation only (experiment E8):** replaces the safety quorum
    /// `⌈(n+t+1)/2⌉` with an arbitrary threshold. Setting it to the naive
    /// `t + 1` demonstrates the agreement violation the paper's threshold
    /// choice prevents (§6: a `t + 1` certificate "is not very useful as
    /// it does not guarantee the desired intersection property").
    pub fn unsafe_with_quorum(mut self, quorum: usize) -> Self {
        self.quorum_override = Some(quorum);
        self
    }

    /// System size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault threshold `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Session identifier mixed into all signed messages.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Returns a copy with a different session id — used by multi-shot
    /// drivers to domain-separate each protocol instance's signatures.
    pub fn with_session(mut self, session: u64) -> Self {
        self.session = session;
        self
    }

    /// The safety quorum `⌈(n + t + 1)/2⌉` (§6): two quorums of this size
    /// intersect in at least one correct process.
    pub fn quorum(&self) -> usize {
        self.quorum_override.unwrap_or_else(|| meba_crypto::quorum_threshold(self.n, self.t))
    }

    /// The `t + 1` threshold (idk certificates, fallback certificates,
    /// propose certificates): at least one contributor is correct.
    pub fn idk_threshold(&self) -> usize {
        self.t + 1
    }

    /// Exclusive bound on `f` below which the adaptive path is guaranteed
    /// to decide without the fallback: `f < (n - t - 1)/2` (Lemma 6).
    pub fn adaptive_fault_bound(&self) -> usize {
        (self.n - self.t - 1) / 2
    }

    /// Leader of phase `j` (1-based), rotating round-robin: `p_{j mod n}`.
    pub fn leader_of_phase(&self, j: u32) -> ProcessId {
        ProcessId(j % self.n as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_resilience() {
        let cfg = SystemConfig::new(9, 1).unwrap();
        assert_eq!(cfg.n(), 9);
        assert_eq!(cfg.t(), 4);
        assert_eq!(cfg.session(), 1);
        assert_eq!(cfg.quorum(), 7);
        assert_eq!(cfg.idk_threshold(), 5);
        assert_eq!(cfg.adaptive_fault_bound(), 2);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(SystemConfig::new(4, 0).is_err());
        assert!(SystemConfig::new(1, 0).is_err());
        assert!(SystemConfig::with_resilience(4, 2, 0).is_err());
        assert!(SystemConfig::with_resilience(5, 0, 0).is_err());
    }

    #[test]
    fn slack_resilience_allowed() {
        let cfg = SystemConfig::with_resilience(10, 3, 0).unwrap();
        assert_eq!(cfg.quorum(), 7);
        assert_eq!(cfg.adaptive_fault_bound(), 3);
    }

    #[test]
    fn leader_rotation_covers_all() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let leaders: Vec<_> = (1..=5).map(|j| cfg.leader_of_phase(j)).collect();
        let mut sorted: Vec<_> = leaders.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn quorum_reachable_below_adaptive_bound() {
        for t in 1..60usize {
            let n = 2 * t + 1;
            let cfg = SystemConfig::new(n, 0).unwrap();
            for f in 0..cfg.adaptive_fault_bound() {
                assert!(n - f >= cfg.quorum(), "n={n} f={f}");
            }
        }
    }
}
