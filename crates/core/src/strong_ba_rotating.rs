//! **Extension (§8 direction):** rotating-leader binary strong BA.
//!
//! The paper leaves open whether a fully adaptive strong BA exists and
//! proves its Algorithm 5 linear only in the failure-free case — a single
//! fixed leader and an `(n, n)` decide certificate make *any* fault fall
//! back. This extension assembles the paper's own ingredients into a
//! strong BA that stays linear in more runs:
//!
//! * `t + 1` sequential leader attempts (so at least one leader is
//!   correct), each a 4-round Algorithm-5-style exchange;
//! * the decide certificate needs only the §6 quorum `⌈(n+t+1)/2⌉`
//!   instead of `n`, so up to `(n−t−1)/2` absentees cannot derail a
//!   correct leader;
//! * decide shares bind **only the value** (not the attempt), and a
//!   correct process decide-signs at most one value ever — so two
//!   certificates on different values would need `2q − n > t` common
//!   signers, i.e. a correct double-signer, which cannot exist. The
//!   certificate value is therefore unique across all attempts, which is
//!   exactly the paper's quorum-intersection trick.
//!
//! Guarantees: agreement, termination and strong unanimity always (the
//! fallback path mirrors Algorithm 5, 2δ window included). Linear words
//! when the honest inputs are unanimous, `f < (n−t−1)/2`, and one of the
//! first `f + 1` leaders is correct; quadratic otherwise. With split
//! honest inputs the `t + 1` propose certificate may be unreachable under
//! faults and the protocol falls back — full adaptivity for strong BA
//! remains open, as the paper says (and Elsheimy et al. later resolved).

use crate::config::SystemConfig;
use crate::signing::{sign_payload, verify_payload, StrongDecideSig, StrongInputSig};
use crate::strong_ba::{StrongBaMsg, StrongFallbackMsgOf};
use crate::subprotocol::{FallbackFactory, SkewAdapter, SkewEnvelope, SubProtocol};
use meba_crypto::{Pki, ProcessId, SecretKey, Signable, Signature, ThresholdSignature};
use meba_sim::Dest;
use std::collections::BTreeMap;

/// Rounds per leader attempt.
pub const ATTEMPT_ROUNDS: u64 = 4;

/// Rotating-leader binary strong BA (see module docs). Reuses
/// [`StrongBaMsg`] — attempts need no tags because every signed payload
/// binds only the session and value.
pub struct RotatingStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    factory: F,
    input: bool,

    decision: Option<bool>,
    proof: Option<ThresholdSignature>,
    /// The single value this process has decide-signed (signed at most
    /// one value, ever — the global uniqueness rule).
    signed_value: Option<bool>,
    bu_decision: bool,
    bu_proof: Option<ThresholdSignature>,
    fallback_start: Option<u64>,
    fallback: Option<SkewAdapter<F::Protocol>>,
    pending_fb: Vec<(ProcessId, SkewEnvelope<StrongFallbackMsgOf<F>>)>,
    fallback_ran: bool,
    decided_at: Option<u64>,
    finished: bool,
}

impl<F> RotatingStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    /// Creates an instance with binary input `input`.
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        input: bool,
    ) -> Self {
        RotatingStrongBa {
            cfg,
            me,
            key,
            pki,
            factory,
            input,
            decision: None,
            proof: None,
            signed_value: None,
            bu_decision: input,
            bu_proof: None,
            fallback_start: None,
            fallback: None,
            pending_fb: Vec::new(),
            fallback_ran: false,
            decided_at: None,
            finished: false,
        }
    }

    /// Number of leader attempts (`t + 1`, so one leader is correct).
    pub fn attempts(cfg: &SystemConfig) -> u64 {
        cfg.t() as u64 + 1
    }

    /// First round of the fallback coordination phase.
    pub fn coordination_start(cfg: &SystemConfig) -> u64 {
        Self::attempts(cfg) * ATTEMPT_ROUNDS + 1
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<bool> {
        self.decision
    }

    /// Whether this process executed `A_fallback`.
    pub fn used_fallback(&self) -> bool {
        self.fallback_ran
    }

    /// Step at which the decision was reached.
    pub fn decided_at(&self) -> Option<u64> {
        self.decided_at
    }

    fn leader_of_attempt(&self, j: u64) -> ProcessId {
        ProcessId((j % self.cfg.n() as u64) as u32)
    }

    fn attempt_of_step(&self, step: u64) -> Option<(u64, u64)> {
        let total = Self::attempts(&self.cfg) * ATTEMPT_ROUNDS;
        if step < total {
            Some((step / ATTEMPT_ROUNDS, step % ATTEMPT_ROUNDS))
        } else {
            None
        }
    }

    fn decide_cert_valid(&self, value: bool, qc: &ThresholdSignature) -> bool {
        qc.threshold() == self.cfg.quorum()
            && self
                .pki
                .verify_threshold(
                    &StrongDecideSig { session: self.cfg.session(), value }.signing_bytes(),
                    qc,
                )
                .is_ok()
    }

    fn fallback_deadline(&self) -> u64 {
        Self::coordination_start(&self.cfg) + 6
    }

    fn handle_fallback_msg(
        &mut self,
        step: u64,
        decision: &Option<(bool, ThresholdSignature)>,
        out: &mut Vec<(Dest, StrongBaMsg<StrongFallbackMsgOf<F>>)>,
    ) {
        if self.fallback.is_some() || step > self.fallback_deadline() {
            return;
        }
        if let Some((v, qc)) = decision {
            if self.decision.is_none() && self.decide_cert_valid(*v, qc) {
                self.bu_decision = *v;
                self.bu_proof = Some(qc.clone());
            }
        }
        if self.fallback_start.is_none() {
            let own = match (self.decision, &self.proof) {
                (Some(v), Some(p)) => Some((v, p.clone())),
                _ => self.bu_proof.clone().map(|p| (self.bu_decision, p)),
            };
            out.push((Dest::All, StrongBaMsg::Fallback { decision: own }));
            self.fallback_start = Some(step + 2);
        }
    }

    fn start_fallback_if_due(&mut self, step: u64) {
        if self.fallback.is_some() {
            return;
        }
        let Some(start) = self.fallback_start else { return };
        if step != start {
            return;
        }
        if let Some(v) = self.decision {
            self.bu_decision = v;
        }
        let inner = self.factory.create(self.me, self.bu_decision);
        let mut adapter = SkewAdapter::bounded(inner, start, self.factory.max_steps());
        for (from, env) in self.pending_fb.drain(..) {
            adapter.deliver(from, env);
        }
        self.fallback = Some(adapter);
        self.fallback_ran = true;
    }
}

impl<F> SubProtocol for RotatingStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    type Msg = StrongBaMsg<StrongFallbackMsgOf<F>>;
    type Output = bool;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    ) {
        if self.finished {
            return;
        }
        let coord = Self::coordination_start(&self.cfg);

        // --- Global handlers.
        // A decide certificate is accepted at the round after any
        // attempt's certificate broadcast (sub-round 0 of the next
        // attempt, or the first coordination round). The certificate
        // value is globally unique, so arrival timing cannot split
        // deciders by value — only by *whether* they decided, which the
        // fallback coordination handles as in Algorithm 5.
        let cert_arrival = self
            .attempt_of_step(step)
            .map(|(_, sub)| sub == 0 && step > 0)
            .unwrap_or(step == coord - 1 || step == coord);
        if cert_arrival {
            for (from, msg) in inbox {
                if let StrongBaMsg::DecideCert { value, qc } = msg {
                    // The certificate may come from whichever leader
                    // formed it in the previous attempt.
                    let prev_attempt = (step - 1) / ATTEMPT_ROUNDS;
                    if *from == self.leader_of_attempt(prev_attempt)
                        && self.decision.is_none()
                        && self.decide_cert_valid(*value, qc)
                    {
                        self.decision = Some(*value);
                        self.proof = Some(qc.clone());
                    }
                }
            }
        }
        let fb_msgs: Vec<Option<(bool, ThresholdSignature)>> = inbox
            .iter()
            .filter_map(|(_, m)| match m {
                StrongBaMsg::Fallback { decision } if step >= coord => Some(decision.clone()),
                _ => None,
            })
            .collect();
        for d in fb_msgs {
            self.handle_fallback_msg(step, &d, out);
        }
        for (from, msg) in inbox {
            if let StrongBaMsg::Inner(env) = msg {
                match &mut self.fallback {
                    Some(ad) => ad.deliver(*from, env.clone()),
                    None if self.fallback_start.is_some() => {
                        self.pending_fb.push((*from, env.clone()));
                    }
                    None => {}
                }
            }
        }

        // --- Attempt rounds.
        if let Some((attempt, sub)) = self.attempt_of_step(step) {
            let leader = self.leader_of_attempt(attempt);
            match sub {
                // Undecided processes send their signed input.
                0 => {
                    if self.decision.is_none() {
                        let sig = sign_payload(
                            &self.key,
                            &StrongInputSig { session: self.cfg.session(), value: self.input },
                        );
                        out.push((Dest::To(leader), StrongBaMsg::Input { value: self.input, sig }));
                    }
                }
                // Leader: batch t+1 matching inputs into a propose cert.
                1 => {
                    if self.me == leader && self.decision.is_none() {
                        let mut by_value: BTreeMap<bool, BTreeMap<ProcessId, Signature>> =
                            BTreeMap::new();
                        for (from, msg) in inbox {
                            if let StrongBaMsg::Input { value, sig } = msg {
                                let payload =
                                    StrongInputSig { session: self.cfg.session(), value: *value };
                                if sig.signer() == *from && verify_payload(&self.pki, &payload, sig)
                                {
                                    by_value.entry(*value).or_default().insert(*from, sig.clone());
                                }
                            }
                        }
                        for (value, sigs) in by_value {
                            if sigs.len() >= self.cfg.idk_threshold() {
                                let payload = StrongInputSig { session: self.cfg.session(), value };
                                let qc = self
                                    .pki
                                    .combine(
                                        self.cfg.idk_threshold(),
                                        &payload.signing_bytes(),
                                        &sigs.into_values().collect::<Vec<_>>(),
                                    )
                                    .expect("verified shares combine");
                                out.push((Dest::All, StrongBaMsg::Propose { value, qc }));
                                break;
                            }
                        }
                    }
                }
                // Decide-share for a valid proposal — at most one value
                // ever; re-signing the same value is idempotent and keeps
                // later correct leaders supplied.
                2 => {
                    for (from, msg) in inbox {
                        if let StrongBaMsg::Propose { value, qc } = msg {
                            let payload =
                                StrongInputSig { session: self.cfg.session(), value: *value };
                            let valid = *from == leader
                                && qc.threshold() == self.cfg.idk_threshold()
                                && self.pki.verify_threshold(&payload.signing_bytes(), qc).is_ok();
                            if valid && self.signed_value.is_none_or(|sv| sv == *value) {
                                self.signed_value = Some(*value);
                                let sig = sign_payload(
                                    &self.key,
                                    &StrongDecideSig { session: self.cfg.session(), value: *value },
                                );
                                out.push((
                                    Dest::To(leader),
                                    StrongBaMsg::DecideShare { value: *value, sig },
                                ));
                                break;
                            }
                        }
                    }
                }
                // Leader: batch quorum decide shares.
                3 => {
                    if self.me == leader {
                        let mut by_value: BTreeMap<bool, BTreeMap<ProcessId, Signature>> =
                            BTreeMap::new();
                        for (from, msg) in inbox {
                            if let StrongBaMsg::DecideShare { value, sig } = msg {
                                let payload =
                                    StrongDecideSig { session: self.cfg.session(), value: *value };
                                if sig.signer() == *from && verify_payload(&self.pki, &payload, sig)
                                {
                                    by_value.entry(*value).or_default().insert(*from, sig.clone());
                                }
                            }
                        }
                        for (value, sigs) in by_value {
                            if sigs.len() >= self.cfg.quorum() {
                                let payload =
                                    StrongDecideSig { session: self.cfg.session(), value };
                                let qc = self
                                    .pki
                                    .combine(
                                        self.cfg.quorum(),
                                        &payload.signing_bytes(),
                                        &sigs.into_values().collect::<Vec<_>>(),
                                    )
                                    .expect("verified shares combine");
                                out.push((Dest::All, StrongBaMsg::DecideCert { value, qc }));
                                break;
                            }
                        }
                    }
                }
                _ => unreachable!("attempt has 4 rounds"),
            }
        } else if step == coord {
            // Undecided processes trigger the fallback (Alg 5 line 17).
            if self.decision.is_none() && self.fallback_start.is_none() {
                out.push((Dest::All, StrongBaMsg::Fallback { decision: None }));
                self.fallback_start = Some(step + 2);
            }
        }

        // --- Fallback execution.
        self.start_fallback_if_due(step);
        let mut finished_fb: Option<bool> = None;
        if let Some(ad) = &mut self.fallback {
            let mut fb_out = Vec::new();
            ad.tick(step, &mut fb_out);
            for (dest, env) in fb_out {
                out.push((dest, StrongBaMsg::Inner(env)));
            }
            if ad.done() {
                finished_fb = ad.inner().output();
            }
        }
        if let Some(v) = finished_fb {
            if self.decision.is_none() {
                self.decision = Some(v);
            }
            self.fallback = None;
            self.finished = true;
        }

        if !self.finished
            && step > self.fallback_deadline()
            && self.fallback.is_none()
            && self.fallback_start.is_none_or(|s| s <= step)
            && self.decision.is_some()
        {
            self.finished = true;
        }

        if self.decision.is_some() && self.decided_at.is_none() {
            self.decided_at = Some(step);
        }
    }

    fn output(&self) -> Option<bool> {
        if self.finished {
            self.decision
        } else {
            None
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

impl<F> std::fmt::Debug for RotatingStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RotatingStrongBa")
            .field("me", &self.me)
            .field("decision", &self.decision)
            .field("fallback_ran", &self.fallback_ran)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::EchoFallbackFactory;
    use crate::subprotocol::LockstepAdapter;
    use meba_crypto::trusted_setup;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type Rba = RotatingStrongBa<EchoFallbackFactory>;
    type Msg = <Rba as SubProtocol>::Msg;

    fn make_sim(inputs: &[bool], crashed: &[u32]) -> Simulation<Msg> {
        let n = inputs.len();
        let cfg = SystemConfig::new(n, 6).unwrap();
        let (pki, keys) = trusted_setup(n, 41);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
            } else {
                let rba = RotatingStrongBa::new(
                    cfg,
                    id,
                    key,
                    pki.clone(),
                    EchoFallbackFactory,
                    inputs[i],
                );
                actors.push(Box::new(LockstepAdapter::new(id, rba)));
            }
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn decisions(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<bool> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let a: &LockstepAdapter<Rba> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect()
    }

    #[test]
    fn failure_free_decides_in_first_attempt() {
        let mut sim = make_sim(&[true; 7], &[]);
        sim.run_until_done(300).unwrap();
        let ds = decisions(&sim, &[]);
        assert!(ds.iter().all(|&d| d));
        for i in 0..7u32 {
            let a: &LockstepAdapter<Rba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback());
            assert_eq!(a.inner().decided_at(), Some(4), "first attempt decides");
        }
    }

    #[test]
    fn crashed_leader_next_attempt_decides_without_fallback() {
        // This is exactly what Algorithm 5 cannot do: p0 (the fixed
        // leader) is down, yet the run stays linear — attempt 2's leader
        // p1 finishes because the quorum needs only ⌈(n+t+1)/2⌉ = 6 of 7
        // shares (n=9: 7 of 9).
        let crashed = [0u32];
        let mut sim = make_sim(&[true; 9], &crashed);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.iter().all(|&d| d), "strong unanimity");
        for i in 1..9u32 {
            let a: &LockstepAdapter<Rba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback(), "p{i} must not fall back");
            assert_eq!(a.inner().decided_at(), Some(8), "second attempt decides");
        }
    }

    #[test]
    fn linear_words_with_crashed_leader() {
        let crashed = [0u32];
        for n in [9usize, 17, 33] {
            let mut sim = make_sim(&vec![true; n], &crashed);
            sim.run_until_done(60 * n as u64).unwrap();
            let words = sim.metrics().correct_words();
            assert!(
                words <= 14 * n as u64,
                "n={n}: {words} words — must stay linear despite the crashed leader"
            );
        }
    }

    #[test]
    fn beyond_bound_falls_back_and_agrees() {
        // n=9, t=4, adaptive bound 2: crash 4 (=t) — quorum unreachable,
        // fallback must run and unanimity must survive it.
        let crashed = [0u32, 2, 4, 6];
        let mut sim = make_sim(&[false; 9], &crashed);
        sim.run_until_done(600).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.iter().all(|&d| !d));
    }

    #[test]
    fn split_inputs_still_agree() {
        let inputs = [true, false, true, false, true, false, true];
        let mut sim = make_sim(&inputs, &[]);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &[]);
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "agreement: {ds:?}");
    }

    #[test]
    fn split_inputs_with_crashes_agree() {
        let inputs = [true, false, true, false, true, false, true, false, true];
        let crashed = [1u32, 5];
        let mut sim = make_sim(&inputs, &crashed);
        sim.run_until_done(600).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "agreement: {ds:?}");
    }
}
