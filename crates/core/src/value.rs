//! Agreement values.
//!
//! Protocols are generic over the proposed value type. A [`Value`] must be
//! canonically encodable (so signatures over it are well-defined words) and
//! totally ordered (for deterministic tie-breaking in baselines).

use meba_crypto::{DecodeError, Decoder, Encoder};
use std::fmt::Debug;
use std::hash::Hash;

/// A value processes can propose, sign, and decide.
pub trait Value: Clone + Eq + Ord + Hash + Debug + Send + 'static {
    /// Writes the canonical encoding used inside signed messages.
    fn encode_value(&self, enc: &mut Encoder);

    /// Reads a value back from its canonical encoding — the exact inverse
    /// of [`Value::encode_value`], so a decoded value re-encodes to the
    /// bytes that were signed (codec canonicality, docs/CORRECTNESS.md §9).
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Words the value occupies on the wire. The paper assumes values from
    /// a finite domain, i.e. one word; variable-size payloads may override.
    fn value_words(&self) -> u64 {
        1
    }
}

impl Value for bool {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_bool()
    }
}

impl Value for u32 {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u32()
    }
}

impl Value for u64 {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u64()
    }
}

impl Value for String {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_bytes(self.as_bytes());
    }
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        String::from_utf8(dec.get_bytes()?)
            .map_err(|_| DecodeError::Invalid { what: "string not UTF-8" })
    }
    fn value_words(&self) -> u64 {
        // One word per 8 bytes of payload, at least one.
        (self.len() as u64).div_ceil(8).max(1)
    }
}

impl Value for Vec<u8> {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_bytes()
    }
    fn value_words(&self) -> u64 {
        (self.len() as u64).div_ceil(8).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<V: Value>(v: &V) -> Vec<u8> {
        let mut e = Encoder::new();
        v.encode_value(&mut e);
        e.into_bytes()
    }

    #[test]
    fn scalar_encodings_distinguish_values() {
        assert_ne!(enc(&1u64), enc(&2u64));
        assert_ne!(enc(&true), enc(&false));
        assert_ne!(enc(&1u32), enc(&1u64));
    }

    #[test]
    fn scalar_values_cost_one_word() {
        assert_eq!(42u64.value_words(), 1);
        assert_eq!(true.value_words(), 1);
    }

    #[test]
    fn values_round_trip_through_decode() {
        fn rt<V: Value>(v: &V) {
            let bytes = enc(v);
            let mut dec = Decoder::new(&bytes);
            let back = V::decode_value(&mut dec).unwrap();
            dec.finish().unwrap();
            assert_eq!(&back, v);
        }
        rt(&true);
        rt(&7u32);
        rt(&u64::MAX);
        rt(&String::from("hello"));
        rt(&vec![1u8, 2, 3]);
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(String::decode_value(&mut dec).is_err());
    }

    #[test]
    fn string_words_scale_with_length() {
        assert_eq!(String::from("x").value_words(), 1);
        assert_eq!("x".repeat(8).value_words(), 1);
        assert_eq!("x".repeat(9).value_words(), 2);
        assert_eq!(Vec::from([0u8; 17]).value_words(), 3);
    }
}
