//! Agreement values.
//!
//! Protocols are generic over the proposed value type. A [`Value`] must be
//! canonically encodable (so signatures over it are well-defined words) and
//! totally ordered (for deterministic tie-breaking in baselines).

use meba_crypto::Encoder;
use std::fmt::Debug;
use std::hash::Hash;

/// A value processes can propose, sign, and decide.
pub trait Value: Clone + Eq + Ord + Hash + Debug + Send + 'static {
    /// Writes the canonical encoding used inside signed messages.
    fn encode_value(&self, enc: &mut Encoder);

    /// Words the value occupies on the wire. The paper assumes values from
    /// a finite domain, i.e. one word; variable-size payloads may override.
    fn value_words(&self) -> u64 {
        1
    }
}

impl Value for bool {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
}

impl Value for u32 {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
}

impl Value for u64 {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}

impl Value for String {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_bytes(self.as_bytes());
    }
    fn value_words(&self) -> u64 {
        // One word per 8 bytes of payload, at least one.
        (self.len() as u64).div_ceil(8).max(1)
    }
}

impl Value for Vec<u8> {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
    fn value_words(&self) -> u64 {
        (self.len() as u64).div_ceil(8).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<V: Value>(v: &V) -> Vec<u8> {
        let mut e = Encoder::new();
        v.encode_value(&mut e);
        e.into_bytes()
    }

    #[test]
    fn scalar_encodings_distinguish_values() {
        assert_ne!(enc(&1u64), enc(&2u64));
        assert_ne!(enc(&true), enc(&false));
        assert_ne!(enc(&1u32), enc(&1u64));
    }

    #[test]
    fn scalar_values_cost_one_word() {
        assert_eq!(42u64.value_words(), 1);
        assert_eq!(true.value_words(), 1);
    }

    #[test]
    fn string_words_scale_with_length() {
        assert_eq!(String::from("x").value_words(), 1);
        assert_eq!("x".repeat(8).value_words(), 1);
        assert_eq!("x".repeat(9).value_words(), 2);
        assert_eq!(Vec::from([0u8; 17]).value_words(), 3);
    }
}
