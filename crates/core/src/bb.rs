//! Adaptive Byzantine Broadcast (Algorithms 1 and 2, §5).
//!
//! BB is reduced to weak BA with the `BB_valid` predicate: a value is
//! valid iff it is signed by the designated sender, or it is an `idk`
//! quorum certificate signed by `t + 1` processes. The reduction has three
//! parts:
//!
//! 1. **Dissemination** (round 1): the sender broadcasts `⟨v⟩_sender`.
//! 2. **Vetting** (`n` leader-based phases × 3 rounds): a leader that has
//!    no BA input yet asks for help; processes forward their value or a
//!    signed `idk`; the leader broadcasts a sender-signed value, a
//!    forwarded certificate, or a fresh `idk` quorum certificate. Phases
//!    whose leader already holds a value are **silent**, so only
//!    `O(f + 1)` phases are non-silent (Lemma 9 / §5.1).
//! 3. **Weak BA** over the vetted values; a decision is the sender's value
//!    if the BA output is of the form `⟨v⟩_sender`, else `⊥`.
//!
//! Implementation note (documented deviation): Algorithm 2 line 23 only
//! lets a leader re-broadcast *sender-signed* values, and line 25 only
//! *fresh* `idk` shares. A Byzantine leader, however, can place an idk
//! certificate at some correct processes only; a later correct leader
//! would then receive neither a sender-signed value nor `t + 1` fresh
//! `idk`s and its phase would vet nothing. We therefore also let a leader
//! re-broadcast a forwarded *valid* `idk` certificate. This preserves
//! Lemma 10/12 (when the sender is correct no `idk` certificate can exist
//! at all, so nothing new becomes broadcastable) and restores Lemma 9 in
//! that corner.

use crate::config::SystemConfig;
use crate::decision::Decision;
use crate::signing::{sign_payload, verify_payload, BbIdkSig, BbValueSig, DecideProof};
use crate::subprotocol::{FallbackFactory, SubProtocol};
use crate::validity::Validity;
use crate::value::Value;
use crate::weak_ba::{FallbackMsgOf, WeakBa, WeakBaMsg};
use meba_crypto::WordCost;
use meba_crypto::{
    DecodeError, Decoder, Encoder, Pki, ProcessId, SecretKey, Signable, Signature,
    ThresholdSignature, WireCodec,
};
use meba_sim::{Dest, Message};
use std::collections::BTreeMap;

/// The weak BA value domain of the BB reduction: either the sender's
/// signed value or an `idk` quorum certificate.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BbBaValue<V> {
    /// `⟨v⟩_sender`.
    Signed {
        /// The sender's value.
        value: V,
        /// The sender's signature over [`BbValueSig`].
        sig: Signature,
    },
    /// `QC_idk` from vetting phase `phase`: proof that `t + 1` processes
    /// had no value.
    IdkQuorum {
        /// The phase whose `idk` shares were batched.
        phase: u32,
        /// `(t+1, n)`-threshold certificate over [`BbIdkSig`].
        qc: ThresholdSignature,
    },
}

impl<V: Value> Value for BbBaValue<V> {
    fn encode_value(&self, enc: &mut Encoder) {
        match self {
            BbBaValue::Signed { value, sig } => {
                enc.put_u32(0);
                value.encode_value(enc);
                sig.encode(enc);
            }
            BbBaValue::IdkQuorum { phase, qc } => {
                enc.put_u32(1);
                enc.put_u32(*phase);
                qc.encode(enc);
            }
        }
    }

    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            0 => {
                let value = V::decode_value(dec)?;
                let sig = Signature::decode(dec)?;
                Ok(BbBaValue::Signed { value, sig })
            }
            1 => {
                let phase = dec.get_u32()?;
                let qc = ThresholdSignature::decode(dec)?;
                Ok(BbBaValue::IdkQuorum { phase, qc })
            }
            _ => Err(DecodeError::Invalid { what: "BbBaValue variant tag" }),
        }
    }

    fn value_words(&self) -> u64 {
        match self {
            BbBaValue::Signed { value, sig } => value.value_words() + sig.words(),
            BbBaValue::IdkQuorum { qc, .. } => qc.words(),
        }
    }
}

impl<V: Value> WireCodec for BbBaValue<V> {
    fn encode_wire(&self, enc: &mut Encoder) {
        self.encode_value(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Self::decode_value(dec)
    }
}

/// The `BB_valid` predicate (§5): signed by the sender, or signed by
/// `t + 1` processes.
#[derive(Clone, Debug)]
pub struct BbValidity {
    cfg: SystemConfig,
    pki: Pki,
    sender: ProcessId,
}

impl BbValidity {
    /// Creates the predicate for a BB instance with the given sender.
    pub fn new(cfg: SystemConfig, pki: Pki, sender: ProcessId) -> Self {
        BbValidity { cfg, pki, sender }
    }
}

impl<V: Value> Validity<BbBaValue<V>> for BbValidity {
    fn validate(&self, v: &BbBaValue<V>) -> bool {
        match v {
            BbBaValue::Signed { value, sig } => {
                sig.signer() == self.sender
                    && verify_payload(
                        &self.pki,
                        &BbValueSig { session: self.cfg.session(), value },
                        sig,
                    )
            }
            BbBaValue::IdkQuorum { phase, qc } => {
                *phase >= 1
                    && *phase as usize <= self.cfg.n()
                    && qc.threshold() == self.cfg.idk_threshold()
                    && self
                        .pki
                        .verify_threshold(
                            &BbIdkSig { session: self.cfg.session(), phase: *phase }
                                .signing_bytes(),
                            qc,
                        )
                        .is_ok()
            }
        }
    }
}

/// Wire messages of the BB protocol. `FM` is the fallback message type.
#[derive(Clone, Debug)]
pub enum BbMsg<V, FM> {
    /// `⟨v⟩_sender` broadcast in round 1 (Alg 1 line 2).
    SenderValue {
        /// The sender's value.
        value: V,
        /// Signature over [`BbValueSig`].
        sig: Signature,
    },
    /// `⟨help_req, j⟩_leader` (Alg 2 line 16).
    VetHelpReq {
        /// Vetting phase.
        phase: u32,
    },
    /// `⟨v_i, j⟩` forwarded to the leader (line 19).
    VetValue {
        /// Vetting phase.
        phase: u32,
        /// The responder's current BA value.
        value: BbBaValue<V>,
    },
    /// `⟨idk, j⟩_p` (line 21).
    VetIdk {
        /// Vetting phase.
        phase: u32,
        /// Signature over [`BbIdkSig`].
        sig: Signature,
    },
    /// The leader's vetting broadcast (lines 24 / 27).
    Vetted {
        /// Vetting phase.
        phase: u32,
        /// The vetted value.
        value: BbBaValue<V>,
    },
    /// Embedded weak BA traffic (Alg 1 line 9).
    Ba(WeakBaMsg<BbBaValue<V>, FM>),
}

impl<V: Value, FM: Message + WireCodec> Message for BbMsg<V, FM> {
    fn words(&self) -> u64 {
        match self {
            BbMsg::SenderValue { value, sig } => value.value_words() + sig.words(),
            BbMsg::VetHelpReq { .. } => 1,
            BbMsg::VetValue { value, .. } | BbMsg::Vetted { value, .. } => value.value_words(),
            BbMsg::VetIdk { sig, .. } => sig.words(),
            BbMsg::Ba(m) => m.words(),
        }
    }

    fn constituent_sigs(&self) -> u64 {
        match self {
            BbMsg::SenderValue { sig, .. } | BbMsg::VetIdk { sig, .. } => sig.constituent_sigs(),
            BbMsg::VetHelpReq { .. } => 0,
            BbMsg::VetValue { value, .. } | BbMsg::Vetted { value, .. } => match value {
                BbBaValue::Signed { sig, .. } => sig.constituent_sigs(),
                BbBaValue::IdkQuorum { qc, .. } => qc.constituent_sigs(),
            },
            BbMsg::Ba(m) => m.constituent_sigs(),
        }
    }

    fn component(&self) -> &'static str {
        match self {
            BbMsg::SenderValue { .. } => "bb/dissemination",
            BbMsg::VetHelpReq { .. }
            | BbMsg::VetValue { .. }
            | BbMsg::VetIdk { .. }
            | BbMsg::Vetted { .. } => "bb/vetting",
            BbMsg::Ba(m) => m.component(),
        }
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<V: Value, FM: WireCodec> WireCodec for BbMsg<V, FM> {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            BbMsg::SenderValue { value, sig } => {
                enc.put_u32(0);
                value.encode_value(enc);
                sig.encode(enc);
            }
            BbMsg::VetHelpReq { phase } => {
                enc.put_u32(1);
                enc.put_u32(*phase);
            }
            BbMsg::VetValue { phase, value } => {
                enc.put_u32(2);
                enc.put_u32(*phase);
                value.encode_value(enc);
            }
            BbMsg::VetIdk { phase, sig } => {
                enc.put_u32(3);
                enc.put_u32(*phase);
                sig.encode(enc);
            }
            BbMsg::Vetted { phase, value } => {
                enc.put_u32(4);
                enc.put_u32(*phase);
                value.encode_value(enc);
            }
            BbMsg::Ba(m) => {
                enc.put_u32(5);
                m.encode_wire(enc);
            }
        }
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            0 => Ok(BbMsg::SenderValue {
                value: V::decode_value(dec)?,
                sig: Signature::decode(dec)?,
            }),
            1 => Ok(BbMsg::VetHelpReq { phase: dec.get_u32()? }),
            2 => {
                Ok(BbMsg::VetValue { phase: dec.get_u32()?, value: BbBaValue::decode_value(dec)? })
            }
            3 => Ok(BbMsg::VetIdk { phase: dec.get_u32()?, sig: Signature::decode(dec)? }),
            4 => Ok(BbMsg::Vetted { phase: dec.get_u32()?, value: BbBaValue::decode_value(dec)? }),
            5 => Ok(BbMsg::Ba(WeakBaMsg::decode_wire(dec)?)),
            _ => Err(DecodeError::Invalid { what: "BbMsg variant tag" }),
        }
    }
}

/// Rounds per vetting phase.
pub const VET_ROUNDS: u64 = 3;

/// The full wire-message type of a [`Bb`] built with factory `F`.
pub type BbMsgOf<V, F> = BbMsg<V, FallbackMsgOf<BbBaValue<V>, F>>;

/// An addressed outgoing message batch of a [`Bb`].
pub type BbOutbox<V, F> = Vec<(Dest, BbMsgOf<V, F>)>;

/// The adaptive Byzantine Broadcast state machine (one per process).
pub struct Bb<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    factory: F,
    sender: ProcessId,
    sender_input: Option<V>,

    vi: Option<BbBaValue<V>>,
    requested_phase: bool,
    nonsilent_as_leader: bool,
    ba: Option<WeakBa<BbBaValue<V>, BbValidity, F>>,
    decision: Option<Decision<V>>,
    decided_at: Option<u64>,
    stalled: bool,
    finished: bool,
}

impl<V, F> Bb<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    /// Creates a non-sender participant.
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        sender: ProcessId,
    ) -> Self {
        Bb {
            cfg,
            me,
            key,
            pki,
            factory,
            sender,
            sender_input: None,
            vi: None,
            requested_phase: false,
            nonsilent_as_leader: false,
            ba: None,
            decision: None,
            decided_at: None,
            stalled: false,
            finished: false,
        }
    }

    /// Creates the designated sender with its input `v_sender`.
    pub fn new_sender(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        input: V,
    ) -> Self {
        let mut bb = Self::new(cfg, me, key, pki, factory, me);
        bb.sender_input = Some(input);
        bb
    }

    /// First step of the embedded weak BA.
    pub fn ba_start(cfg: &SystemConfig) -> u64 {
        1 + cfg.n() as u64 * VET_ROUNDS
    }

    /// Worst-case schedule length of a whole BB instance (dissemination,
    /// vetting, embedded weak BA including its fallback).
    pub fn max_schedule(cfg: &SystemConfig, factory: &F) -> u64 {
        Self::ba_start(cfg) + WeakBa::<BbBaValue<V>, BbValidity, F>::max_schedule(cfg, factory)
    }

    /// The BB decision: the sender's value, or `⊥`.
    pub fn decision(&self) -> Option<&Decision<V>> {
        self.decision.as_ref()
    }

    /// The transferable commit evidence for this instance's decision:
    /// the BA-level value the embedded weak BA decided, plus the quorum
    /// [`DecideProof`] certifying it under this instance's session.
    ///
    /// Present exactly when the embedded BA finalized through the fast
    /// path (a `decide` quorum); fallback-path decisions settle without
    /// a `DecideProof` and return `None`. A third party that trusts the
    /// PKI can re-derive the BB decision from the pair alone: verify the
    /// proof against the BA value, then map `Signed` values that
    /// validate under [`BbValidity`] to the sender's value and
    /// everything else to `⊥` — exactly the mapping `on_step` applies
    /// when the BA completes. State transfer (DESIGN.md §16) ships this
    /// pair so restarted replicas accept committed slots from a single
    /// donor without trusting it.
    pub fn commit_evidence(&self) -> Option<(&BbBaValue<V>, &DecideProof)> {
        let ba = self.ba.as_ref()?;
        let proof = ba.decide_proof()?;
        match ba.decision()? {
            Decision::Value(v) => Some((v, proof)),
            Decision::Bot => None,
        }
    }

    /// Step at which the decision was reached (for latency profiles).
    ///
    /// This is when the *embedded weak BA* settled, not when the full
    /// fixed schedule finished — the quantity experiment E7 plots.
    pub fn decided_at(&self) -> Option<u64> {
        match &self.ba {
            Some(ba) => ba.decided_at().map(|s| s + Self::ba_start(&self.cfg)),
            None => self.decided_at,
        }
    }

    /// Whether this process initiated a non-silent vetting phase.
    pub fn led_nonsilent_phase(&self) -> bool {
        self.nonsilent_as_leader
    }

    /// Whether the embedded weak BA executed its fallback.
    pub fn used_fallback(&self) -> bool {
        self.ba.as_ref().is_some_and(|ba| ba.used_fallback())
    }

    /// Whether this process stalled for lack of a vetted value — never
    /// true for a correctly-scheduled process (Lemma 11); exposed so
    /// harnesses can distinguish a stall from a slow run.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    fn validity(&self) -> BbValidity {
        BbValidity::new(self.cfg, self.pki.clone(), self.sender)
    }

    fn vet_phase_of_step(&self, step: u64) -> Option<(u32, u64)> {
        let n = self.cfg.n() as u64;
        if step >= 1 && step < 1 + n * VET_ROUNDS {
            let s = step - 1;
            Some(((s / VET_ROUNDS) as u32 + 1, s % VET_ROUNDS))
        } else {
            None
        }
    }

    fn run_vet_step(
        &mut self,
        phase: u32,
        sub: u64,
        inbox: &[(ProcessId, BbMsgOf<V, F>)],
        out: &mut BbOutbox<V, F>,
    ) {
        let leader = self.cfg.leader_of_phase(phase);
        let is_leader = leader == self.me;
        match sub {
            // Round 1: a value-less leader asks for help (lines 15–16).
            0 => {
                self.requested_phase = false;
                if is_leader && self.vi.is_none() {
                    self.requested_phase = true;
                    self.nonsilent_as_leader = true;
                    out.push((Dest::All, BbMsg::VetHelpReq { phase }));
                }
            }
            // Round 2: answer the leader (lines 17–21).
            1 => {
                let asked = inbox.iter().any(|(from, m)| {
                    *from == leader && matches!(m, BbMsg::VetHelpReq { phase: p } if *p == phase)
                });
                if asked {
                    match &self.vi {
                        Some(v) => out
                            .push((Dest::To(leader), BbMsg::VetValue { phase, value: v.clone() })),
                        None => {
                            let sig = sign_payload(
                                &self.key,
                                &BbIdkSig { session: self.cfg.session(), phase },
                            );
                            out.push((Dest::To(leader), BbMsg::VetIdk { phase, sig }));
                        }
                    }
                }
            }
            // Round 3 (leader): broadcast a sender-signed value, a
            // forwarded certificate, or a fresh idk certificate
            // (lines 22–27).
            2 => {
                if !is_leader || !self.requested_phase {
                    return;
                }
                let validity = self.validity();
                let mut signed: Option<BbBaValue<V>> = None;
                let mut forwarded_qc: Option<BbBaValue<V>> = None;
                let mut idk_sigs: BTreeMap<ProcessId, Signature> = BTreeMap::new();
                let payload = BbIdkSig { session: self.cfg.session(), phase };
                for (from, msg) in inbox {
                    match msg {
                        BbMsg::VetValue { phase: p, value } if *p == phase => {
                            if !validity.validate(value) {
                                continue;
                            }
                            match value {
                                BbBaValue::Signed { .. } if signed.is_none() => {
                                    signed = Some(value.clone());
                                }
                                BbBaValue::IdkQuorum { .. } if forwarded_qc.is_none() => {
                                    forwarded_qc = Some(value.clone());
                                }
                                _ => {}
                            }
                        }
                        BbMsg::VetIdk { phase: p, sig }
                            if *p == phase
                                && sig.signer() == *from
                                && verify_payload(&self.pki, &payload, sig) =>
                        {
                            idk_sigs.insert(*from, sig.clone());
                        }
                        _ => {}
                    }
                }
                if let Some(v) = signed {
                    out.push((Dest::All, BbMsg::Vetted { phase, value: v }));
                } else if let Some(v) = forwarded_qc {
                    out.push((Dest::All, BbMsg::Vetted { phase, value: v }));
                } else if idk_sigs.len() >= self.cfg.idk_threshold() {
                    let qc = self
                        .pki
                        .combine(
                            self.cfg.idk_threshold(),
                            &payload.signing_bytes(),
                            &idk_sigs.into_values().collect::<Vec<_>>(),
                        )
                        .expect("verified shares combine");
                    out.push((
                        Dest::All,
                        BbMsg::Vetted { phase, value: BbBaValue::IdkQuorum { phase, qc } },
                    ));
                }
            }
            _ => unreachable!("vetting phase has 3 rounds"),
        }
    }
}

impl<V, F> SubProtocol for Bb<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    type Msg = BbMsg<V, FallbackMsgOf<BbBaValue<V>, F>>;
    type Output = Decision<V>;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    ) {
        if self.finished {
            return;
        }
        let validity = self.validity();

        // --- Global handlers.
        for (from, msg) in inbox {
            match msg {
                // Round-1 dissemination (Alg 1 lines 3–4).
                BbMsg::SenderValue { value, sig } if *from == self.sender && step == 1 => {
                    let candidate = BbBaValue::Signed { value: value.clone(), sig: sig.clone() };
                    if self.vi.is_none() && validity.validate(&candidate) {
                        self.vi = Some(candidate);
                    }
                }
                // Phase returns (Alg 1 lines 7–8): adopt any valid vetted
                // value broadcast by the matching phase leader.
                BbMsg::Vetted { phase, value }
                    if *phase >= 1
                        && *phase as usize <= self.cfg.n()
                        && *from == self.cfg.leader_of_phase(*phase)
                        && validity.validate(value) =>
                {
                    self.vi = Some(value.clone());
                }
                _ => {}
            }
        }

        // --- Scheduled actions.
        if step == 0 {
            if let Some(v) = &self.sender_input {
                let sig =
                    sign_payload(&self.key, &BbValueSig { session: self.cfg.session(), value: v });
                out.push((Dest::All, BbMsg::SenderValue { value: v.clone(), sig }));
            }
        } else if let Some((phase, sub)) = self.vet_phase_of_step(step) {
            self.run_vet_step(phase, sub, inbox, out);
        }

        // --- Embedded weak BA (Alg 1 lines 9–13).
        let ba_start = Self::ba_start(&self.cfg);
        if step >= ba_start && !self.stalled {
            if step == ba_start {
                // Lemma 11 guarantees every correct process holds a valid
                // value here. A process that does not (possible only for a
                // Byzantine-scheduled wrapper, e.g. an honest-until-crash
                // actor under rushed delivery) must not panic the harness;
                // it stalls instead — loudly visible for correct actors
                // as a termination failure.
                let Some(input) = self.vi.clone() else {
                    self.stalled = true;
                    return;
                };
                self.ba = Some(WeakBa::new(
                    self.cfg,
                    self.me,
                    self.key.clone(),
                    self.pki.clone(),
                    self.validity(),
                    self.factory.clone(),
                    input,
                ));
            }
            let ba = self.ba.as_mut().expect("weak BA instantiated at ba_start");
            let ba_inbox: Vec<(ProcessId, WeakBaMsg<BbBaValue<V>, _>)> = inbox
                .iter()
                .filter_map(|(from, m)| match m {
                    BbMsg::Ba(inner) => Some((*from, inner.clone())),
                    _ => None,
                })
                .collect();
            let mut ba_out = Vec::new();
            ba.on_step(step - ba_start, &ba_inbox, &mut ba_out);
            for (dest, m) in ba_out {
                out.push((dest, BbMsg::Ba(m)));
            }
            if ba.done() {
                let ba_decision = ba.output().expect("done implies output");
                self.decision = Some(match ba_decision {
                    Decision::Value(BbBaValue::Signed { value, sig })
                        if validity.validate(&BbBaValue::Signed {
                            value: value.clone(),
                            sig: sig.clone(),
                        }) =>
                    {
                        Decision::Value(value)
                    }
                    _ => Decision::Bot,
                });
                self.finished = true;
            }
        }

        if self.decision.is_some() && self.decided_at.is_none() {
            self.decided_at = Some(step);
        }
    }

    fn output(&self) -> Option<Decision<V>> {
        if self.finished {
            self.decision.clone()
        } else {
            None
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

impl<V, F> std::fmt::Debug for Bb<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bb")
            .field("me", &self.me)
            .field("sender", &self.sender)
            .field("decision", &self.decision)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::EchoFallbackFactory;
    use crate::subprotocol::LockstepAdapter;
    use meba_crypto::trusted_setup;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type BbP = Bb<u64, EchoFallbackFactory>;
    type Msg = <BbP as SubProtocol>::Msg;

    fn make_sim(n: usize, sender: u32, input: u64, crashed: &[u32]) -> Simulation<Msg> {
        let cfg = SystemConfig::new(n, 3).unwrap();
        let (pki, keys) = trusted_setup(n, 21);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let bb = if i as u32 == sender {
                Bb::new_sender(cfg, id, key, pki.clone(), EchoFallbackFactory, input)
            } else {
                Bb::new(cfg, id, key, pki.clone(), EchoFallbackFactory, ProcessId(sender))
            };
            actors.push(Box::new(LockstepAdapter::new(id, bb)));
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn decisions(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<Decision<u64>> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let a: &LockstepAdapter<BbP> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect()
    }

    #[test]
    fn correct_sender_failure_free_delivers_value() {
        let mut sim = make_sim(7, 0, 99, &[]);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &[]);
        assert!(ds.iter().all(|d| *d == Decision::Value(99)), "validity: {ds:?}");
    }

    #[test]
    fn silent_sender_decides_bot() {
        // The "sender" crashes before sending: all correct must agree on ⊥.
        let crashed = [0u32];
        let mut sim = make_sim(7, 0, 0, &crashed);
        sim.run_until_done(400).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.iter().all(|d| d.is_bot()), "expected ⊥, got {ds:?}");
    }

    #[test]
    fn correct_sender_with_crashes_below_bound() {
        // n=9, t=4, adaptive bound 2: one crashed non-sender.
        let crashed = [4u32];
        let mut sim = make_sim(9, 0, 5, &crashed);
        sim.run_until_done(600).unwrap();
        let ds = decisions(&sim, &crashed);
        assert!(ds.iter().all(|d| *d == Decision::Value(5)));
        for i in (0..9u32).filter(|i| !crashed.contains(i)) {
            let a: &LockstepAdapter<BbP> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback());
        }
    }

    #[test]
    fn failure_free_vetting_is_all_silent() {
        let mut sim = make_sim(7, 2, 1, &[]);
        sim.run_until_done(400).unwrap();
        for i in 0..7u32 {
            let a: &LockstepAdapter<BbP> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().led_nonsilent_phase(), "p{i} should have been silent");
        }
    }

    #[test]
    fn silent_sender_vetting_goes_nonsilent_once() {
        let crashed = [0u32];
        let mut sim = make_sim(7, 0, 0, &crashed);
        sim.run_until_done(400).unwrap();
        // The first correct leader (p1, phase 1) vets an idk certificate;
        // every later leader holds a value and stays silent.
        let nonsilent: Vec<u32> = (1..7u32)
            .filter(|&i| {
                let a: &LockstepAdapter<BbP> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().led_nonsilent_phase()
            })
            .collect();
        assert_eq!(nonsilent, vec![1]);
    }

    #[test]
    fn bb_valid_predicate() {
        let cfg = SystemConfig::new(7, 3).unwrap();
        let (pki, keys) = trusted_setup(7, 21);
        let sender = ProcessId(2);
        let validity = BbValidity::new(cfg, pki.clone(), sender);

        let good = BbBaValue::Signed {
            value: 9u64,
            sig: sign_payload(&keys[2], &BbValueSig { session: cfg.session(), value: &9u64 }),
        };
        assert!(validity.validate(&good));

        // Signed by the wrong process.
        let forged = BbBaValue::Signed {
            value: 9u64,
            sig: sign_payload(&keys[1], &BbValueSig { session: cfg.session(), value: &9u64 }),
        };
        assert!(!validity.validate(&forged));

        // idk quorum with t+1 signers.
        let payload = BbIdkSig { session: cfg.session(), phase: 3 };
        let shares: Vec<_> = keys.iter().take(4).map(|k| sign_payload(k, &payload)).collect();
        let qc = pki.combine(4, &payload.signing_bytes(), &shares).unwrap();
        let idk = BbBaValue::<u64>::IdkQuorum { phase: 3, qc: qc.clone() };
        assert!(Validity::<BbBaValue<u64>>::validate(&validity, &idk));

        // Wrong phase claimed.
        let wrong = BbBaValue::<u64>::IdkQuorum { phase: 4, qc };
        assert!(!Validity::<BbBaValue<u64>>::validate(&validity, &wrong));
    }

    #[test]
    fn words_failure_free_linear_in_n() {
        for n in [5usize, 9, 17] {
            let mut sim = make_sim(n, 0, 1, &[]);
            sim.run_until_done(800).unwrap();
            let words = sim.metrics().correct_words();
            assert!(words <= 22 * n as u64, "n={n}: failure-free BB used {words} words");
        }
    }
}
