//! The "simple and efficient reduction from BB to strong BA" (§5):
//! the designated sender sends its value to all processes, then everyone
//! runs a strong BA on what it received.
//!
//! The paper discusses this reduction to motivate why it needs *weak* BA
//! instead: no adaptive multi-valued strong BA existed, so the reduction
//! could not give adaptive BB. For the **binary** domain, however, the
//! reduction composes with Algorithm 5 (or the rotating extension) and
//! gives a correct binary BB:
//!
//! * sender correct ⇒ all correct processes enter the BA with the
//!   sender's bit ⇒ strong unanimity delivers it (BB validity);
//! * sender Byzantine ⇒ the BA's agreement still yields a common bit.
//!
//! Processes that receive nothing default to `false`, which is sound for
//! binary BB: with a correct sender everyone receives the bit, and with a
//! Byzantine sender any common output is acceptable.
//!
//! This module exists for paper fidelity and for the comparison bench —
//! it is the baseline the weak-BA reduction (Algorithms 1–2) improves on
//! for multi-valued domains.

use crate::config::SystemConfig;
use crate::signing::{sign_payload, verify_payload, BbValueSig};
use crate::strong_ba::{StrongBa, StrongBaMsg, StrongFallbackMsgOf};
use crate::subprotocol::{FallbackFactory, SubProtocol};
use meba_crypto::{DecodeError, Decoder, Encoder, Pki, ProcessId, SecretKey, Signature, WireCodec};
use meba_sim::{Dest, Message};

/// Wire messages of the reduction: the dissemination round plus embedded
/// strong BA traffic.
#[derive(Clone, Debug)]
pub enum BbViaStrongMsg<FM> {
    /// `⟨v⟩_sender` (round 1 of the reduction).
    SenderBit {
        /// The sender's bit.
        value: bool,
        /// Signature over [`BbValueSig`] (domain-shared with the adaptive
        /// BB so the sender cannot equivocate across reductions either).
        sig: Signature,
    },
    /// Embedded strong BA traffic.
    Ba(StrongBaMsg<FM>),
}

impl<FM: Message + WireCodec> Message for BbViaStrongMsg<FM> {
    fn words(&self) -> u64 {
        match self {
            BbViaStrongMsg::SenderBit { sig, .. } => 1 + sig.words(),
            BbViaStrongMsg::Ba(m) => m.words(),
        }
    }
    fn constituent_sigs(&self) -> u64 {
        match self {
            BbViaStrongMsg::SenderBit { sig, .. } => sig.constituent_sigs(),
            BbViaStrongMsg::Ba(m) => m.constituent_sigs(),
        }
    }
    fn component(&self) -> &'static str {
        match self {
            BbViaStrongMsg::SenderBit { .. } => "bb/dissemination",
            BbViaStrongMsg::Ba(m) => m.component(),
        }
    }

    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<FM: WireCodec> WireCodec for BbViaStrongMsg<FM> {
    fn encode_wire(&self, enc: &mut Encoder) {
        match self {
            BbViaStrongMsg::SenderBit { value, sig } => {
                enc.put_u32(0);
                enc.put_bool(*value);
                sig.encode(enc);
            }
            BbViaStrongMsg::Ba(m) => {
                enc.put_u32(1);
                m.encode_wire(enc);
            }
        }
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u32()? {
            0 => Ok(BbViaStrongMsg::SenderBit {
                value: dec.get_bool()?,
                sig: Signature::decode(dec)?,
            }),
            1 => Ok(BbViaStrongMsg::Ba(StrongBaMsg::decode_wire(dec)?)),
            _ => Err(DecodeError::Invalid { what: "BbViaStrongMsg variant tag" }),
        }
    }
}

use meba_crypto::WordCost;

/// Binary Byzantine Broadcast via the §5 reduction to strong BA
/// (Algorithm 5 inside).
pub struct BbViaStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    factory: F,
    sender: ProcessId,
    sender_input: Option<bool>,
    received: Option<bool>,
    ba: Option<StrongBa<F>>,
    finished: bool,
}

impl<F> BbViaStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    /// Creates a non-sender participant.
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        sender: ProcessId,
    ) -> Self {
        BbViaStrongBa {
            cfg,
            me,
            key,
            pki,
            factory,
            sender,
            sender_input: None,
            received: None,
            ba: None,
            finished: false,
        }
    }

    /// Creates the designated sender with input `bit`.
    pub fn new_sender(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        bit: bool,
    ) -> Self {
        let mut bb = Self::new(cfg, me, key, pki, factory, me);
        bb.sender_input = Some(bit);
        bb
    }

    /// The BA starts right after dissemination.
    pub fn ba_start() -> u64 {
        2
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<bool> {
        self.ba.as_ref().and_then(|ba| ba.decision())
    }
}

impl<F> SubProtocol for BbViaStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    type Msg = BbViaStrongMsg<StrongFallbackMsgOf<F>>;
    type Output = bool;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    ) {
        if self.finished {
            return;
        }
        match step {
            0 => {
                if let Some(bit) = self.sender_input {
                    let sig = sign_payload(
                        &self.key,
                        &BbValueSig { session: self.cfg.session(), value: &bit },
                    );
                    out.push((Dest::All, BbViaStrongMsg::SenderBit { value: bit, sig }));
                }
            }
            1 => {
                for (from, msg) in inbox {
                    if let BbViaStrongMsg::SenderBit { value, sig } = msg {
                        if *from == self.sender
                            && sig.signer() == self.sender
                            && verify_payload(
                                &self.pki,
                                &BbValueSig { session: self.cfg.session(), value },
                                sig,
                            )
                        {
                            self.received = Some(*value);
                            break;
                        }
                    }
                }
            }
            _ => {}
        }
        if step >= Self::ba_start() {
            if step == Self::ba_start() {
                // Default bit `false` when the (necessarily Byzantine)
                // sender skipped us.
                let input = self.received.unwrap_or(false);
                self.ba = Some(StrongBa::new(
                    self.cfg,
                    self.me,
                    self.key.clone(),
                    self.pki.clone(),
                    self.factory.clone(),
                    input,
                ));
            }
            let ba = self.ba.as_mut().expect("BA instantiated at ba_start");
            let ba_inbox: Vec<(ProcessId, StrongBaMsg<_>)> = inbox
                .iter()
                .filter_map(|(from, m)| match m {
                    BbViaStrongMsg::Ba(inner) => Some((*from, inner.clone())),
                    _ => None,
                })
                .collect();
            let mut ba_out = Vec::new();
            ba.on_step(step - Self::ba_start(), &ba_inbox, &mut ba_out);
            for (dest, m) in ba_out {
                out.push((dest, BbViaStrongMsg::Ba(m)));
            }
            if ba.done() {
                self.finished = true;
            }
        }
    }

    fn output(&self) -> Option<bool> {
        if self.finished {
            self.decision()
        } else {
            None
        }
    }

    fn done(&self) -> bool {
        self.finished
    }
}

impl<F> std::fmt::Debug for BbViaStrongBa<F>
where
    F: FallbackFactory<bool>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BbViaStrongBa")
            .field("me", &self.me)
            .field("sender", &self.sender)
            .field("decision", &self.decision())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fallback::EchoFallbackFactory;
    use crate::subprotocol::LockstepAdapter;
    use meba_crypto::trusted_setup;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type P = BbViaStrongBa<EchoFallbackFactory>;
    type Msg = <P as SubProtocol>::Msg;

    fn make_sim(n: usize, sender: u32, bit: bool, crashed: &[u32]) -> Simulation<Msg> {
        let cfg = SystemConfig::new(n, 0xba).unwrap();
        let (pki, keys) = trusted_setup(n, 0xba);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let bb = if i as u32 == sender {
                BbViaStrongBa::new_sender(cfg, id, key, pki.clone(), EchoFallbackFactory, bit)
            } else {
                BbViaStrongBa::new(
                    cfg,
                    id,
                    key,
                    pki.clone(),
                    EchoFallbackFactory,
                    ProcessId(sender),
                )
            };
            actors.push(Box::new(LockstepAdapter::new(id, bb)));
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    #[test]
    fn correct_sender_delivers_both_bits() {
        for bit in [true, false] {
            let mut sim = make_sim(7, 2, bit, &[]);
            sim.run_until_done(200).unwrap();
            for i in 0..7u32 {
                let a: &LockstepAdapter<P> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                assert_eq!(a.inner().output(), Some(bit));
            }
        }
    }

    #[test]
    fn silent_sender_agrees_on_default() {
        let mut sim = make_sim(7, 0, true, &[0]);
        sim.run_until_done(300).unwrap();
        for i in 1..7u32 {
            let a: &LockstepAdapter<P> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert_eq!(a.inner().output(), Some(false), "default bit agreed");
        }
    }

    #[test]
    fn failure_free_is_linear_like_alg5() {
        for n in [9usize, 17, 33] {
            let mut sim = make_sim(n, 0, true, &[]);
            sim.run_until_done(300).unwrap();
            let words = sim.metrics().correct_words();
            assert!(words <= 11 * n as u64, "n={n}: {words} words");
        }
    }

    #[test]
    fn crashed_follower_still_agrees() {
        let mut sim = make_sim(7, 0, true, &[4]);
        sim.run_until_done(400).unwrap();
        for i in (0..7u32).filter(|&i| i != 4) {
            let a: &LockstepAdapter<P> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert_eq!(a.inner().output(), Some(true), "validity survives the fallback");
        }
    }
}
