//! Composition framework: sub-protocols, lockstep embedding, and the
//! paper's `2δ` skew-tolerant fallback adapter.
//!
//! The paper composes protocols as black boxes (Figure 1): BB runs a weak
//! BA after its vetting phases; weak BA and strong BA hand off to
//! `A_fallback` with round duration `δ' = 2δ` because correct processes may
//! start it up to `δ` apart (Lemmas 17–18). [`SubProtocol`] is the
//! composable state-machine interface (defined in `meba-sim`, re-exported
//! here); [`LockstepAdapter`] runs one as a top-level simulator actor;
//! [`SkewAdapter`] embeds one with the paper's doubled-round, buffered
//! window semantics. Both adapters are thin wrappers around the
//! single-instance driver [`meba_sim::Instance`] — the same machinery the
//! session-multiplexing [`meba_sim::Mux`] uses per instance.

use crate::value::Value;
use meba_crypto::{DecodeError, Decoder, Encoder, ProcessId, WireCodec};
use meba_sim::{Actor, Dest, Instance, RoundCtx};
use std::collections::BTreeMap;
use std::fmt::Debug;

pub use meba_sim::SubProtocol;

/// Runs a [`SubProtocol`] directly as a simulator [`Actor`]
/// (step = round): a one-instance mux without the session tagging.
///
/// # Examples
///
/// ```ignore
/// let actor = LockstepAdapter::new(me, weak_ba);
/// ```
pub struct LockstepAdapter<P: SubProtocol> {
    me: ProcessId,
    inst: Instance<P>,
}

impl<P: SubProtocol> LockstepAdapter<P> {
    /// Wraps `inner`, which will run for process `me` from round 0.
    pub fn new(me: ProcessId, inner: P) -> Self {
        LockstepAdapter { me, inst: Instance::new(inner) }
    }

    /// The wrapped protocol, for inspecting decisions after a run.
    pub fn inner(&self) -> &P {
        self.inst.proto()
    }
}

impl<P: SubProtocol> Actor for LockstepAdapter<P> {
    type Msg = P::Msg;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, P::Msg>) {
        for e in ctx.inbox() {
            self.inst.deliver(e.from, e.msg.clone());
        }
        let mut out = Vec::new();
        let step = self.inst.step(&mut out);
        debug_assert_eq!(step, ctx.round().as_u64(), "lockstep: step = round");
        for (dest, msg) in out {
            match dest {
                Dest::To(p) => ctx.send(p, msg),
                Dest::All => ctx.broadcast(msg),
            }
        }
    }

    fn done(&self) -> bool {
        self.inst.done()
    }

    fn refused_equivocations(&self) -> u64 {
        self.inst.proto().refused_equivocations()
    }
}

/// A sub-protocol message tagged with its sender's *virtual step*, used by
/// the [`SkewAdapter`].
#[derive(Clone, Debug)]
pub struct SkewEnvelope<M> {
    /// Virtual step at which the message was sent.
    pub vstep: u64,
    /// The inner message.
    pub msg: M,
}

impl<M: WireCodec> WireCodec for SkewEnvelope<M> {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.vstep);
        self.msg.encode_wire(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let vstep = dec.get_u64()?;
        let msg = M::decode_wire(dec)?;
        Ok(SkewEnvelope { vstep, msg })
    }
}

/// Embeds a [`SubProtocol`] whose participants may start up to `δ` (one
/// round) apart — the fallback situation of Lemmas 17–18.
///
/// The inner protocol runs with round duration `2δ` (one virtual step per
/// two host rounds). Incoming messages are buffered by virtual step and
/// consumed when the local machine reaches the matching step, which
/// realizes the paper's acceptance window `[t_r − δ, t_r + 2δ]`: with
/// start skew ≤ 1 host round, a peer's step-`s` message (sent at
/// `peer_start + 2s`, delivered one round later) always arrives before the
/// local step `s + 1` executes at `local_start + 2(s + 1)`.
///
/// Constructed via [`SkewAdapter::bounded`], the buffer also rejects
/// vsteps beyond the protocol's schedule, so a Byzantine peer cannot grow
/// it without bound by tagging envelopes with far-future steps.
pub struct SkewAdapter<P: SubProtocol> {
    inst: Instance<P>,
    start: u64,
    max_vsteps: Option<u64>,
    buffer: BTreeMap<u64, Vec<(ProcessId, P::Msg)>>,
}

impl<P: SubProtocol> SkewAdapter<P> {
    /// Wraps `inner`, which starts executing at host round `start`, with
    /// no upper bound on buffered vsteps. Prefer [`SkewAdapter::bounded`]
    /// whenever the protocol's schedule length is known.
    pub fn new(inner: P, start: u64) -> Self {
        SkewAdapter { inst: Instance::new(inner), start, max_vsteps: None, buffer: BTreeMap::new() }
    }

    /// Wraps `inner` (starting at host round `start`) whose schedule is at
    /// most `max_vsteps` virtual steps: envelopes tagged further than the
    /// remaining schedule ahead of the next local step are rejected, which
    /// bounds the buffer at `max_vsteps` slots.
    pub fn bounded(inner: P, start: u64, max_vsteps: u64) -> Self {
        SkewAdapter {
            inst: Instance::new(inner),
            start,
            max_vsteps: Some(max_vsteps),
            buffer: BTreeMap::new(),
        }
    }

    /// Buffers an incoming tagged message.
    pub fn deliver(&mut self, from: ProcessId, env: SkewEnvelope<P::Msg>) {
        // Discard messages from virtual steps already consumed; they are
        // outside the paper's acceptance window (only a Byzantine sender
        // can produce them, since correct skew is bounded by δ).
        if env.vstep + 1 < self.inst.next_step() {
            return;
        }
        // Discard messages from beyond the schedule: no correct peer ever
        // reaches those steps, so they can only be Byzantine filler sent
        // to bloat the buffer.
        if self.max_vsteps.is_some_and(|max| env.vstep > max) {
            return;
        }
        self.buffer.entry(env.vstep).or_default().push((from, env.msg));
    }

    /// Advances the adapter by one host round; emits tagged outgoing
    /// messages when a virtual step fires.
    pub fn tick(&mut self, host_round: u64, out: &mut Vec<(Dest, SkewEnvelope<P::Msg>)>) {
        if host_round < self.start || !(host_round - self.start).is_multiple_of(2) {
            return;
        }
        let vstep = (host_round - self.start) / 2;
        if vstep != self.inst.next_step() || self.inst.done() {
            return;
        }
        // Step s consumes messages tagged s - 1.
        if vstep > 0 {
            for (from, msg) in self.buffer.remove(&(vstep - 1)).unwrap_or_default() {
                self.inst.deliver(from, msg);
            }
        }
        let mut inner_out = Vec::new();
        self.inst.step(&mut inner_out);
        for (dest, msg) in inner_out {
            out.push((dest, SkewEnvelope { vstep, msg }));
        }
    }

    /// Whether the inner protocol has finished.
    pub fn done(&self) -> bool {
        self.inst.done()
    }

    /// The inner protocol.
    pub fn inner(&self) -> &P {
        self.inst.proto()
    }
}

impl<P: SubProtocol> Debug for SkewAdapter<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkewAdapter")
            .field("start", &self.start)
            .field("next_vstep", &self.inst.next_step())
            .finish_non_exhaustive()
    }
}

/// Constructs a fallback strong BA instance (`A_fallback` in the paper).
///
/// The adaptive protocols treat the quadratic strong BA as a black box:
/// anything implementing this factory plugs in. The canonical
/// implementation is `meba_fallback::RecursiveBaFactory`; `meba-core`
/// ships [`crate::fallback::EchoFallbackFactory`] for crash-fault testing.
pub trait FallbackFactory<V: Value>: Clone + Send + 'static {
    /// The protocol type produced.
    type Protocol: SubProtocol<Output = V>;

    /// Instantiates the fallback for process `me` with initial value
    /// `input` (the paper's `bu_decision`).
    fn create(&self, me: ProcessId, input: V) -> Self::Protocol;

    /// Worst-case number of virtual steps an instance needs to complete.
    /// Multi-shot drivers (e.g. `meba-smr`) use this to size fixed,
    /// system-wide schedules; the host protocols themselves just tick the
    /// instance until [`SubProtocol::done`].
    fn max_steps(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::Message;

    #[derive(Clone, Debug)]
    struct Num(#[allow(dead_code)] u64);
    impl Message for Num {
        fn words(&self) -> u64 {
            1
        }
    }
    impl WireCodec for Num {
        fn encode_wire(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
        fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            Ok(Num(dec.get_u64()?))
        }
    }

    /// Echoes its step count; decides after 3 steps on the count of
    /// step-tagged messages it received.
    struct Counter {
        received: Vec<(u64, usize)>,
        out_value: u64,
        decided: Option<u64>,
    }

    impl SubProtocol for Counter {
        type Msg = Num;
        type Output = u64;
        fn on_step(&mut self, step: u64, inbox: &[(ProcessId, Num)], out: &mut Vec<(Dest, Num)>) {
            self.received.push((step, inbox.len()));
            if step < 3 {
                out.push((Dest::All, Num(self.out_value + step)));
            }
            if step == 3 {
                self.decided = Some(inbox.len() as u64);
            }
        }
        fn output(&self) -> Option<u64> {
            self.decided
        }
        fn done(&self) -> bool {
            self.decided.is_some()
        }
    }

    #[test]
    fn skew_adapter_runs_every_other_round() {
        let c = Counter { received: vec![], out_value: 0, decided: None };
        let mut ad = SkewAdapter::new(c, 4);
        let mut out = Vec::new();
        for r in 0..12 {
            ad.tick(r, &mut out);
        }
        // Steps fire at host rounds 4, 6, 8, 10.
        assert_eq!(
            ad.inner().received.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(ad.done());
        // Steps 0..2 each emitted one broadcast.
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].1.vstep, 1);
    }

    #[test]
    fn skew_adapter_buffers_by_vstep() {
        let c = Counter { received: vec![], out_value: 0, decided: None };
        let mut ad = SkewAdapter::new(c, 0);
        // Deliver two step-0 messages and one step-2 message up front
        // (as if from peers one round ahead).
        ad.deliver(ProcessId(1), SkewEnvelope { vstep: 0, msg: Num(1) });
        ad.deliver(ProcessId(2), SkewEnvelope { vstep: 0, msg: Num(2) });
        ad.deliver(ProcessId(1), SkewEnvelope { vstep: 2, msg: Num(3) });
        let mut out = Vec::new();
        for r in 0..8 {
            ad.tick(r, &mut out);
        }
        let steps = &ad.inner().received;
        assert_eq!(steps[0], (0, 0));
        assert_eq!(steps[1], (1, 2), "step 1 consumes the two step-0 messages");
        assert_eq!(steps[2], (2, 0));
        assert_eq!(steps[3], (3, 1), "step 3 consumes the step-2 message");
        assert_eq!(ad.inner().output(), Some(1));
    }

    #[test]
    fn skew_adapter_discards_stale_vsteps() {
        let c = Counter { received: vec![], out_value: 0, decided: None };
        let mut ad = SkewAdapter::new(c, 0);
        let mut out = Vec::new();
        for r in 0..6 {
            ad.tick(r, &mut out);
        }
        // next_vstep is now 3; a vstep-0 message is stale Byzantine noise.
        ad.deliver(ProcessId(1), SkewEnvelope { vstep: 0, msg: Num(9) });
        assert!(ad.buffer.is_empty());
        // vstep-2 is exactly the window edge and still accepted.
        ad.deliver(ProcessId(1), SkewEnvelope { vstep: 2, msg: Num(9) });
        assert_eq!(ad.buffer.len(), 1);
    }

    #[test]
    fn bounded_skew_adapter_rejects_far_future_vsteps() {
        // The Counter's schedule is 4 vsteps (0..=3); bound accordingly.
        let c = Counter { received: vec![], out_value: 0, decided: None };
        let mut ad = SkewAdapter::bounded(c, 0, 3);
        // A Byzantine peer floods envelopes tagged far past the schedule:
        // none may be buffered.
        for v in 4..100u64 {
            ad.deliver(ProcessId(1), SkewEnvelope { vstep: v, msg: Num(v) });
        }
        assert!(ad.buffer.is_empty(), "far-future vsteps must be rejected");
        // In-schedule envelopes still work end to end.
        ad.deliver(ProcessId(1), SkewEnvelope { vstep: 2, msg: Num(1) });
        let mut out = Vec::new();
        for r in 0..8 {
            ad.tick(r, &mut out);
        }
        assert_eq!(ad.inner().output(), Some(1), "step 3 consumed the step-2 message");
    }

    #[test]
    fn skewed_peers_stay_within_window() {
        // Two peers starting one round apart exchange all messages in time.
        let mk = |v| Counter { received: vec![], out_value: v, decided: None };
        let mut a = SkewAdapter::new(mk(10), 4);
        let mut b = SkewAdapter::new(mk(20), 5);
        for r in 0..16u64 {
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            a.tick(r, &mut out_a);
            b.tick(r, &mut out_b);
            // Deliver next round (δ = 1): here we just deliver immediately
            // after both ticked, which is equivalent for cross-delivery.
            for (_, env) in out_a {
                b.deliver(ProcessId(0), env);
            }
            for (_, env) in out_b {
                a.deliver(ProcessId(1), env);
            }
        }
        // Each peer consumed exactly one message per step 1..3.
        assert_eq!(a.inner().output(), Some(1));
        assert_eq!(b.inner().output(), Some(1));
        let got_a: Vec<usize> = a.inner().received.iter().map(|(_, c)| *c).collect();
        assert_eq!(got_a, vec![0, 1, 1, 1]);
    }
}
