//! The paper's primary contribution: adaptive Byzantine agreement
//! protocols with `O(n(f+1))` communication at resilience `n = 2t + 1`
//! (Cohen, Keidar, Spiegelman — "Make Every Word Count", PODC 2022).
//!
//! * [`weak_ba`] — adaptive weak BA with unique validity (Algorithms 3–4);
//! * [`bb`] — adaptive Byzantine Broadcast via the weak-BA reduction
//!   (Algorithms 1–2);
//! * [`strong_ba`] — binary strong BA, linear words when failure-free
//!   (Algorithm 5);
//! * [`strong_ba_rotating`] — extension toward §8's open question:
//!   rotating leaders + the §6 quorum keep strong BA linear in more runs;
//! * [`subprotocol`] — black-box composition (Figure 1), including the
//!   `δ' = 2δ` skewed fallback embedding;
//! * [`recovery`] — crash-recovery wrapper: write-ahead journaling and
//!   non-equivocating restart for any sub-protocol;
//! * [`validity`] — the unique-validity predicate framework;
//! * [`fallback`] — the `A_fallback` abstraction.
//!
//! See the workspace `DESIGN.md` for the experiment index and
//! `meba-fallback` for the quadratic fallback implementation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bb;
pub mod bb_via_strong;
pub mod config;
pub mod decision;
pub mod fallback;
mod message_costs;
pub mod recovery;
pub mod signing;
pub mod strong_ba;
pub mod strong_ba_rotating;
pub mod subprotocol;
pub mod validity;
pub mod value;
pub mod weak_ba;

pub use bb::{Bb, BbBaValue, BbMsg, BbValidity};
pub use bb_via_strong::{BbViaStrongBa, BbViaStrongMsg};
pub use config::{ConfigError, SystemConfig};
pub use decision::Decision;
pub use fallback::{EchoFallback, EchoFallbackFactory};
pub use recovery::Recoverable;
pub use signing::{CommitProof, DecideProof};
pub use strong_ba::{StrongBa, StrongBaMsg};
pub use strong_ba_rotating::RotatingStrongBa;
pub use subprotocol::{FallbackFactory, LockstepAdapter, SkewAdapter, SkewEnvelope, SubProtocol};
pub use validity::{AlwaysValid, FnValidity, Validity};
pub use value::Value;
pub use weak_ba::{WeakBa, WeakBaMsg};
