//! External validity predicates (unique validity, Definition 3).
//!
//! Weak BA is parameterized by a locally-computable predicate
//! `validate(v)`. Unique validity then guarantees: a decided `v` is either
//! `⊥` or valid, and `⊥` is only decided when more than one valid value
//! exists in the run. The "right" predicate makes this surprisingly
//! powerful — the BB reduction (§5) instantiates it with
//! [`crate::bb::BbValidity`].

use crate::value::Value;

/// A locally-computable boolean predicate over candidate values.
pub trait Validity<V>: Clone + Send + 'static {
    /// Whether `v` is a valid decision value.
    fn validate(&self, v: &V) -> bool;
}

/// Accepts every value — reduces unique validity to "⊥ only under
/// disagreement", useful for standalone weak BA runs and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysValid;

impl<V: Value> Validity<V> for AlwaysValid {
    fn validate(&self, _v: &V) -> bool {
        true
    }
}

/// Wraps a closure as a predicate.
///
/// # Examples
///
/// ```
/// use meba_core::validity::{FnValidity, Validity};
///
/// let even = FnValidity::new(|v: &u64| v % 2 == 0);
/// assert!(even.validate(&4));
/// assert!(!even.validate(&3));
/// ```
#[derive(Clone)]
pub struct FnValidity<F>(F);

impl<F> FnValidity<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        FnValidity(f)
    }
}

impl<F> std::fmt::Debug for FnValidity<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnValidity(..)")
    }
}

impl<V: Value, F: Fn(&V) -> bool + Clone + Send + 'static> Validity<V> for FnValidity<F> {
    fn validate(&self, v: &V) -> bool {
        (self.0)(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_valid_accepts_everything() {
        assert!(Validity::<u64>::validate(&AlwaysValid, &0));
        assert!(Validity::<bool>::validate(&AlwaysValid, &false));
    }

    #[test]
    fn fn_validity_delegates() {
        let p = FnValidity::new(|v: &u64| *v < 10);
        assert!(p.validate(&9));
        assert!(!p.validate(&10));
    }
}
