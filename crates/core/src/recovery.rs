//! Crash-recovery wrapper: durable journaling and non-equivocating
//! restart for any [`SubProtocol`].
//!
//! A crash-recovery fault is *manufacturable* into a Byzantine fault: a
//! process that forgets it signed `⟨vote, v⟩`, restarts, and signs
//! `⟨vote, w⟩` for the same slot has equivocated — exactly what the
//! paper's `n = 2t + 1` quorum intersection cannot absorb beyond `t`
//! processes. [`Recoverable`] closes that hole with a write-ahead
//! discipline (DESIGN.md §11, docs/CORRECTNESS.md §10):
//!
//! 1. **Journal before externalize.** Each step, the wrapped protocol
//!    runs against its inbox and its outbox is *staged*. The step's
//!    inbox ([`Record::Step`]) and every protocol-critical event it
//!    produced — signatures, certificates, commit transitions, decisions
//!    — are appended to the [`Journal`] and flushed *before* any staged
//!    message is released. A crash between flush and send loses only
//!    messages, which the synchronous model already tolerates (it is
//!    indistinguishable from a link-level omission of one round).
//! 2. **Replay on restart.** [`Recoverable::recover`] rebuilds the exact
//!    pre-crash state by re-running the journaled inboxes through a
//!    fresh protocol instance. The protocols are deterministic and the
//!    PKI signs deterministically, so replay reproduces byte-identical
//!    signatures — re-signing the *same* preimage is harmless.
//! 3. **Never re-sign conflicting.** Every journaled and replayed
//!    signature is bound into a [`SignRegistry`] keyed by equivocation
//!    context (domain + slot, *excluding* the value). Any step whose
//!    events would contradict a recorded binding has its entire staged
//!    outbox suppressed: the conflicting signature never leaves the
//!    process, and the registry's original binding stays authoritative.
//!
//! # Examples
//!
//! ```ignore
//! let disk = MemBuffer::new();
//! let mut p = Recoverable::new(make_weak_ba(), Journal::in_memory(disk.clone()));
//! // ... crash at an arbitrary point ...
//! let mut p = Recoverable::recover(Journal::in_memory(disk), make_weak_ba)?;
//! assert_eq!(p.resume_step(), steps_executed_before_crash);
//! ```

use crate::subprotocol::SubProtocol;
use meba_crypto::{ProcessId, SignRegistry, WireCodec};
use meba_journal::{Journal, JournalStats, Record};
use meba_sim::{Dest, RecoveryEvent};

/// Converts a drained [`RecoveryEvent`] into its journal [`Record`].
fn record_of(ev: &RecoveryEvent) -> Record {
    match ev {
        RecoveryEvent::Signed { context, digest } => {
            Record::Signed { context: context.clone(), digest: *digest }
        }
        RecoveryEvent::CertReceived { kind, step } => {
            Record::CertReceived { kind: *kind, step: *step }
        }
        RecoveryEvent::CommitLevel(level) => Record::CommitLevel { level: *level },
        RecoveryEvent::Decided(value) => Record::Decided { value: value.clone() },
    }
}

/// A [`SubProtocol`] wrapped with the write-ahead journal discipline
/// described in the [module docs](self).
///
/// `Recoverable<P>` is itself a `SubProtocol` with the same message and
/// output types, so it drops into [`crate::LockstepAdapter`], the
/// threaded cluster, and the TCP cluster unchanged.
pub struct Recoverable<P: SubProtocol> {
    inner: P,
    journal: Journal,
    registry: SignRegistry,
    /// Next step to execute live; steps below this were replayed.
    next_step: u64,
    /// Records replayed during [`Recoverable::recover`].
    replayed: u64,
    /// Torn bytes discarded at the journal tail during recovery.
    torn_bytes: u64,
    /// Set on journal I/O failure: externalization is suppressed from
    /// then on (fail-safe: an amnesiac process must stay silent).
    io_failed: bool,
}

impl<P: SubProtocol> Recoverable<P> {
    /// Wraps a fresh protocol instance over an empty (or new) journal.
    pub fn new(inner: P, journal: Journal) -> Self {
        Recoverable {
            inner,
            journal,
            registry: SignRegistry::new(),
            next_step: 0,
            replayed: 0,
            torn_bytes: 0,
            io_failed: false,
        }
    }

    /// Rebuilds the pre-crash state from `journal` by replaying it
    /// through a fresh instance built by `make`.
    ///
    /// `make` must construct the protocol exactly as it was constructed
    /// before the crash (same config, keys, and input) — determinism is
    /// what lets the journaled inboxes reconstruct both state and
    /// signatures. Replay stops at the first torn frame, then the
    /// journal continues appending after it.
    pub fn recover(journal: Journal, make: impl FnOnce() -> P) -> std::io::Result<Self> {
        let mut journal = journal;
        let report = journal.replay()?;
        let mut me = Recoverable {
            inner: make(),
            journal,
            registry: SignRegistry::new(),
            next_step: 0,
            replayed: 0,
            torn_bytes: report.torn_bytes,
            io_failed: false,
        };
        let mut discard = Vec::new();
        for rec in &report.records {
            me.replayed += 1;
            match rec {
                Record::Step { step, inbox } => {
                    let decoded: Vec<(ProcessId, P::Msg)> = inbox
                        .iter()
                        .filter_map(|(from, bytes)| {
                            // A frame that passed its CRC but fails to
                            // decode is a version skew; dropping the
                            // message degrades to an omission, which the
                            // model tolerates.
                            P::Msg::from_wire_bytes(bytes).ok().map(|m| (*from, m))
                        })
                        .collect();
                    me.inner.on_step(*step, &decoded, &mut discard);
                    discard.clear();
                    // Re-derived events rebuild the guard; deterministic
                    // signing makes them idempotent with the journaled
                    // `Signed` records below.
                    for ev in me.inner.drain_recovery_events() {
                        if let RecoveryEvent::Signed { context, digest } = ev {
                            let _ = me.registry.record(&context, digest);
                        }
                    }
                    me.next_step = step + 1;
                }
                Record::Signed { context, digest } => {
                    // Journaled bindings are authoritative: even if the
                    // replayed protocol were to diverge, the first-writer
                    // binding wins and conflicting re-signs are refused.
                    let _ = me.registry.record(context, *digest);
                }
                // State for these is reconstructed by Step replay; the
                // records are audit metadata. `Proposed`/`Committed`
                // belong to the service layer above the protocol
                // instance (`meba-service` replays them itself).
                Record::CertReceived { .. }
                | Record::CommitLevel { .. }
                | Record::Decided { .. }
                | Record::Proposed { .. }
                | Record::Committed { .. }
                | Record::Transferred { .. }
                | Record::Evidence { .. }
                | Record::Snapshot { .. } => {}
            }
        }
        Ok(me)
    }

    /// First step this instance will execute live (everything below was
    /// reconstructed by replay).
    pub fn resume_step(&self) -> u64 {
        self.next_step
    }

    /// Number of journal records replayed by [`Recoverable::recover`].
    pub fn replayed_records(&self) -> u64 {
        self.replayed
    }

    /// Bytes discarded at the journal tail as a torn write.
    pub fn torn_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// Append/fsync counters of the underlying journal.
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// The signing guard (journaled + replayed signature bindings).
    pub fn registry(&self) -> &SignRegistry {
        &self.registry
    }

    /// Whether a journal I/O failure has silenced this process.
    pub fn io_failed(&self) -> bool {
        self.io_failed
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped protocol, mutably.
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps into the inner protocol, discarding the journal.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: SubProtocol> SubProtocol for Recoverable<P> {
    type Msg = P::Msg;
    type Output = P::Output;

    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    ) {
        // Steps below the resume point were already applied by replay
        // (the runner drives a recovered actor from step 0 again).
        if step < self.next_step {
            return;
        }
        self.next_step = step + 1;

        // 1. Run the inner protocol against a *staged* outbox.
        let mut staged = Vec::new();
        self.inner.on_step(step, inbox, &mut staged);
        let events = self.inner.drain_recovery_events();

        // 2. Enforce the never-re-sign-conflicting guard before anything
        //    is journaled or released. A conflict means this step's state
        //    contradicts a durable signature (e.g. a forged restart with
        //    a stale journal): the whole staged outbox is suppressed, so
        //    the conflicting signature never leaves the process.
        let mut equivocated = false;
        for ev in &events {
            if let RecoveryEvent::Signed { context, digest } = ev {
                if self.registry.record(context, *digest).is_err() {
                    equivocated = true;
                }
            }
        }
        if equivocated {
            return;
        }

        // 3. Write-ahead: journal the step's inbox and its events, flush,
        //    and only then release the staged messages. On I/O failure
        //    the process goes silent instead of externalizing
        //    unjournaled state.
        let step_rec = Record::Step {
            step,
            inbox: inbox.iter().map(|(from, m)| (*from, m.to_wire_bytes())).collect(),
        };
        let mut io = self.journal.append(&step_rec);
        for ev in &events {
            if io.is_ok() {
                io = self.journal.append(&record_of(ev));
            }
        }
        if io.is_ok() && !staged.is_empty() {
            io = self.journal.flush();
        }
        if io.is_err() {
            self.io_failed = true;
            return;
        }
        out.extend(staged);
    }

    fn output(&self) -> Option<Self::Output> {
        self.inner.output()
    }

    fn done(&self) -> bool {
        self.inner.done()
    }

    fn drain_recovery_events(&mut self) -> Vec<RecoveryEvent> {
        // Inner events are consumed into the journal above; nothing
        // bubbles further.
        Vec::new()
    }

    fn refused_equivocations(&self) -> u64 {
        self.registry.refused()
    }
}

impl<P: SubProtocol + std::fmt::Debug> std::fmt::Debug for Recoverable<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recoverable")
            .field("inner", &self.inner)
            .field("next_step", &self.next_step)
            .field("replayed", &self.replayed)
            .field("refused", &self.registry.refused())
            .field("io_failed", &self.io_failed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::{DecodeError, Decoder, Digest, Encoder};
    use meba_journal::MemBuffer;
    use meba_sim::Message;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn words(&self) -> u64 {
            1
        }
    }
    impl WireCodec for Num {
        fn encode_wire(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
        fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            Ok(Num(dec.get_u64()?))
        }
    }

    /// Deterministic toy protocol: each step broadcasts `base + step +
    /// sum(inbox)`, "signs" its broadcast under a per-step context, and
    /// decides at step `DECIDE_AT` on its accumulated sum.
    const DECIDE_AT: u64 = 4;

    struct Toy {
        base: u64,
        acc: u64,
        decided: Option<u64>,
        events: Vec<RecoveryEvent>,
    }

    impl Toy {
        fn new(base: u64) -> Self {
            Toy { base, acc: 0, decided: None, events: Vec::new() }
        }
        fn context(step: u64) -> Vec<u8> {
            let mut enc = Encoder::new();
            enc.put_bytes(b"toy/step");
            enc.put_u64(step);
            enc.into_bytes()
        }
    }

    impl SubProtocol for Toy {
        type Msg = Num;
        type Output = u64;

        fn on_step(&mut self, step: u64, inbox: &[(ProcessId, Num)], out: &mut Vec<(Dest, Num)>) {
            self.acc += inbox.iter().map(|(_, m)| m.0).sum::<u64>();
            let v = self.base + step + self.acc;
            out.push((Dest::All, Num(v)));
            self.events.push(RecoveryEvent::Signed {
                context: Toy::context(step),
                digest: Digest::of(&v.to_be_bytes()),
            });
            if step == DECIDE_AT {
                self.decided = Some(self.acc);
                self.events.push(RecoveryEvent::Decided(self.acc.to_be_bytes().to_vec()));
            }
        }
        fn output(&self) -> Option<u64> {
            self.decided
        }
        fn done(&self) -> bool {
            self.decided.is_some()
        }
        fn drain_recovery_events(&mut self) -> Vec<RecoveryEvent> {
            std::mem::take(&mut self.events)
        }
    }

    fn inbox_for(step: u64) -> Vec<(ProcessId, Num)> {
        (0..(step % 3)).map(|i| (ProcessId(i as u32), Num(step * 10 + i))).collect()
    }

    #[test]
    fn journal_holds_steps_and_events() {
        let disk = MemBuffer::new();
        let mut p = Recoverable::new(Toy::new(7), Journal::in_memory(disk.clone()));
        let mut out = Vec::new();
        for step in 0..3 {
            p.on_step(step, &inbox_for(step), &mut out);
        }
        assert_eq!(out.len(), 3, "toy broadcasts once per step");
        let report = Journal::in_memory(disk).replay().unwrap();
        let steps = report.records.iter().filter(|r| matches!(r, Record::Step { .. })).count();
        let signed = report.records.iter().filter(|r| matches!(r, Record::Signed { .. })).count();
        assert_eq!(steps, 3);
        assert_eq!(signed, 3, "one signature journaled per step");
    }

    #[test]
    fn recover_reconstructs_exact_state_and_resumes() {
        let disk = MemBuffer::new();
        let mut p = Recoverable::new(Toy::new(3), Journal::in_memory(disk.clone()));
        let mut reference = Toy::new(3);
        let mut out = Vec::new();
        for step in 0..3 {
            let inbox = inbox_for(step);
            p.on_step(step, &inbox, &mut out);
            reference.on_step(step, &inbox, &mut out);
            reference.drain_recovery_events();
        }
        drop(p); // crash

        let mut r = Recoverable::recover(Journal::in_memory(disk), || Toy::new(3)).unwrap();
        assert_eq!(r.resume_step(), 3);
        assert!(r.replayed_records() >= 3);
        assert_eq!(r.inner().acc, reference.acc, "replay reconstructs state");

        // Steps below the resume point are ignored (already applied)...
        let mut out2 = Vec::new();
        r.on_step(0, &[], &mut out2);
        assert!(out2.is_empty());
        assert_eq!(r.inner().acc, reference.acc);
        // ...and live execution continues where the crash left off.
        for step in 3..=DECIDE_AT {
            let inbox = inbox_for(step);
            r.on_step(step, &inbox, &mut out2);
            reference.on_step(step, &inbox, &mut out2);
            reference.drain_recovery_events();
        }
        assert_eq!(r.output(), reference.output());
        assert!(r.output().is_some());
    }

    #[test]
    fn replay_is_idempotent() {
        let disk = MemBuffer::new();
        let mut p = Recoverable::new(Toy::new(1), Journal::in_memory(disk.clone()));
        let mut out = Vec::new();
        for step in 0..4 {
            p.on_step(step, &inbox_for(step), &mut out);
        }
        drop(p);
        let once = Recoverable::recover(Journal::in_memory(disk.clone()), || Toy::new(1)).unwrap();
        // "Replay twice": recover, crash immediately without stepping,
        // recover again from the identical (unchanged) journal.
        let twice = {
            let r = Recoverable::recover(Journal::in_memory(disk.clone()), || Toy::new(1)).unwrap();
            drop(r);
            Recoverable::recover(Journal::in_memory(disk), || Toy::new(1)).unwrap()
        };
        assert_eq!(once.inner().acc, twice.inner().acc);
        assert_eq!(once.resume_step(), twice.resume_step());
        assert_eq!(once.replayed_records(), twice.replayed_records());
        assert_eq!(once.registry().len(), twice.registry().len());
    }

    #[test]
    fn conflicting_resign_suppresses_outbox() {
        // Pre-bind step 0's context to a digest the toy will NOT produce:
        // an amnesiac restart attempting a different value must be muted.
        let disk = MemBuffer::new();
        {
            let mut j = Journal::in_memory(disk.clone());
            j.append(&Record::Signed {
                context: Toy::context(0),
                digest: Digest::of(b"some other value"),
            })
            .unwrap();
            j.flush().unwrap();
        }
        let mut r = Recoverable::recover(Journal::in_memory(disk), || Toy::new(9)).unwrap();
        let mut out = Vec::new();
        r.on_step(0, &[], &mut out);
        assert!(out.is_empty(), "conflicting signature must not be externalized");
        assert_eq!(r.refused_equivocations(), 1);
        // Non-conflicting later steps flow normally.
        r.on_step(1, &[], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn torn_tail_is_ignored_and_counted() {
        let disk = MemBuffer::new();
        let mut p = Recoverable::new(Toy::new(2), Journal::in_memory(disk.clone()));
        let mut out = Vec::new();
        for step in 0..2 {
            p.on_step(step, &inbox_for(step), &mut out);
        }
        drop(p);
        // Simulate a torn final write: chop a few bytes off the tail.
        let len = disk.len();
        disk.truncate(len - 3);
        let r = Recoverable::recover(Journal::in_memory(disk), || Toy::new(2)).unwrap();
        assert!(r.torn_bytes() > 0);
        assert!(r.resume_step() >= 1, "intact prefix still replays");
    }
}
