//! Decision values: a protocol output is either a value or the default
//! `⊥`.

use std::fmt;

/// Output of an agreement protocol: a value, or the default `⊥` permitted
//  by unique validity when more than one valid value exists in the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Decision<V> {
    /// A concrete decided value.
    Value(V),
    /// The default value `⊥`.
    Bot,
}

impl<V> Decision<V> {
    /// Returns the decided value, if not `⊥`.
    pub fn value(&self) -> Option<&V> {
        match self {
            Decision::Value(v) => Some(v),
            Decision::Bot => None,
        }
    }

    /// Whether the decision is `⊥`.
    pub fn is_bot(&self) -> bool {
        matches!(self, Decision::Bot)
    }

    /// Converts into an `Option`, mapping `⊥` to `None`.
    pub fn into_option(self) -> Option<V> {
        match self {
            Decision::Value(v) => Some(v),
            Decision::Bot => None,
        }
    }

    /// Maps the value, preserving `⊥`.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> Decision<U> {
        match self {
            Decision::Value(v) => Decision::Value(f(v)),
            Decision::Bot => Decision::Bot,
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for Decision<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Value(v) => write!(f, "Decision({v:?})"),
            Decision::Bot => write!(f, "Decision(⊥)"),
        }
    }
}

impl<V> From<V> for Decision<V> {
    fn from(v: V) -> Self {
        Decision::Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let d: Decision<u64> = Decision::Value(4);
        assert_eq!(d.value(), Some(&4));
        assert!(!d.is_bot());
        assert_eq!(d.into_option(), Some(4));

        let b: Decision<u64> = Decision::Bot;
        assert_eq!(b.value(), None);
        assert!(b.is_bot());
        assert_eq!(b.into_option(), None);
    }

    #[test]
    fn map_preserves_bot() {
        assert_eq!(Decision::Value(2).map(|v| v * 2), Decision::Value(4));
        assert_eq!(Decision::<u64>::Bot.map(|v| v * 2), Decision::Bot);
    }

    #[test]
    fn debug_renders_bot() {
        assert_eq!(format!("{:?}", Decision::<u64>::Bot), "Decision(⊥)");
        assert_eq!(format!("{:?}", Decision::Value(1u64)), "Decision(1)");
    }

    #[test]
    fn from_value() {
        let d: Decision<u64> = 7.into();
        assert_eq!(d, Decision::Value(7));
    }
}
