//! Large-n protocol runs on the discrete-event backend.
//!
//! These system sizes (n = 65 … 4097) are far beyond what the paced
//! runtimes can reach in a test suite — two OS threads per process and a
//! real δ of wall clock per round — but the DES backend runs them in
//! milliseconds to seconds of host time, which is the point of having
//! it: the `O(n(f+1))` adaptive claim gets checked where the
//! asymptotics actually show.

use meba_core::Decision;
use meba_testkit::{assert_agreement, bb_des, bb_report_decisions, Fault};

/// Failure-free closed-form budget from `tests/bb_integration.rs`,
/// asserted there at small n — the engine must reproduce it at large n.
const FAILURE_FREE_WORDS_PER_N: u64 = 25;

#[test]
fn des_bb_n65_failure_free_is_linear() {
    let n = 65;
    let faults = vec![Fault::None; n];
    let report = bb_des(0, 7, &faults, 0x41);
    assert!(report.completed, "n={n} failure-free BB must decide");
    assert_eq!(assert_agreement(&bb_report_decisions(&report, &faults)), Decision::Value(7));
    let words = report.metrics.correct.words;
    assert!(
        words <= FAILURE_FREE_WORDS_PER_N * n as u64,
        "failure-free words must stay linear: {words} > 25·{n}"
    );
}

#[test]
fn des_bb_n65_tolerates_f_equals_t() {
    let n = 65; // t = 32
    let t = (n - 1) / 2;
    let mut faults = vec![Fault::None; n];
    // Silence the t processes after the sender: every silent leader costs
    // a phase, the hardest crash placement for the staircase.
    for f in faults.iter_mut().skip(1).take(t) {
        *f = Fault::Idle;
    }
    let report = bb_des(0, 7, &faults, 0x42);
    assert!(report.completed, "n={n} f=t BB must still decide");
    assert_eq!(assert_agreement(&bb_report_decisions(&report, &faults)), Decision::Value(7));
    // O(n(f+1)): the budget scales with the realized failure count. The
    // constant is larger than the failure-free 25 — every silent leader
    // costs a help phase where live processes respond — but the shape is
    // still n·(f+1), not the unconditional n² of the non-adaptive
    // fallback run at every f.
    let words = report.metrics.correct.words;
    let budget = 60 * (n as u64) * (t as u64 + 1);
    assert!(words <= budget, "f=t words {words} exceed O(n(f+1)) budget {budget}");
}

/// The acceptance run: n = 129 (t = 64) failure-free BB to decision.
/// Ignored in the default (debug) suite; CI runs it in release, where it
/// must finish well under 5 s.
#[test]
#[ignore = "large-n acceptance run; executed in release by scripts/check.sh"]
fn des_bb_n129_failure_free_is_linear_and_fast() {
    let n = 129;
    let faults = vec![Fault::None; n];
    let started = std::time::Instant::now();
    let report = bb_des(0, 7, &faults, 0x43);
    let elapsed = started.elapsed();
    assert!(report.completed, "n={n} failure-free BB must decide");
    assert_eq!(assert_agreement(&bb_report_decisions(&report, &faults)), Decision::Value(7));
    let words = report.metrics.correct.words;
    assert!(
        words <= FAILURE_FREE_WORDS_PER_N * n as u64,
        "failure-free words must stay linear: {words} > 25·{n}"
    );
    assert!(elapsed.as_secs() < 5, "n={n} DES run took {elapsed:?}, budget is 5s");
}

/// The zero-copy acceptance run: n = 4097 (t = 2048) failure-free BB to
/// decision on the calendar-queue engine, in under a minute of release
/// wall clock with the word total still linear in n. Ignored in the
/// default (debug) suite; CI runs it in release.
#[test]
#[ignore = "large-n acceptance run; executed in release by scripts/check.sh"]
fn des_bb_n4097_failure_free_is_linear_and_fast() {
    let n = 4097;
    let faults = vec![Fault::None; n];
    let started = std::time::Instant::now();
    let report = bb_des(0, 7, &faults, 0x44);
    let elapsed = started.elapsed();
    assert!(report.completed, "n={n} failure-free BB must decide");
    assert_eq!(assert_agreement(&bb_report_decisions(&report, &faults)), Decision::Value(7));
    let words = report.metrics.correct.words;
    assert!(
        words <= FAILURE_FREE_WORDS_PER_N * n as u64,
        "failure-free words must stay linear: {words} > 25·{n}"
    );
    assert!(elapsed.as_secs() < 60, "n={n} DES run took {elapsed:?}, budget is 60s");
}
