//! Large-n BB over *real loopback sockets*: the readiness-driven mesh
//! must carry cluster sizes the thread-per-link design could not.
//!
//! The thread math is the whole point. An n-process in-host cluster on
//! the old mesh cost `n × (2(n-1) + 1)` I/O threads (a reader and a
//! writer per directed link, plus an acceptor) — about 20,000 threads at
//! n = 101, beyond practical limits. The reactor mesh costs one I/O
//! thread per process; with the engine's one protocol thread per
//! process, the whole cluster is O(n) OS threads, and these tests
//! *assert* that budget from `/proc/self/status` while the run is live.
//!
//! Word totals must match the deterministic DES backend exactly: moving
//! the same scenario onto sockets changes the transport, not what the
//! protocol pays (`docs/CORRECTNESS.md` §9–§11).
//!
//! Ignored in the default (debug) suite; `scripts/check.sh` runs them in
//! release, where an n = 101 run finishes in a few seconds.

use meba_core::{Decision, SystemConfig};
use meba_net::ClusterConfig;
use meba_testkit::{assert_agreement, bb_actors, bb_des, bb_report_decisions, round_budget, Fault};
use meba_wire::{raise_nofile_limit, run_tcp_cluster, TcpClusterConfig, TcpClusterReport};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Current OS thread count of this process (Linux: authoritative from
/// procfs; elsewhere: 0, which disables the budget assertions).
fn current_threads() -> usize {
    if cfg!(target_os = "linux") {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("Threads:").map(|v| v.trim().parse().ok()))
                    .flatten()
            })
            .unwrap_or(0)
    } else {
        0
    }
}

/// Samples the process's thread count every few milliseconds while `f`
/// runs and returns `(f's result, peak thread count observed)`.
fn with_thread_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(current_threads()));
    let monitor = {
        let stop = stop.clone();
        let peak = peak.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(current_threads(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let out = f();
    stop.store(true, Ordering::Relaxed);
    monitor.join().expect("thread monitor");
    (out, peak.load(Ordering::Relaxed))
}

/// Retries a wall-clock TCP run with a widening δ until it completes
/// overrun-free (word equality with DES is only promised while the
/// synchrony assumption held — see `cross_runtime.rs`).
fn clean_tcp_run(
    label: &str,
    n: usize,
    sender: u32,
    input: u64,
    mut delta: Duration,
) -> TcpClusterReport<meba_testkit::BbM> {
    let faults = vec![Fault::None; n];
    let system = SystemConfig::new(n, 0x5ca1e).unwrap();
    for _ in 0..5 {
        let config = TcpClusterConfig {
            cluster: ClusterConfig {
                delta,
                max_rounds: round_budget(n),
                ..ClusterConfig::default()
            },
            dial_timeout: Duration::from_secs(120),
            ..TcpClusterConfig::default()
        };
        let report = run_tcp_cluster(bb_actors(sender, input, &faults), &system, config)
            .expect("loopback mesh establishes");
        if report.report.completed && report.report.overruns == 0 {
            return report;
        }
        delta *= 4;
    }
    panic!("{label}: no overrun-free run within the attempt budget");
}

/// Descriptors an n-process in-host cluster holds: every directed link
/// is a socket on both ends (`2n(n-1)`), plus a listener and a wake pipe
/// per process and harness slack.
fn fds_needed(n: usize) -> u64 {
    (2 * n * (n - 1) + 4 * n + 512) as u64
}

fn scale_run(target_n: usize, floor_n: usize, delta: Duration, seed: u64) {
    // Ask for the full target; some sandboxes cap the *hard* nofile
    // limit below `2n(n-1)`, in which case the run sizes itself down to
    // the largest odd n the grant covers (still well past the old
    // thread-per-link mesh's reach) instead of failing on a limit the
    // test cannot change.
    let got = raise_nofile_limit(fds_needed(target_n));
    let mut n = target_n;
    while n > floor_n && fds_needed(n) > got {
        n -= 2;
    }
    assert!(
        fds_needed(n) <= got,
        "need {} file descriptors for even the n={floor_n} floor but only got {got}; \
         raise the nofile limit to run this test",
        fds_needed(floor_n),
    );
    if n < target_n {
        eprintln!(
            "tcp_scale: nofile limit {got} cannot hold n={target_n} \
             ({} descriptors); running n={n} instead",
            fds_needed(target_n),
        );
    }

    let faults = vec![Fault::None; n];
    let (sender, input) = (0u32, 7u64);
    let des = bb_des(sender, input, &faults, seed);
    assert!(des.completed, "n={n} DES reference run must decide");

    let (tcp, peak_threads) =
        with_thread_peak(|| clean_tcp_run("scale BB", n, sender, input, delta));

    assert_eq!(
        assert_agreement(&bb_report_decisions(&tcp.report, &faults)),
        Decision::Value(input)
    );
    assert_eq!(
        bb_report_decisions(&tcp.report, &faults),
        bb_report_decisions(&des, &faults),
        "decisions diverge between TCP and DES at n={n}"
    );
    assert_eq!(
        tcp.report.metrics.correct.words, des.metrics.correct.words,
        "correct word totals diverge between TCP and DES at n={n}"
    );
    assert_eq!(tcp.frames_dropped, 0, "a healthy run drops nothing");

    // The O(n) thread budget: engine thread + reactor thread per
    // process, plus coordinator/monitor/harness slack. The retired
    // thread-per-link mesh needed ~2n² threads and could not pass this.
    if peak_threads > 0 {
        let budget = 4 * n + 64;
        assert!(
            peak_threads <= budget,
            "n={n}: peak {peak_threads} OS threads exceeds O(n) budget {budget} \
             (thread-per-link regression?)"
        );
    }
}

/// Release-mode CI smoke: n = 65 over real sockets, word totals equal to
/// DES, O(n) threads.
#[test]
#[ignore = "release-mode scale smoke; executed by scripts/check.sh with --include-ignored"]
fn tcp_bb_n65_matches_des_with_linear_threads() {
    scale_run(65, 65, Duration::from_millis(25), 0x65);
}

/// The acceptance run: n = 101 (100+ real-socket processes in one host)
/// failure-free BB to decision, word totals equal to DES, O(n) threads.
/// On hosts whose hard nofile limit cannot hold `2n(n-1)` sockets the
/// run sizes itself down (largest odd n the grant covers, ≥ 65).
#[test]
#[ignore = "large-n acceptance run; executed in release by scripts/check.sh"]
fn tcp_bb_n101_matches_des_with_linear_threads() {
    scale_run(101, 65, Duration::from_millis(50), 0x101);
}
