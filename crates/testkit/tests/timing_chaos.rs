//! Timing-hazard regression matrix for the event-driven round engine.
//!
//! The paper's protocols are specified in the synchronous model: a known
//! round length δ, aligned clocks, every round-`r` message delivered
//! before round `r + 1`. The event-driven refactor lets the DES backend
//! break each of those assumptions independently — per-process clock
//! skew, a mis-estimated δ (local timers at 0.5×–2× the true network
//! bound), and a pre-GST asynchronous period with arbitrarily late
//! messages. This suite pins down the two properties the refactor
//! promises:
//!
//! * **Safety is timing-free.** Agreement never breaks, no matter how
//!   wrong the timing assumptions are: the `sent_round` admission rule
//!   buffers early arrivals and admits late ones, so quorum
//!   intersection arguments survive (docs/CORRECTNESS.md §12).
//! * **Performance degrades, boundedly.** Within the acceptance
//!   envelope — δ-estimate within 0.5×–2× and real delay + skew inside
//!   the paper's precondition for that estimate (Lemma 18's
//!   delay + skew < round length) — runs still decide the expected
//!   value and pay at most 2× the lockstep baseline's correct words.
//!   Outside it (E17 sweeps 0.25×–4×), words grow but agreement still
//!   holds.

use meba_core::Decision;
use meba_testkit::{
    assert_agreement, bb_des, bb_des_timed, bb_report_decisions, weak_ba_des_timed,
    weak_ba_report_decisions, Fault, Timing,
};

const DELTA: u64 = Timing::DELTA_NS;

/// The acceptance criteria scenario: a mis-estimated δ on both sides
/// (local timers at 0.5×–2× the nominal δ) combined with per-process
/// clock skew at the paper's bound *for that timer* — Lemma 18 requires
/// delay + skew < round length, so each cell caps real link delay at
/// half the timer and skew at a quarter of it. Every run must decide
/// the sender's value with correct words within 2× of the lockstep
/// baseline. The driver advances on a full inbox (quorum = n) or the
/// local timer, whichever first: with the precondition honored, quorum
/// advancement never strands straggler traffic and the word bill
/// matches lockstep exactly (the 2× budget is slack, not need).
#[test]
fn skewed_misestimated_delta_decides_within_twice_the_lockstep_words() {
    let n = 5;
    let faults = vec![Fault::None; n];
    let (sender, input, seed) = (0u32, 42u64, 0x7157_u64);

    let baseline = bb_des(sender, input, &faults, seed);
    assert!(baseline.completed);
    let budget = 2 * baseline.metrics.correct.words;

    for timeout_factor in [0.5, 1.0, 2.0] {
        let timer = (timeout_factor * DELTA as f64) as u64;
        let timing = Timing::quorum_or_timeout(timeout_factor)
            .with_quorum(n)
            .with_link_cap(timer / 2)
            .with_skew(timer / 4);
        let report = bb_des_timed(sender, input, &faults, seed, &timing);
        assert!(report.completed, "timeout_factor = {timeout_factor}: run must decide");
        assert_eq!(
            assert_agreement(&bb_report_decisions(&report, &faults)),
            Decision::Value(input),
            "timeout_factor = {timeout_factor}: validity under timing hazards"
        );
        assert!(
            report.metrics.correct.words <= budget,
            "timeout_factor = {timeout_factor}: {} words exceeds 2x the lockstep \
             baseline of {} words",
            report.metrics.correct.words,
            baseline.metrics.correct.words,
        );
    }
}

/// Clock skew alone (no quorum advancement, lockstep schedules shifted
/// per process by up to δ/2). The DES samples link delay saturating
/// (0, δ), so δ/2 of skew leaves *no* margin — some deliveries
/// legitimately miss their round (Lemma 18's bound is delay + skew <
/// round length, and delay alone already reaches it). The protocol must
/// still decide the sender's value — the misses degrade to omissions
/// the help machinery absorbs for extra words (safety is timing-free;
/// the word bill is not, once the precondition breaks).
#[test]
fn lockstep_with_skewed_clocks_stays_safe() {
    let n = 7;
    let mut faults = vec![Fault::None; n];
    faults[4] = Fault::Idle;
    let (sender, input, seed) = (1u32, 9001u64, 0xca1f_u64);

    let aligned = bb_des(sender, input, &faults, seed);
    let skewed =
        bb_des_timed(sender, input, &faults, seed, &Timing::lockstep().with_skew(DELTA / 2));
    assert!(aligned.completed && skewed.completed);
    assert_eq!(assert_agreement(&bb_report_decisions(&skewed, &faults)), Decision::Value(input));

    // Skew *within* the margin left by a capped-delay network is free:
    // delay (< δ/2) + skew (≤ δ/2) stays under the round length.
    let capped = Timing::lockstep().with_link_cap(DELTA / 2).with_skew(DELTA / 2);
    let in_bound = bb_des_timed(sender, input, &faults, seed, &capped);
    assert!(in_bound.completed);
    assert_eq!(assert_agreement(&bb_report_decisions(&in_bound, &faults)), Decision::Value(input));
    assert_eq!(
        in_bound.metrics.correct.words, aligned.metrics.correct.words,
        "in-bound skew must not change what the protocol pays"
    );
    assert_eq!(in_bound.rounds, aligned.rounds);
}

/// GST regression: messages sent before the global stabilization time
/// may be arbitrarily late (here up to 12δ), violating the synchrony
/// assumption outright for the protocol's opening rounds. Agreement
/// must survive — the late traffic degrades to omissions, which the
/// help machinery and fallback absorb. The decided *value* is not
/// asserted: with the sender's round-0 broadcast delayed past its
/// receivers' round 1, deciding ⊥ is a legitimate outcome.
#[test]
fn pre_gst_late_messages_never_break_agreement() {
    let n = 5;
    let faults = vec![Fault::None; n];

    for (gst_rounds, seed) in [(2u64, 0x6571_u64), (5, 0x6572), (10, 0x6573)] {
        let timing = Timing::lockstep().with_gst(gst_rounds * DELTA, 12 * DELTA);
        let report = bb_des_timed(0, 31, &faults, seed, &timing);
        assert!(report.completed, "GST at {gst_rounds} rounds: run must terminate");
        let decision = assert_agreement(&bb_report_decisions(&report, &faults));
        assert!(
            matches!(decision, Decision::Value(31) | Decision::Bot),
            "GST at {gst_rounds} rounds: unexpected decision {decision:?}"
        );
    }
}

/// The full hazard stack at once — quorum-or-timeout driver, skewed
/// clocks, *and* an asynchronous prefix — on weak BA with a silent
/// process. Agreement and termination must hold through the
/// combination.
#[test]
fn combined_hazards_still_reach_weak_ba_agreement() {
    let n = 5;
    let mut faults = vec![Fault::None; n];
    faults[2] = Fault::Idle;
    let inputs = vec![17u64; n];

    let timing = Timing::quorum_or_timeout(1.5)
        .with_quorum(n)
        .with_skew(DELTA / 2)
        .with_gst(3 * DELTA, 8 * DELTA);
    let report = weak_ba_des_timed(&inputs, &faults, 0xbeef, &timing);
    assert!(report.completed, "combined hazards: run must terminate");
    let d = assert_agreement(&weak_ba_report_decisions(&report, &faults));
    assert!(
        matches!(d, Decision::Value(17) | Decision::Bot),
        "combined hazards: unexpected decision {d:?}"
    );
}

/// A mis-estimate far outside the acceptance envelope (timers at 4× δ)
/// only slows the run down — quorum advancement keeps chatty rounds
/// fast, silent rounds wait out the long timer, and the decision is
/// unchanged. This is the far end of the E17 sweep.
#[test]
fn gross_overestimate_is_slow_but_safe() {
    let n = 5;
    let faults = vec![Fault::None; n];
    let report = bb_des_timed(0, 8, &faults, 0xfade, &Timing::quorum_or_timeout(4.0));
    assert!(report.completed);
    assert_eq!(assert_agreement(&bb_report_decisions(&report, &faults)), Decision::Value(8));
}
