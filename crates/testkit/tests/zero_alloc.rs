//! Zero-allocation regression for the steady-state hot path.
//!
//! One protocol round's worth of message handling — encode into the
//! scratch encoder, frame, read the frame back through the reusable
//! scratch, decode, and verify the signature — must perform **zero**
//! heap allocations once the buffers have warmed up. This pins the
//! zero-copy refactor (borrowed decoding, pooled frame buffers, primed
//! HMAC states) against regressions that would silently reintroduce a
//! per-message allocation.
//!
//! The file holds exactly one `#[test]` so no parallel test thread can
//! pollute the process-global allocation counter.

use meba_core::{signing::VoteSig, SystemConfig};
use meba_crypto::{
    trusted_setup, DecodeError, Decoder, Encoder, Pki, ProcessId, Signable, Signature, WireCodec,
};
use meba_testkit::alloc_count::{count_allocations, CountingAlloc};
use meba_wire::frame::{read_frame, write_frame};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// A round's vote as it crosses a link: header fields plus the sender's
/// signature share. All fields are fixed-size, so decoding borrows from
/// the frame and allocates nothing.
#[derive(Clone, Debug, PartialEq)]
struct Vote {
    round: u64,
    from: ProcessId,
    value: u64,
    share: Signature,
}

impl WireCodec for Vote {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.round);
        enc.put_id(self.from);
        enc.put_u64(self.value);
        self.share.encode_wire(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Vote {
            round: dec.get_u64()?,
            from: dec.get_id()?,
            value: dec.get_u64()?,
            share: Signature::decode_wire(dec)?,
        })
    }
}

/// One steady-state cycle: encode → frame → read → decode → verify.
/// Every buffer involved is caller-owned and reused across cycles.
fn cycle(
    msg: &Vote,
    pki: &Pki,
    value: u64,
    session: u64,
    enc: &mut Encoder,
    wire: &mut Vec<u8>,
    payload: &mut Vec<u8>,
) -> u64 {
    msg.encode_wire_into(enc);
    wire.clear();
    write_frame(wire, enc.as_bytes()).expect("frame fits");
    let mut r = &wire[..];
    read_frame(&mut r, payload).expect("frame reads back");
    let mut dec = Decoder::new(payload);
    let got = Vote::decode_wire(&mut dec).expect("canonical bytes decode");
    dec.finish().expect("no trailing bytes");
    let sig = VoteSig { session, value: &value, level: 3 };
    sig.with_signing_bytes(|pre| pki.verify(pre, &got.share).expect("share verifies"));
    got.round
}

#[test]
fn steady_state_round_cycle_allocates_nothing() {
    let cfg = SystemConfig::new(9, 7).expect("valid config");
    let (pki, keys) = trusted_setup(9, 0xa110c);
    let value = 42u64;
    let payload = VoteSig { session: cfg.session(), value: &value, level: 3 };
    let share = payload.with_signing_bytes(|pre| keys[3].sign(pre));
    let msg = Vote { round: 11, from: ProcessId(3), value, share };

    let mut enc = Encoder::new();
    let mut wire = Vec::new();
    let mut scratch = Vec::new();

    // Warm-up: grow the encoder, the frame buffer, the read scratch, and
    // the thread-local signing scratch to their steady-state sizes.
    for _ in 0..8 {
        cycle(&msg, &pki, value, cfg.session(), &mut enc, &mut wire, &mut scratch);
    }

    let (allocs, sink) = count_allocations(|| {
        let mut acc = 0u64;
        for _ in 0..1_000 {
            acc ^= cycle(&msg, &pki, value, cfg.session(), &mut enc, &mut wire, &mut scratch);
        }
        acc
    });
    assert_eq!(sink, 0, "1000 xors of round 11 cancel out");
    assert_eq!(
        allocs, 0,
        "steady-state encode→frame→decode→verify must not touch the heap \
         ({allocs} allocations in 1000 cycles)"
    );
}
