//! Cross-runtime equivalence: the same protocol, the same inputs, the
//! same decisions — and, where scheduling is equivalent, the same word
//! and round counts — on every backend the engine drives.
//!
//! The contract under test is the one `meba-engine` extracts: a round is
//! "release pending → drain → partition by `sent_round` → step → account
//! and dispatch the outbox" on every backend, so moving a scenario from
//! the lockstep simulator to the discrete-event queue, the threaded
//! cluster, or real TCP sockets must not change what the protocol
//! decides or how many words correct processes pay.
//!
//! The lockstep simulator's rushing adversary (corrupt actors observing
//! a round's traffic early) is the one scheduling feature the other
//! backends do not model, so fault matrices here are restricted to
//! scheduling-independent faults (silent processes).

use meba_core::Decision;
use meba_crypto::ProcessId;
use meba_net::{run_cluster, ClusterConfig};
use meba_testkit::{
    assert_agreement, bb_actors, bb_decisions, bb_des, bb_des_timed, bb_report_decisions, bb_sim,
    corrupt_ids, round_budget, strong_ba_decisions, strong_ba_des, strong_ba_report_decisions,
    strong_ba_sim, weak_ba_decisions, weak_ba_des, weak_ba_report_decisions, weak_ba_sim, Fault,
    Timing,
};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    // Failure-free BB: lockstep and discrete-event agree on decisions,
    // correct words, and round count — for every system size, sender,
    // input, and DES latency seed.
    #[test]
    fn bb_lockstep_and_des_are_equivalent(
        pick in 0usize..3,
        sender_raw in 0u32..7,
        input in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let n = [3usize, 5, 7][pick];
        let sender = sender_raw % n as u32;
        let faults = vec![Fault::None; n];

        let mut sim = bb_sim(sender, input, &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let lockstep = bb_decisions(&sim, &faults);

        let report = bb_des(sender, input, &faults, seed);
        prop_assert!(report.completed, "DES run must complete");
        let des = bb_report_decisions(&report, &faults);

        prop_assert_eq!(&lockstep, &des, "decisions diverge across backends");
        prop_assert_eq!(assert_agreement(&des), Decision::Value(input));
        prop_assert_eq!(
            sim.metrics().correct.words,
            report.metrics.correct.words,
            "correct word totals diverge across backends"
        );
        prop_assert_eq!(sim.metrics().rounds, report.rounds, "round counts diverge");
    }

    // Weak BA under silent (scheduling-independent) faults: decisions,
    // words, and rounds match between lockstep and discrete-event.
    #[test]
    fn weak_ba_lockstep_and_des_are_equivalent(
        pick in 0usize..2,
        idle_raw in 0u32..7,
        input in 1u64..1_000,
        seed in any::<u64>(),
    ) {
        let n = [5usize, 7][pick];
        let mut faults = vec![Fault::None; n];
        faults[(idle_raw % n as u32) as usize] = Fault::Idle;
        let inputs = vec![input; n];

        let mut sim = weak_ba_sim(&inputs, &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let lockstep = weak_ba_decisions(&sim, &faults);

        let report = weak_ba_des(&inputs, &faults, seed);
        prop_assert!(report.completed, "DES run must complete");
        let des = weak_ba_report_decisions(&report, &faults);

        prop_assert_eq!(&lockstep, &des, "decisions diverge across backends");
        prop_assert_eq!(
            sim.metrics().correct.words,
            report.metrics.correct.words,
            "correct word totals diverge across backends"
        );
        prop_assert_eq!(sim.metrics().rounds, report.rounds, "round counts diverge");
    }

    // The event-driven refactor's compatibility contract: driving the
    // DES backend through the explicit lockstep `RoundDriver` produces
    // *byte-identical* serialized metrics to the pre-refactor global
    // schedule (which `DesConfig::default()` preserves) — for every
    // system size, sender, fault placement, and latency seed. Not just
    // the same decisions: the same words, rounds, per-link stats, and
    // advance causes, byte for byte.
    #[test]
    fn lockstep_driver_is_byte_identical_to_the_global_schedule(
        pick in 0usize..3,
        sender_raw in 0u32..7,
        idle_raw in 0u32..8,
        input in 1u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let n = [3usize, 5, 7][pick];
        let sender = sender_raw % n as u32;
        let mut faults = vec![Fault::None; n];
        let idle = (idle_raw % (n as u32 + 1)) as usize;
        if idle < n && idle as u32 != sender {
            faults[idle] = Fault::Idle;
        }

        let default_run = bb_des(sender, input, &faults, seed);
        let driven_run = bb_des_timed(sender, input, &faults, seed, &Timing::lockstep());
        prop_assert!(default_run.completed && driven_run.completed);
        prop_assert_eq!(default_run.rounds, driven_run.rounds);
        prop_assert_eq!(
            serde_json::to_string(&default_run.metrics).unwrap(),
            serde_json::to_string(&driven_run.metrics).unwrap(),
            "lockstep RoundDriver must reproduce the global schedule byte-identically"
        );
    }
}

/// Strong BA (binary, unanimous true) with one silent process: all three
/// in-process backends decide identically and the two deterministic ones
/// agree on words.
#[test]
fn strong_ba_matches_across_lockstep_and_des() {
    let n = 5;
    let mut faults = vec![Fault::None; n];
    faults[3] = Fault::Idle;
    let inputs = vec![true; n];

    let mut sim = strong_ba_sim(&inputs, &faults);
    sim.run_until_done(round_budget(n)).unwrap();
    let lockstep = strong_ba_decisions(&sim, &faults);

    let report = strong_ba_des(&inputs, &faults, 0xabcd);
    assert!(report.completed);
    let des = strong_ba_report_decisions(&report, &faults);

    assert_eq!(lockstep, des);
    assert!(assert_agreement(&des));
    assert_eq!(sim.metrics().correct.words, report.metrics.correct.words);
    assert_eq!(sim.metrics().rounds, report.rounds);
}

/// Retries a wall-clock cluster run until it completes with zero
/// overruns — word-count equality with the deterministic backends is only
/// promised while the synchrony assumption actually held, and under
/// parallel test-suite load a δ of a few milliseconds can be missed.
/// Panics if no clean run happens within the attempt budget.
fn clean_run<M, F>(label: &str, mut run: F) -> meba_engine::ClusterReport<M>
where
    M: meba_sim::Message,
    F: FnMut(Duration) -> meba_engine::ClusterReport<M>,
{
    let mut delta = Duration::from_millis(2);
    for _ in 0..5 {
        let report = run(delta);
        if report.completed && report.overruns == 0 {
            return report;
        }
        // A loaded machine missed the deadline schedule: widen δ and
        // try again rather than comparing a desynchronized run.
        delta *= 4;
    }
    panic!("{label}: no overrun-free run within the attempt budget");
}

/// The threaded wall-clock cluster — same engine, channel transport —
/// reaches the same decisions and pays the same correct words as the
/// discrete-event backend on a failure-free BB run.
#[test]
fn threaded_cluster_matches_des_decisions_and_words() {
    let n = 5;
    let faults = vec![Fault::None; n];
    let (sender, input) = (2u32, 77u64);

    let des = bb_des(sender, input, &faults, 1);
    assert!(des.completed);

    let threaded = clean_run("threaded BB", |delta| {
        let config = ClusterConfig {
            delta,
            max_rounds: round_budget(n),
            corrupt: corrupt_ids(&faults),
            ..ClusterConfig::default()
        };
        run_cluster(bb_actors(sender, input, &faults), config)
    });

    assert_eq!(
        bb_report_decisions(&threaded, &faults),
        bb_report_decisions(&des, &faults),
        "decisions diverge between threaded and DES"
    );
    assert_eq!(assert_agreement(&bb_report_decisions(&des, &faults)), Decision::Value(input));
    assert_eq!(
        threaded.metrics.correct.words, des.metrics.correct.words,
        "correct word totals diverge between threaded and DES"
    );
}

/// Real TCP sockets: the smoke subset of the equivalence matrix. The
/// loopback cluster must decide exactly what the DES backend decides and
/// pay the same correct words.
#[test]
fn tcp_cluster_matches_des_decisions_and_words() {
    use meba_core::SystemConfig;
    use meba_wire::{run_tcp_cluster, TcpClusterConfig};

    let n = 3;
    let faults = vec![Fault::None; n];
    let (sender, input) = (0u32, 9u64);

    let des = bb_des(sender, input, &faults, 2);
    assert!(des.completed);

    let system = SystemConfig::new(n, 0xbb).unwrap();
    let report = clean_run("TCP BB", |delta| {
        let config = TcpClusterConfig {
            cluster: ClusterConfig {
                delta: delta.max(Duration::from_millis(5)),
                max_rounds: round_budget(n),
                ..ClusterConfig::default()
            },
            ..TcpClusterConfig::default()
        };
        run_tcp_cluster(bb_actors(sender, input, &faults), &system, config)
            .expect("loopback mesh establishes")
            .report
    });

    assert_eq!(
        bb_report_decisions(&report, &faults),
        bb_report_decisions(&des, &faults),
        "decisions diverge between TCP and DES"
    );
    assert_eq!(
        report.metrics.correct.words, des.metrics.correct.words,
        "correct word totals diverge between TCP and DES"
    );
}

/// DES determinism: the same seed yields *byte-identical* metrics — the
/// whole serialized struct, not just the headline counters.
#[test]
fn des_same_seed_is_byte_identical() {
    let faults = vec![Fault::None; 5];
    let run = |seed: u64| {
        let report = bb_des(0, 42, &faults, seed);
        assert!(report.completed);
        serde_json::to_string(&report.metrics).expect("metrics serialize")
    };
    assert_eq!(run(0xfeed), run(0xfeed), "same seed must be byte-identical");
    // A different latency seed reschedules deliveries inside the round
    // window but cannot change what the protocol pays.
    let a = bb_des(0, 42, &faults, 1);
    let b = bb_des(0, 42, &faults, 2);
    assert_eq!(a.metrics.correct.words, b.metrics.correct.words);
    assert_eq!(a.rounds, b.rounds);
}

/// A fault matrix that only silences processes never depends on who
/// observes what first, so even the link-latency seed is irrelevant to
/// the decision — spot-check with the mixed silent matrix.
#[test]
fn des_silent_faults_decide_like_lockstep_matrix() {
    let faults = vec![
        Fault::None,
        Fault::Idle,
        Fault::None,
        Fault::None,
        Fault::Idle,
        Fault::None,
        Fault::None,
    ];
    let report = bb_des(0, 31, &faults, 0x5eed);
    assert!(report.completed);
    assert_eq!(ProcessId(0), report.actors[0].id());
    assert_eq!(
        assert_agreement(&bb_report_decisions(&report, &faults)),
        Decision::Value(31),
        "t-silent matrix still decides the sender's value"
    );
}
