//! Fault-matrix test harness for the `meba` protocols.
//!
//! Downstream users (and this workspace's own integration tests) build
//! adversarial simulations in one call: pick a protocol, assign a
//! [`Fault`] to each process, run, and assert. All builders wire the
//! production [`RecursiveBaFactory`] fallback.
//!
//! Every protocol comes in two layers:
//!
//! * `*_actors` — builds the fault-wrapped actor vector, runtime-free.
//!   Hand it to any backend: [`SimBuilder`] (lockstep),
//!   [`meba_net::run_cluster`] (threaded), `meba_wire::run_tcp_cluster`
//!   (TCP), or [`meba_engine::run_des_cluster`] (discrete-event).
//! * `*_sim` / `*_des` — one-call runners over the lockstep simulator
//!   and the deterministic discrete-event backend respectively. The DES
//!   runners are what make n = 100–200 protocol runs practical in tests
//!   and benchmarks.
//!
//! # Examples
//!
//! ```
//! use meba_testkit::{assert_agreement, bb_sim, bb_decisions, round_budget, Fault};
//! use meba_core::Decision;
//!
//! // n = 7 adaptive BB: sender p0 broadcasts 42, p3 crashed from round 0.
//! let mut faults = vec![Fault::None; 7];
//! faults[3] = Fault::Idle;
//! let mut sim = bb_sim(0, 42, &faults);
//! sim.run_until_done(round_budget(7))?;
//! let d = assert_agreement(&bb_decisions(&sim, &faults));
//! assert_eq!(d, Decision::Value(42));
//! # Ok::<(), meba_sim::RunError>(())
//! ```
//!
//! The same scenario on the discrete-event backend (no lockstep rushing
//! adversary, but identical decisions and word counts when the faults
//! are scheduling-independent):
//!
//! ```
//! use meba_testkit::{assert_agreement, bb_des, bb_report_decisions, Fault};
//! use meba_core::Decision;
//!
//! let faults = vec![Fault::None; 7];
//! let report = bb_des(0, 42, &faults, 0xd15c);
//! assert!(report.completed);
//! let d = assert_agreement(&bb_report_decisions(&report, &faults));
//! assert_eq!(d, Decision::Value(42));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)] // allowed only inside `alloc_count` (the GlobalAlloc impl)

pub mod alloc_count;
pub mod recovery;
pub mod service;

pub use recovery::{
    recoverable_decision, DoubleSign, DoubleSignDetector, RecWbaProc, WeakBaRecoveryHarness,
};
pub use service::{audit_proposals, service_replica, ServiceHarness, ServiceM, ServiceProc};

use meba_adversary::{ChaosActor, CrashActor, LossyLinkActor};
use meba_core::{
    AlwaysValid, Bb, Decision, LockstepAdapter, StrongBa, SubProtocol, SystemConfig, WeakBa,
};
use meba_crypto::{trusted_setup, ProcessId};
pub use meba_engine::{default_quorum, AdvanceCause, RoundDriverConfig};
use meba_engine::{run_des_cluster, ClusterReport, DesConfig};
use meba_fallback::RecursiveBaFactory;
use meba_sim::faults::BernoulliDrop;
use meba_sim::{Actor, AnyActor, IdleActor, Round, SimBuilder, Simulation};
use meba_smr::{LogEntry, ReplicatedLog};

/// Per-message drop probability applied by [`Fault::Lossy`]: heavy enough
/// that multi-round certificate collection routinely misses this
/// process's traffic.
const LOSSY_DROP_PROB: f64 = 0.75;

/// Fault assignment for one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Correct.
    None,
    /// Crashed from the start (a silent Byzantine process).
    Idle,
    /// Runs the honest protocol under *Byzantine* (rushed) scheduling
    /// until the given round, then goes silent. For honest-until-crash
    /// with honest scheduling, use [`meba_sim::SimBuilder::crash_at`]
    /// instead.
    CrashAt(u64),
    /// Replays observed messages at random (seeded).
    Chaos(u64),
    /// Runs the honest protocol, but each outbound message is dropped
    /// with high probability (seeded; see
    /// [`meba_adversary::LossyLinkActor`]). Models a correct machine on a
    /// failing network — which the synchronous model must count toward
    /// `f`, since its words can exceed `δ`.
    Lossy(u64),
}

impl Fault {
    /// Whether this assignment counts toward `f`.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, Fault::None)
    }
}

/// The BB state machine the harness builds.
pub type BbProc = Bb<u64, RecursiveBaFactory>;
/// Its wire-message type.
pub type BbM = <BbProc as SubProtocol>::Msg;
/// The weak BA state machine the harness builds.
pub type WbaProc = WeakBa<u64, AlwaysValid, RecursiveBaFactory>;
/// Its wire-message type.
pub type WbaM = <WbaProc as SubProtocol>::Msg;
/// The strong BA state machine the harness builds.
pub type SbaProc = StrongBa<RecursiveBaFactory>;
/// Its wire-message type.
pub type SbaM = <SbaProc as SubProtocol>::Msg;
/// The replicated-log replica the harness builds.
pub type LogProc = ReplicatedLog<u64, RecursiveBaFactory>;
/// Its wire-message type (session-tagged BB messages).
pub type LogM = <LogProc as Actor>::Msg;

/// The processes a fault matrix counts toward `f` — the `corrupt` set
/// every backend takes.
pub fn corrupt_ids(faults: &[Fault]) -> Vec<ProcessId> {
    faults
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_byzantine())
        .map(|(i, _)| ProcessId(i as u32))
        .collect()
}

fn apply_faults<M: meba_sim::Message>(
    mut builder: SimBuilder<M>,
    faults: &[Fault],
) -> SimBuilder<M> {
    for id in corrupt_ids(faults) {
        builder = builder.corrupt(id);
    }
    builder
}

/// Wraps one process's honest actor according to its [`Fault`]. `honest`
/// is only invoked for fault kinds that run the real protocol.
fn apply_fault<M, A, F>(id: ProcessId, fault: Fault, honest: F) -> Box<dyn AnyActor<Msg = M>>
where
    M: meba_sim::Message,
    A: AnyActor<Msg = M> + 'static,
    F: FnOnce() -> A,
{
    match fault {
        Fault::None => Box::new(honest()),
        Fault::Idle => Box::new(IdleActor::new(id)),
        Fault::CrashAt(r) => Box::new(CrashActor::new(honest(), Round(r))),
        Fault::Chaos(seed) => Box::new(ChaosActor::new(id, seed, 4)),
        Fault::Lossy(seed) => Box::new(LossyLinkActor::new(
            honest(),
            Box::new(BernoulliDrop::new(seed, LOSSY_DROP_PROB)),
        )),
    }
}

/// A [`DesConfig`] matched to a fault matrix: the corrupt set is derived
/// from `faults`, the round cap from [`round_budget`].
fn des_config(faults: &[Fault], seed: u64) -> DesConfig {
    DesConfig {
        seed,
        corrupt: corrupt_ids(faults),
        max_rounds: round_budget(faults.len()),
        ..DesConfig::default()
    }
}

/// A timing scenario for the DES backend: the round driver plus the
/// clock-skew and GST hazards of [`DesConfig`]. The default
/// ([`Timing::lockstep`]) reproduces the pre-refactor global schedule
/// exactly, so a `Timing`-parameterized run with defaults is
/// byte-identical to the plain `*_des` runners.
///
/// ```
/// use meba_testkit::{bb_des_timed, bb_report_decisions, assert_agreement, Fault, Timing};
/// use meba_core::Decision;
///
/// // Mis-estimated δ (timer at 0.5× the nominal δ) on a network whose
/// // real delays and skew honor the paper's precondition for that
/// // timer (delay + skew < round length): the run still decides the
/// // sender's value.
/// let faults = vec![Fault::None; 5];
/// let timing = Timing::quorum_or_timeout(0.5)
///     .with_quorum(5)
///     .with_link_cap(Timing::DELTA_NS / 4)
///     .with_skew(Timing::DELTA_NS / 8);
/// let report = bb_des_timed(0, 7, &faults, 0x71ae, &timing);
/// assert!(report.completed);
/// assert_eq!(assert_agreement(&bb_report_decisions(&report, &faults)), Decision::Value(7));
/// ```
#[derive(Clone, Debug)]
pub struct Timing {
    /// How rounds advance (see [`RoundDriverConfig`]).
    pub driver: RoundDriverConfig,
    /// Maximum seeded per-process clock-skew offset in virtual ns.
    pub max_skew_ns: u64,
    /// Global stabilization time on the virtual timeline (0 =
    /// synchronous from the start).
    pub gst_ns: u64,
    /// Latency cap for messages sent before GST (0 = GST changes
    /// nothing).
    pub pre_gst_delay_ns: u64,
    /// True post-GST network-delay cap (`None` = the nominal δ). Timing
    /// scenarios with a δ-estimate below δ set this so the paper's
    /// precondition delay + skew < round length can actually hold.
    pub link_cap_ns: Option<u64>,
}

impl Timing {
    /// The testkit's DES round duration: [`DesConfig::default`]'s
    /// `delta_ns`. Skew and GST knobs are naturally expressed in
    /// multiples of this.
    pub const DELTA_NS: u64 = 1_000_000;

    /// The pre-refactor timing model: global lockstep schedule, aligned
    /// clocks, no GST.
    pub fn lockstep() -> Self {
        Timing {
            driver: RoundDriverConfig::Lockstep,
            max_skew_ns: 0,
            gst_ns: 0,
            pre_gst_delay_ns: 0,
            link_cap_ns: None,
        }
    }

    /// Quorum-or-timeout partial synchrony with the protocol quorum and
    /// a δ-estimate of `timeout_factor · δ` (1.0 = perfect estimate).
    pub fn quorum_or_timeout(timeout_factor: f64) -> Self {
        Timing {
            driver: RoundDriverConfig::QuorumOrTimeout { quorum: None, timeout_factor },
            ..Timing::lockstep()
        }
    }

    /// Overrides the advance quorum (default: the protocol quorum
    /// `n - t`). `Some(n)` advances early only on a complete inbox —
    /// latency win without stranding straggler traffic. No effect under
    /// the lockstep driver.
    pub fn with_quorum(mut self, quorum: usize) -> Self {
        if let RoundDriverConfig::QuorumOrTimeout { quorum: q, .. } = &mut self.driver {
            *q = Some(quorum);
        }
        self
    }

    /// Bounds real post-GST link delay below `link_cap_ns` (instead of
    /// the nominal δ).
    pub fn with_link_cap(mut self, link_cap_ns: u64) -> Self {
        self.link_cap_ns = Some(link_cap_ns);
        self
    }

    /// Adds seeded per-process clock skew up to `max_skew_ns`.
    pub fn with_skew(mut self, max_skew_ns: u64) -> Self {
        self.max_skew_ns = max_skew_ns;
        self
    }

    /// Adds a pre-GST asynchronous period: messages sent before `gst_ns`
    /// may take up to `pre_gst_delay_ns` (typically ≫ δ) to arrive.
    pub fn with_gst(mut self, gst_ns: u64, pre_gst_delay_ns: u64) -> Self {
        self.gst_ns = gst_ns;
        self.pre_gst_delay_ns = pre_gst_delay_ns;
        self
    }

    /// Applies this scenario to a [`DesConfig`].
    fn apply(&self, config: DesConfig) -> DesConfig {
        DesConfig {
            driver: self.driver,
            max_skew_ns: self.max_skew_ns,
            gst_ns: self.gst_ns,
            pre_gst_delay_ns: self.pre_gst_delay_ns,
            link_cap_ns: self.link_cap_ns,
            ..config
        }
    }
}

impl Default for Timing {
    fn default() -> Self {
        Timing::lockstep()
    }
}

/// [`bb_des`] under an explicit [`Timing`] scenario.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3) or the
/// timing scenario is invalid (e.g. a non-positive timeout factor).
pub fn bb_des_timed(
    sender: u32,
    input: u64,
    faults: &[Fault],
    seed: u64,
    timing: &Timing,
) -> ClusterReport<BbM> {
    run_des_cluster(bb_actors(sender, input, faults), None, timing.apply(des_config(faults, seed)))
        .expect("testkit timing scenario is valid")
}

/// [`weak_ba_des`] under an explicit [`Timing`] scenario.
///
/// # Panics
///
/// Panics if the fault matrix or timing scenario is invalid.
pub fn weak_ba_des_timed(
    inputs: &[u64],
    faults: &[Fault],
    seed: u64,
    timing: &Timing,
) -> ClusterReport<WbaM> {
    run_des_cluster(weak_ba_actors(inputs, faults), None, timing.apply(des_config(faults, seed)))
        .expect("testkit timing scenario is valid")
}

/// [`strong_ba_des`] under an explicit [`Timing`] scenario.
///
/// # Panics
///
/// Panics if the fault matrix or timing scenario is invalid.
pub fn strong_ba_des_timed(
    inputs: &[bool],
    faults: &[Fault],
    seed: u64,
    timing: &Timing,
) -> ClusterReport<SbaM> {
    run_des_cluster(strong_ba_actors(inputs, faults), None, timing.apply(des_config(faults, seed)))
        .expect("testkit timing scenario is valid")
}

/// Builds the fault-wrapped adaptive-BB actor vector; `faults[i]`
/// applies to process `i`. Runtime-free: hand the vector to any backend.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn bb_actors(sender: u32, input: u64, faults: &[Fault]) -> Vec<Box<dyn AnyActor<Msg = BbM>>> {
    let n = faults.len();
    let cfg = SystemConfig::new(n, 0xbb).unwrap();
    let (pki, keys) = trusted_setup(n, 0x5eed);
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let pki = pki.clone();
            apply_fault(id, faults[i], move || {
                let bb = if i as u32 == sender {
                    Bb::new_sender(cfg, id, key, pki, factory, input)
                } else {
                    Bb::new(cfg, id, key, pki, factory, ProcessId(sender))
                };
                LockstepAdapter::new(id, bb)
            })
        })
        .collect()
}

/// Builds an adaptive-BB simulation; `faults[i]` applies to process `i`.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn bb_sim(sender: u32, input: u64, faults: &[Fault]) -> Simulation<BbM> {
    apply_faults(SimBuilder::new(bb_actors(sender, input, faults)), faults).build()
}

/// Runs adaptive BB on the deterministic discrete-event backend.
/// One call: build, run to completion (or [`round_budget`]), report.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn bb_des(sender: u32, input: u64, faults: &[Fault], seed: u64) -> ClusterReport<BbM> {
    run_des_cluster(bb_actors(sender, input, faults), None, des_config(faults, seed))
        .expect("testkit DES config is valid")
}

/// Extracts the decision of one correct `LockstepAdapter<P>`-wrapped
/// process.
fn adapter_output<P>(a: &dyn AnyActor<Msg = P::Msg>, i: usize) -> P::Output
where
    P: SubProtocol,
{
    let l: &LockstepAdapter<P> = a.as_any().downcast_ref().unwrap();
    l.inner().output().unwrap_or_else(|| panic!("p{i} did not decide"))
}

/// Decisions of the correct processes of a [`bb_sim`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided — run the simulation to
/// completion first.
pub fn bb_decisions(sim: &Simulation<BbM>, faults: &[Fault]) -> Vec<Decision<u64>> {
    (0..sim.n())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| adapter_output::<BbProc>(sim.actor(ProcessId(i as u32)), i))
        .collect()
}

/// Decisions of the correct processes of a [`bb_des`] (or any
/// cluster-report-producing) BB run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn bb_report_decisions(report: &ClusterReport<BbM>, faults: &[Fault]) -> Vec<Decision<u64>> {
    (0..report.actors.len())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| adapter_output::<BbProc>(report.actors[i].as_ref(), i))
        .collect()
}

/// Builds the fault-wrapped weak-BA actor vector over `u64` values with
/// [`AlwaysValid`]. Runtime-free.
pub fn weak_ba_actors(inputs: &[u64], faults: &[Fault]) -> Vec<Box<dyn AnyActor<Msg = WbaM>>> {
    let n = faults.len();
    assert_eq!(inputs.len(), n, "one input per process");
    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let pki = pki.clone();
            let input = inputs[i];
            apply_fault(id, faults[i], move || {
                LockstepAdapter::new(
                    id,
                    WeakBa::new(cfg, id, key, pki, AlwaysValid, factory, input),
                )
            })
        })
        .collect()
}

/// Builds a weak BA simulation over `u64` values with [`AlwaysValid`].
pub fn weak_ba_sim(inputs: &[u64], faults: &[Fault]) -> Simulation<WbaM> {
    apply_faults(SimBuilder::new(weak_ba_actors(inputs, faults)), faults).build()
}

/// Runs weak BA on the deterministic discrete-event backend.
pub fn weak_ba_des(inputs: &[u64], faults: &[Fault], seed: u64) -> ClusterReport<WbaM> {
    run_des_cluster(weak_ba_actors(inputs, faults), None, des_config(faults, seed))
        .expect("testkit DES config is valid")
}

/// Decisions of the correct processes of a [`weak_ba_sim`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn weak_ba_decisions(sim: &Simulation<WbaM>, faults: &[Fault]) -> Vec<Decision<u64>> {
    (0..sim.n())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| adapter_output::<WbaProc>(sim.actor(ProcessId(i as u32)), i))
        .collect()
}

/// Decisions of the correct processes of a [`weak_ba_des`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn weak_ba_report_decisions(
    report: &ClusterReport<WbaM>,
    faults: &[Fault],
) -> Vec<Decision<u64>> {
    (0..report.actors.len())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| adapter_output::<WbaProc>(report.actors[i].as_ref(), i))
        .collect()
}

/// Builds the fault-wrapped binary strong BA actor vector (Algorithm 5).
/// Runtime-free.
pub fn strong_ba_actors(inputs: &[bool], faults: &[Fault]) -> Vec<Box<dyn AnyActor<Msg = SbaM>>> {
    let n = faults.len();
    assert_eq!(inputs.len(), n, "one input per process");
    let cfg = SystemConfig::new(n, 0x5b).unwrap();
    let (pki, keys) = trusted_setup(n, 0xdead);
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let pki = pki.clone();
            let input = inputs[i];
            apply_fault(id, faults[i], move || {
                LockstepAdapter::new(id, StrongBa::new(cfg, id, key, pki, factory, input))
            })
        })
        .collect()
}

/// Builds a binary strong BA simulation (Algorithm 5).
pub fn strong_ba_sim(inputs: &[bool], faults: &[Fault]) -> Simulation<SbaM> {
    apply_faults(SimBuilder::new(strong_ba_actors(inputs, faults)), faults).build()
}

/// Runs binary strong BA on the deterministic discrete-event backend.
pub fn strong_ba_des(inputs: &[bool], faults: &[Fault], seed: u64) -> ClusterReport<SbaM> {
    run_des_cluster(strong_ba_actors(inputs, faults), None, des_config(faults, seed))
        .expect("testkit DES config is valid")
}

/// Decisions of the correct processes of a [`strong_ba_sim`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn strong_ba_decisions(sim: &Simulation<SbaM>, faults: &[Fault]) -> Vec<bool> {
    (0..sim.n())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| adapter_output::<SbaProc>(sim.actor(ProcessId(i as u32)), i))
        .collect()
}

/// Decisions of the correct processes of a [`strong_ba_des`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn strong_ba_report_decisions(report: &ClusterReport<SbaM>, faults: &[Fault]) -> Vec<bool> {
    (0..report.actors.len())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| adapter_output::<SbaProc>(report.actors[i].as_ref(), i))
        .collect()
}

/// Builds the fault-wrapped replicated-log actor vector: `slots` BB
/// instances multiplexed with pipeline window `window` (`1` =
/// sequential). Replica `i`'s command queue is `100·(i+1) + k` for
/// `k = 0, 1, …`, so slot `k`'s honest proposal is recognizable; `0` is
/// the no-op. Runtime-free.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn log_actors(slots: u64, window: u64, faults: &[Fault]) -> Vec<Box<dyn AnyActor<Msg = LogM>>> {
    let n = faults.len();
    let cfg = SystemConfig::new(n, 0x109).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfee1);
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let pki = pki.clone();
            let commands: Vec<u64> = (0..slots).map(|k| 100 * (i as u64 + 1) + k).collect();
            apply_fault(id, faults[i], move || {
                ReplicatedLog::new(cfg, id, key, pki, factory, slots, commands, 0)
                    .with_window(window)
            })
        })
        .collect()
}

/// Builds a replicated-log simulation: `slots` BB instances multiplexed
/// with pipeline window `window` (`1` = sequential).
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn log_sim(slots: u64, window: u64, faults: &[Fault]) -> Simulation<LogM> {
    apply_faults(SimBuilder::new(log_actors(slots, window, faults)), faults).build()
}

/// Runs the replicated log on the deterministic discrete-event backend
/// (round cap [`log_round_budget`]).
pub fn log_des(slots: u64, window: u64, faults: &[Fault], seed: u64) -> ClusterReport<LogM> {
    let config =
        DesConfig { max_rounds: log_round_budget(faults.len(), slots), ..des_config(faults, seed) };
    run_des_cluster(log_actors(slots, window, faults), None, config)
        .expect("testkit DES config is valid")
}

fn log_of(a: &dyn AnyActor<Msg = LogM>) -> Vec<LogEntry<u64>> {
    let l: &LogProc = a.as_any().downcast_ref().unwrap();
    l.log().to_vec()
}

/// Committed logs of the fault-free replicas of a [`log_sim`] run, in
/// process order. Only `Fault::None` replicas are inspected (the faulty
/// ones are wrapped or replaced and hold no comparable log).
pub fn log_entries(sim: &Simulation<LogM>, faults: &[Fault]) -> Vec<Vec<LogEntry<u64>>> {
    (0..sim.n())
        .filter(|&i| faults[i] == Fault::None)
        .map(|i| log_of(sim.actor(ProcessId(i as u32))))
        .collect()
}

/// Committed logs of the fault-free replicas of a [`log_des`] run.
pub fn log_report_entries(
    report: &ClusterReport<LogM>,
    faults: &[Fault],
) -> Vec<Vec<LogEntry<u64>>> {
    (0..report.actors.len())
        .filter(|&i| faults[i] == Fault::None)
        .map(|i| log_of(report.actors[i].as_ref()))
        .collect()
}

/// A generous round budget for a [`log_sim`] run: every slot may need
/// its full worst-case schedule.
pub fn log_round_budget(n: usize, slots: u64) -> u64 {
    slots * (round_budget(n) + 10)
}

/// Asserts all decisions are equal and returns the common one.
///
/// # Panics
///
/// Panics on an empty slice or on disagreement — the point of the helper.
pub fn assert_agreement<T: PartialEq + std::fmt::Debug + Clone>(decisions: &[T]) -> T {
    assert!(!decisions.is_empty());
    for d in decisions {
        assert_eq!(d, &decisions[0], "agreement violated: {decisions:?}");
    }
    decisions[0].clone()
}

/// A generous per-run round budget: the full fixed schedule (phases, help
/// round, doubled-round fallback) with slack.
pub fn round_budget(n: usize) -> u64 {
    (70 * n as u64) + 200
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_and_runs_each_protocol() {
        let faults = vec![Fault::None, Fault::Idle, Fault::None, Fault::None, Fault::None];
        let mut bb = bb_sim(0, 3, &faults);
        bb.run_until_done(round_budget(5)).unwrap();
        assert_eq!(assert_agreement(&bb_decisions(&bb, &faults)), Decision::Value(3));

        let mut wba = weak_ba_sim(&[2; 5], &faults);
        wba.run_until_done(round_budget(5)).unwrap();
        assert_eq!(assert_agreement(&weak_ba_decisions(&wba, &faults)), Decision::Value(2));

        let mut sba = strong_ba_sim(&[true; 5], &faults);
        sba.run_until_done(round_budget(5)).unwrap();
        assert!(assert_agreement(&strong_ba_decisions(&sba, &faults)));
    }

    #[test]
    fn des_runners_reach_the_same_decisions() {
        let faults = vec![Fault::None; 5];
        let bb = bb_des(0, 3, &faults, 7);
        assert!(bb.completed);
        assert_eq!(assert_agreement(&bb_report_decisions(&bb, &faults)), Decision::Value(3));

        let wba = weak_ba_des(&[2; 5], &faults, 7);
        assert!(wba.completed);
        assert_eq!(assert_agreement(&weak_ba_report_decisions(&wba, &faults)), Decision::Value(2));

        let sba = strong_ba_des(&[true; 5], &faults, 7);
        assert!(sba.completed);
        assert!(assert_agreement(&strong_ba_report_decisions(&sba, &faults)));
    }

    #[test]
    #[should_panic(expected = "agreement violated")]
    fn assert_agreement_panics_on_split() {
        assert_agreement(&[1, 1, 2]);
    }

    #[test]
    fn lossy_fault_still_reaches_agreement() {
        // One process behind a drop-heavy network; the other 4 (n = 5,
        // t = 2) must still decide the sender's value.
        let mut faults = vec![Fault::None; 5];
        faults[2] = Fault::Lossy(0x10);
        assert!(faults[2].is_byzantine(), "lossy processes count toward f");
        let mut bb = bb_sim(0, 9, &faults);
        bb.run_until_done(round_budget(5)).unwrap();
        assert_eq!(assert_agreement(&bb_decisions(&bb, &faults)), Decision::Value(9));
    }
}
