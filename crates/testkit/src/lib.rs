//! Fault-matrix test harness for the `meba` protocols.
//!
//! Downstream users (and this workspace's own integration tests) build
//! adversarial simulations in one call: pick a protocol, assign a
//! [`Fault`] to each process, run, and assert. All builders wire the
//! production [`RecursiveBaFactory`] fallback.
//!
//! # Examples
//!
//! ```
//! use meba_testkit::{assert_agreement, bb_sim, bb_decisions, round_budget, Fault};
//! use meba_core::Decision;
//!
//! // n = 7 adaptive BB: sender p0 broadcasts 42, p3 crashed from round 0.
//! let mut faults = vec![Fault::None; 7];
//! faults[3] = Fault::Idle;
//! let mut sim = bb_sim(0, 42, &faults);
//! sim.run_until_done(round_budget(7))?;
//! let d = assert_agreement(&bb_decisions(&sim, &faults));
//! assert_eq!(d, Decision::Value(42));
//! # Ok::<(), meba_sim::RunError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod recovery;

pub use recovery::{
    recoverable_decision, DoubleSign, DoubleSignDetector, RecWbaProc, WeakBaRecoveryHarness,
};

use meba_adversary::{ChaosActor, CrashActor, LossyLinkActor};
use meba_core::{
    AlwaysValid, Bb, Decision, LockstepAdapter, StrongBa, SubProtocol, SystemConfig, WeakBa,
};
use meba_crypto::{trusted_setup, ProcessId, SecretKey};
use meba_fallback::RecursiveBaFactory;
use meba_sim::faults::BernoulliDrop;
use meba_sim::{Actor, AnyActor, IdleActor, Round, SimBuilder, Simulation};
use meba_smr::{LogEntry, ReplicatedLog};

/// Per-message drop probability applied by [`Fault::Lossy`]: heavy enough
/// that multi-round certificate collection routinely misses this
/// process's traffic.
const LOSSY_DROP_PROB: f64 = 0.75;

/// Fault assignment for one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Correct.
    None,
    /// Crashed from the start (a silent Byzantine process).
    Idle,
    /// Runs the honest protocol under *Byzantine* (rushed) scheduling
    /// until the given round, then goes silent. For honest-until-crash
    /// with honest scheduling, use [`meba_sim::SimBuilder::crash_at`]
    /// instead.
    CrashAt(u64),
    /// Replays observed messages at random (seeded).
    Chaos(u64),
    /// Runs the honest protocol, but each outbound message is dropped
    /// with high probability (seeded; see
    /// [`meba_adversary::LossyLinkActor`]). Models a correct machine on a
    /// failing network — which the synchronous model must count toward
    /// `f`, since its words can exceed `δ`.
    Lossy(u64),
}

impl Fault {
    /// Whether this assignment counts toward `f`.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, Fault::None)
    }
}

/// The BB state machine the harness builds.
pub type BbProc = Bb<u64, RecursiveBaFactory>;
/// Its wire-message type.
pub type BbM = <BbProc as SubProtocol>::Msg;
/// The weak BA state machine the harness builds.
pub type WbaProc = WeakBa<u64, AlwaysValid, RecursiveBaFactory>;
/// Its wire-message type.
pub type WbaM = <WbaProc as SubProtocol>::Msg;
/// The strong BA state machine the harness builds.
pub type SbaProc = StrongBa<RecursiveBaFactory>;
/// Its wire-message type.
pub type SbaM = <SbaProc as SubProtocol>::Msg;
/// The replicated-log replica the harness builds.
pub type LogProc = ReplicatedLog<u64, RecursiveBaFactory>;
/// Its wire-message type (session-tagged BB messages).
pub type LogM = <LogProc as Actor>::Msg;

fn apply_faults<M: meba_sim::Message>(
    mut builder: SimBuilder<M>,
    faults: &[Fault],
) -> SimBuilder<M> {
    for (i, f) in faults.iter().enumerate() {
        if f.is_byzantine() {
            builder = builder.corrupt(ProcessId(i as u32));
        }
    }
    builder
}

/// Builds an adaptive-BB simulation; `faults[i]` applies to process `i`.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn bb_sim(sender: u32, input: u64, faults: &[Fault]) -> Simulation<BbM> {
    let n = faults.len();
    let cfg = SystemConfig::new(n, 0xbb).unwrap();
    let (pki, keys) = trusted_setup(n, 0x5eed);
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let make = |key: SecretKey| {
            if i as u32 == sender {
                Bb::new_sender(cfg, id, key, pki.clone(), factory.clone(), input)
            } else {
                Bb::new(cfg, id, key, pki.clone(), factory.clone(), ProcessId(sender))
            }
        };
        actors.push(match faults[i] {
            Fault::None => Box::new(LockstepAdapter::new(id, make(key))),
            Fault::Idle => Box::new(IdleActor::new(id)),
            Fault::CrashAt(r) => {
                Box::new(CrashActor::new(LockstepAdapter::new(id, make(key)), Round(r)))
            }
            Fault::Chaos(seed) => Box::new(ChaosActor::new(id, seed, 4)),
            Fault::Lossy(seed) => Box::new(LossyLinkActor::new(
                LockstepAdapter::new(id, make(key)),
                Box::new(BernoulliDrop::new(seed, LOSSY_DROP_PROB)),
            )),
        });
    }
    apply_faults(SimBuilder::new(actors), faults).build()
}

/// Decisions of the correct processes of a [`bb_sim`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided — run the simulation to
/// completion first.
pub fn bb_decisions(sim: &Simulation<BbM>, faults: &[Fault]) -> Vec<Decision<u64>> {
    (0..sim.n())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| {
            let a: &LockstepAdapter<BbProc> =
                sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
            a.inner().output().unwrap_or_else(|| panic!("p{i} did not decide"))
        })
        .collect()
}

/// Builds a weak BA simulation over `u64` values with [`AlwaysValid`].
pub fn weak_ba_sim(inputs: &[u64], faults: &[Fault]) -> Simulation<WbaM> {
    let n = faults.len();
    assert_eq!(inputs.len(), n, "one input per process");
    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let make = |key: SecretKey| {
            WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory.clone(), inputs[i])
        };
        actors.push(match faults[i] {
            Fault::None => Box::new(LockstepAdapter::new(id, make(key))),
            Fault::Idle => Box::new(IdleActor::new(id)),
            Fault::CrashAt(r) => {
                Box::new(CrashActor::new(LockstepAdapter::new(id, make(key)), Round(r)))
            }
            Fault::Chaos(seed) => Box::new(ChaosActor::new(id, seed, 4)),
            Fault::Lossy(seed) => Box::new(LossyLinkActor::new(
                LockstepAdapter::new(id, make(key)),
                Box::new(BernoulliDrop::new(seed, LOSSY_DROP_PROB)),
            )),
        });
    }
    apply_faults(SimBuilder::new(actors), faults).build()
}

/// Decisions of the correct processes of a [`weak_ba_sim`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn weak_ba_decisions(sim: &Simulation<WbaM>, faults: &[Fault]) -> Vec<Decision<u64>> {
    (0..sim.n())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
            a.inner().output().unwrap_or_else(|| panic!("p{i} did not decide"))
        })
        .collect()
}

/// Builds a binary strong BA simulation (Algorithm 5).
pub fn strong_ba_sim(inputs: &[bool], faults: &[Fault]) -> Simulation<SbaM> {
    let n = faults.len();
    assert_eq!(inputs.len(), n, "one input per process");
    let cfg = SystemConfig::new(n, 0x5b).unwrap();
    let (pki, keys) = trusted_setup(n, 0xdead);
    let mut actors: Vec<Box<dyn AnyActor<Msg = SbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let make =
            |key: SecretKey| StrongBa::new(cfg, id, key, pki.clone(), factory.clone(), inputs[i]);
        actors.push(match faults[i] {
            Fault::None => Box::new(LockstepAdapter::new(id, make(key))),
            Fault::Idle => Box::new(IdleActor::new(id)),
            Fault::CrashAt(r) => {
                Box::new(CrashActor::new(LockstepAdapter::new(id, make(key)), Round(r)))
            }
            Fault::Chaos(seed) => Box::new(ChaosActor::new(id, seed, 4)),
            Fault::Lossy(seed) => Box::new(LossyLinkActor::new(
                LockstepAdapter::new(id, make(key)),
                Box::new(BernoulliDrop::new(seed, LOSSY_DROP_PROB)),
            )),
        });
    }
    apply_faults(SimBuilder::new(actors), faults).build()
}

/// Decisions of the correct processes of a [`strong_ba_sim`] run.
///
/// # Panics
///
/// Panics if a correct process has not decided.
pub fn strong_ba_decisions(sim: &Simulation<SbaM>, faults: &[Fault]) -> Vec<bool> {
    (0..sim.n())
        .filter(|&i| !faults[i].is_byzantine())
        .map(|i| {
            let a: &LockstepAdapter<SbaProc> =
                sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
            a.inner().output().unwrap_or_else(|| panic!("p{i} did not decide"))
        })
        .collect()
}

/// Builds a replicated-log simulation: `slots` BB instances multiplexed
/// with pipeline window `window` (`1` = sequential). Replica `i`'s
/// command queue is `100·(i+1) + k` for `k = 0, 1, …`, so slot `k`'s
/// honest proposal is recognizable; `0` is the no-op.
///
/// # Panics
///
/// Panics if `faults.len()` is not a valid system size (odd, ≥ 3).
pub fn log_sim(slots: u64, window: u64, faults: &[Fault]) -> Simulation<LogM> {
    let n = faults.len();
    let cfg = SystemConfig::new(n, 0x109).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfee1);
    let mut actors: Vec<Box<dyn AnyActor<Msg = LogM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let commands: Vec<u64> = (0..slots).map(|k| 100 * (i as u64 + 1) + k).collect();
        let make = |key: SecretKey| {
            ReplicatedLog::new(cfg, id, key, pki.clone(), factory.clone(), slots, commands, 0)
                .with_window(window)
        };
        actors.push(match faults[i] {
            Fault::None => Box::new(make(key)),
            Fault::Idle => Box::new(IdleActor::new(id)),
            Fault::CrashAt(r) => Box::new(CrashActor::new(make(key), Round(r))),
            Fault::Chaos(seed) => Box::new(ChaosActor::new(id, seed, 4)),
            Fault::Lossy(seed) => Box::new(LossyLinkActor::new(
                make(key),
                Box::new(BernoulliDrop::new(seed, LOSSY_DROP_PROB)),
            )),
        });
    }
    apply_faults(SimBuilder::new(actors), faults).build()
}

/// Committed logs of the fault-free replicas of a [`log_sim`] run, in
/// process order. Only `Fault::None` replicas are inspected (the faulty
/// ones are wrapped or replaced and hold no comparable log).
pub fn log_entries(sim: &Simulation<LogM>, faults: &[Fault]) -> Vec<Vec<LogEntry<u64>>> {
    (0..sim.n())
        .filter(|&i| faults[i] == Fault::None)
        .map(|i| {
            let a: &LogProc = sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
            a.log().to_vec()
        })
        .collect()
}

/// A generous round budget for a [`log_sim`] run: every slot may need
/// its full worst-case schedule.
pub fn log_round_budget(n: usize, slots: u64) -> u64 {
    slots * (round_budget(n) + 10)
}

/// Asserts all decisions are equal and returns the common one.
///
/// # Panics
///
/// Panics on an empty slice or on disagreement — the point of the helper.
pub fn assert_agreement<T: PartialEq + std::fmt::Debug + Clone>(decisions: &[T]) -> T {
    assert!(!decisions.is_empty());
    for d in decisions {
        assert_eq!(d, &decisions[0], "agreement violated: {decisions:?}");
    }
    decisions[0].clone()
}

/// A generous per-run round budget: the full fixed schedule (phases, help
/// round, doubled-round fallback) with slack.
pub fn round_budget(n: usize) -> u64 {
    (70 * n as u64) + 200
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_builds_and_runs_each_protocol() {
        let faults = vec![Fault::None, Fault::Idle, Fault::None, Fault::None, Fault::None];
        let mut bb = bb_sim(0, 3, &faults);
        bb.run_until_done(round_budget(5)).unwrap();
        assert_eq!(assert_agreement(&bb_decisions(&bb, &faults)), Decision::Value(3));

        let mut wba = weak_ba_sim(&[2; 5], &faults);
        wba.run_until_done(round_budget(5)).unwrap();
        assert_eq!(assert_agreement(&weak_ba_decisions(&wba, &faults)), Decision::Value(2));

        let mut sba = strong_ba_sim(&[true; 5], &faults);
        sba.run_until_done(round_budget(5)).unwrap();
        assert!(assert_agreement(&strong_ba_decisions(&sba, &faults)));
    }

    #[test]
    #[should_panic(expected = "agreement violated")]
    fn assert_agreement_panics_on_split() {
        assert_agreement(&[1, 1, 2]);
    }

    #[test]
    fn lossy_fault_still_reaches_agreement() {
        // One process behind a drop-heavy network; the other 4 (n = 5,
        // t = 2) must still decide the sender's value.
        let mut faults = vec![Fault::None; 5];
        faults[2] = Fault::Lossy(0x10);
        assert!(faults[2].is_byzantine(), "lossy processes count toward f");
        let mut bb = bb_sim(0, 9, &faults);
        bb.run_until_done(round_budget(5)).unwrap();
        assert_eq!(assert_agreement(&bb_decisions(&bb, &faults)), Decision::Value(9));
    }
}
