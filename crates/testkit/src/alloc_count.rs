//! A counting global allocator for zero-allocation regression tests.
//!
//! The hot path of every backend — encode into the scratch encoder,
//! frame, read back, decode, verify — is written to reuse buffers in
//! steady state. This module makes that a *testable* property instead
//! of a code-review convention: install [`CountingAlloc`] as the
//! `#[global_allocator]` of a dedicated test binary and wrap the
//! steady-state section in [`count_allocations`]:
//!
//! ```ignore
//! use meba_testkit::alloc_count::{count_allocations, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! // ... warm up the buffers, then:
//! let (allocs, _) = count_allocations(|| hot_loop());
//! assert_eq!(allocs, 0);
//! ```
//!
//! The counter is process-global (it observes every thread), so
//! zero-allocation assertions belong in single-threaded test binaries —
//! `crates/testkit/tests/zero_alloc.rs` is the canonical user.
//!
//! This is the only module in the crate allowed to use `unsafe`: a
//! `GlobalAlloc` impl cannot be written without it, and both functions
//! only delegate to [`System`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` that delegates to [`System`] and, while a
/// [`count_allocations`] section is active, counts every allocation
/// (including `realloc` growth and zeroed allocations). Deallocations
/// are free and uncounted.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, so it can be a `static`).
    #[must_use]
    pub const fn new() -> Self {
        CountingAlloc
    }
}

fn tick() {
    if COUNTING.load(Ordering::Relaxed) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

#[allow(unsafe_code)]
// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter has no effect on the returned
// memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        tick();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        tick();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        tick();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// Runs `f` with allocation counting enabled and returns
/// `(allocations_during_f, f's result)`.
///
/// Counting is process-global: allocations from *any* thread during `f`
/// are included. Sections are not reentrant — nested calls reset the
/// shared counter.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), out)
}
