//! Service test harness: journal-backed [`ServiceReplica`] clusters for
//! overload and crash-restart testing on any backend.
//!
//! [`ServiceHarness`] mirrors [`crate::recovery::WeakBaRecoveryHarness`]
//! one layer up the stack: each replica gets a shared [`ServicePort`]
//! (the handle test drivers submit ops through, from the test thread or
//! concurrently with a running cluster) and a [`MemBuffer`] journal that
//! survives the actor being dropped. [`ServiceHarness::rebuilder`] replays that
//! journal through [`ServiceReplica::rebuild`], so crash-restart runs
//! exercise the real WAL discipline: journaled slot bindings re-bind
//! byte-identical values, and journaled commits are never re-acked.
//!
//! [`audit_proposals`] is the service-level analogue of the double-sign
//! detector: it scans a journal's `Proposed` records and fails if any
//! slot was bound to two different values.

use meba_core::SystemConfig;
use meba_crypto::{trusted_setup, Pki, ProcessId, SecretKey, WireCodec};
use meba_fallback::RecursiveBaFactory;
use meba_journal::{Journal, MemBuffer, Record};
use meba_net::{ActorRebuilder, RebuiltActor};
use meba_service::{Batch, ServiceConfig, ServicePort, ServiceReplica};
use meba_sim::{Actor, AnyActor};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The service replica the harness builds.
pub type ServiceProc = ServiceReplica<RecursiveBaFactory>;
/// Its wire-message type (identical to the bare log's).
pub type ServiceM = <ServiceProc as Actor>::Msg;

/// Builds journal-backed service replicas with shared admission ports,
/// for overload and crash-restart runs on any runtime.
///
/// # Examples
///
/// ```
/// use meba_service::{Op, ServiceConfig};
/// use meba_testkit::service::ServiceHarness;
/// use std::sync::Arc;
///
/// let h = Arc::new(ServiceHarness::new(3, ServiceConfig::default()));
/// h.port(0).submit(Op { client: 1, seq: 0, key: 9, value: 3 }).unwrap();
/// let actors = h.actors();
/// let _rebuilder = h.rebuilder();
/// assert_eq!(actors.len(), 3);
/// ```
pub struct ServiceHarness {
    cfg: SystemConfig,
    pki: Pki,
    keys: Vec<SecretKey>,
    service: ServiceConfig,
    ports: Vec<Arc<ServicePort>>,
    journals: Vec<MemBuffer>,
}

impl ServiceHarness {
    /// A service deployment of `n` journal-backed replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a valid system size (odd, ≥ 3).
    pub fn new(n: usize, service: ServiceConfig) -> Self {
        let cfg = SystemConfig::new(n, 0x5e7).unwrap();
        let (pki, keys) = trusted_setup(n, 0xf00d);
        let ports = (0..n).map(|_| ServicePort::new(service.queue_capacity)).collect();
        let journals = (0..n).map(|_| MemBuffer::new()).collect();
        ServiceHarness { cfg, pki, keys, service, ports, journals }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.keys.len()
    }

    /// The system configuration the replicas run under.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The service sizing the replicas run under.
    pub fn service_config(&self) -> ServiceConfig {
        self.service
    }

    /// Replica `i`'s admission port. Clone the `Arc` and submit from any
    /// thread — including while a cluster run holds the replica.
    pub fn port(&self, i: usize) -> Arc<ServicePort> {
        self.ports[i].clone()
    }

    /// Replica `i`'s journal buffer — the "disk" that survives its crash.
    pub fn journal_buffer(&self, i: usize) -> &MemBuffer {
        &self.journals[i]
    }

    /// The initial actor for replica `i`: a fresh service replica
    /// journaling into [`Self::journal_buffer`]`(i)`.
    pub fn actor(&self, i: usize) -> Box<dyn AnyActor<Msg = ServiceM>> {
        let key = self.keys[i].clone();
        let factory = RecursiveBaFactory::new(self.cfg, key.clone(), self.pki.clone());
        let journal = Journal::in_memory(self.journals[i].clone());
        Box::new(ServiceReplica::new(
            self.cfg,
            ProcessId(i as u32),
            key,
            self.pki.clone(),
            factory,
            self.service,
            self.ports[i].clone(),
            Some(journal),
        ))
    }

    /// Initial actors for all replicas, in id order.
    pub fn actors(&self) -> Vec<Box<dyn AnyActor<Msg = ServiceM>>> {
        (0..self.n()).map(|i| self.actor(i)).collect()
    }

    /// The rebuilder a cluster runtime calls when a crashed replica
    /// rejoins: [`ServiceReplica::rebuild`] replays the journal, so the
    /// restart re-binds byte-identical values to its journaled slots and
    /// never re-acks a journaled commit.
    ///
    /// # Panics
    ///
    /// The returned closure panics if journal replay fails (in-memory
    /// buffers cannot fail I/O, so this indicates harness misuse).
    pub fn rebuilder(self: &Arc<Self>) -> ActorRebuilder<ServiceM> {
        let h = self.clone();
        Arc::new(move |me: ProcessId| {
            let i = me.index();
            let key = h.keys[i].clone();
            let factory = RecursiveBaFactory::new(h.cfg, key.clone(), h.pki.clone());
            let journal = Journal::in_memory(h.journals[i].clone());
            let fsyncs = journal.stats().fsyncs;
            let (replica, replayed_records) = ServiceReplica::rebuild(
                h.cfg,
                me,
                key,
                h.pki.clone(),
                factory,
                h.service,
                h.ports[i].clone(),
                journal,
            )
            .expect("in-memory replay cannot fail");
            RebuiltActor {
                actor: Box::new(replica),
                resume_step: 0,
                replayed_records,
                journal_fsyncs: fsyncs,
            }
        })
    }
}

/// Downcasts an actor built by [`ServiceHarness`].
///
/// # Panics
///
/// Panics if the actor is not a [`ServiceProc`].
pub fn service_replica(actor: &dyn AnyActor<Msg = ServiceM>) -> &ServiceProc {
    actor.as_any().downcast_ref().expect("harness-built service replica")
}

/// Scans a service journal's `Proposed` records and asserts the WAL
/// discipline held: no slot bound to two different values (the
/// proposer-side equivocation a crash-amnesiac restart would produce).
/// Returns the per-slot binding map.
///
/// # Panics
///
/// Panics if any slot carries two different journaled values, or if a
/// record fails to decode (impossible for harness-written journals).
pub fn audit_proposals(buf: &MemBuffer) -> BTreeMap<u64, Batch> {
    let mut journal = Journal::in_memory(buf.clone());
    let report = journal.replay().expect("in-memory replay cannot fail");
    let mut bindings: BTreeMap<u64, Batch> = BTreeMap::new();
    for rec in report.records {
        if let Record::Proposed { slot, value } = rec {
            let batch = Batch::from_wire_bytes(&value).expect("journaled batch decodes");
            match bindings.get(&slot) {
                None => {
                    bindings.insert(slot, batch);
                }
                Some(first) => assert_eq!(
                    first.ops(),
                    batch.ops(),
                    "slot {slot} bound to two different values"
                ),
            }
        }
    }
    bindings
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_service::Op;
    use meba_sim::SimBuilder;

    #[test]
    fn harness_runs_and_commits_on_lockstep() {
        let service = ServiceConfig { total_slots: 3, ..ServiceConfig::default() };
        let h = Arc::new(ServiceHarness::new(3, service));
        h.port(0).submit(Op { client: 4, seq: 0, key: 2, value: 11 }).unwrap();
        let mut sim = SimBuilder::new(h.actors()).build();
        sim.run_until_done(crate::log_round_budget(3, 3)).unwrap();
        for i in 0..3 {
            let r = service_replica(sim.actor(ProcessId(i)));
            assert_eq!(r.kv().get(&2), Some(&11), "replica {i}");
            assert_eq!(r.committed_at(4, 0), r.committed_at(4, 0));
        }
        // Replica 0 journaled every one of its slot bindings before
        // spawning, and bound each slot exactly once.
        let bindings = audit_proposals(h.journal_buffer(0));
        assert!(!bindings.is_empty());
    }

    #[test]
    fn rebuilder_replays_commits_and_bindings() {
        let service = ServiceConfig { total_slots: 3, ..ServiceConfig::default() };
        let h = Arc::new(ServiceHarness::new(3, service));
        h.port(0).submit(Op { client: 9, seq: 1, key: 5, value: 77 }).unwrap();
        let mut sim = SimBuilder::new(h.actors()).build();
        sim.run_until_done(crate::log_round_budget(3, 3)).unwrap();
        // "Crash" replica 0 by dropping the sim; its journal survives.
        drop(sim);
        let rb = h.rebuilder()(ProcessId(0));
        assert!(rb.replayed_records > 0, "bindings and commits must replay");
        let r = service_replica(rb.actor.as_ref());
        assert_eq!(r.kv().get(&5), Some(&77), "journal replay rebuilt the KV state");
        assert!(r.committed_at(9, 1).is_some(), "dedup table survives the crash");
    }
}
