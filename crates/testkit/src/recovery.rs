//! Crash-recovery test harness: journal-backed weak BA clusters and a
//! double-sign detector.
//!
//! [`WeakBaRecoveryHarness`] builds weak BA actors wrapped in
//! [`Recoverable`] with shared in-memory journal buffers
//! ([`MemBuffer`] survives the actor being dropped, modelling a disk
//! surviving a crash) and hands runtimes an [`ActorRebuilder`] that
//! replays the journal on rejoin. [`DoubleSignDetector`] then audits the
//! run: it folds every journaled signature binding and every signature
//! observed on the wire into one `(signer, context) → digest` map and
//! reports any conflict — the equivocation a crash-amnesiac restart
//! would otherwise produce.

use crate::{WbaM, WbaProc};
use meba_core::signing::{DecideSig, HelpReqSig, VoteSig};
use meba_core::{
    AlwaysValid, Decision, LockstepAdapter, Recoverable, SubProtocol, SystemConfig, WeakBa,
};
use meba_crypto::{trusted_setup, Digest, Pki, ProcessId, SecretKey, SignContext, Signable};
use meba_fallback::RecursiveBaFactory;
use meba_journal::{Journal, MemBuffer, Record};
use meba_net::{ActorRebuilder, RebuiltActor};
use meba_sim::AnyActor;
use std::collections::HashMap;
use std::sync::Arc;

/// A [`WbaProc`] wrapped in the crash-recovery journal.
pub type RecWbaProc = Recoverable<WbaProc>;

/// Builds journal-backed weak BA actors over `u64` values with
/// [`AlwaysValid`], for crash-restart runs on any runtime.
///
/// Each process gets its own [`MemBuffer`] journal. [`Self::actor`]
/// builds the initial (empty-journal) actor; [`Self::rebuilder`] returns
/// the [`ActorRebuilder`] the cluster runtimes invoke at rejoin, which
/// replays that process's journal into a fresh state machine.
///
/// # Examples
///
/// ```
/// use meba_testkit::recovery::WeakBaRecoveryHarness;
/// use std::sync::Arc;
///
/// let h = Arc::new(WeakBaRecoveryHarness::new(&[7, 7, 7]));
/// let actors = h.actors();
/// let _rebuilder = h.rebuilder();
/// assert_eq!(actors.len(), 3);
/// ```
pub struct WeakBaRecoveryHarness {
    cfg: SystemConfig,
    pki: Pki,
    keys: Vec<SecretKey>,
    inputs: Vec<u64>,
    journals: Vec<MemBuffer>,
}

impl WeakBaRecoveryHarness {
    /// One journal-backed weak BA process per input.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a valid system size (odd, ≥ 3).
    pub fn new(inputs: &[u64]) -> Self {
        let n = inputs.len();
        let cfg = SystemConfig::new(n, 0x3a).unwrap();
        let (pki, keys) = trusted_setup(n, 0xfeed);
        let journals = (0..n).map(|_| MemBuffer::new()).collect();
        WeakBaRecoveryHarness { cfg, pki, keys, inputs: inputs.to_vec(), journals }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.inputs.len()
    }

    /// The system configuration the actors run under.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Process `i`'s journal buffer — the "disk" that survives its crash.
    pub fn journal_buffer(&self, i: usize) -> &MemBuffer {
        &self.journals[i]
    }

    fn proto(&self, i: usize) -> WbaProc {
        let key = self.keys[i].clone();
        let factory = RecursiveBaFactory::new(self.cfg, key.clone(), self.pki.clone());
        WeakBa::new(
            self.cfg,
            ProcessId(i as u32),
            key,
            self.pki.clone(),
            AlwaysValid,
            factory,
            self.inputs[i],
        )
    }

    /// The initial actor for process `i`: a fresh weak BA state machine
    /// journaling into [`Self::journal_buffer`]`(i)`.
    pub fn actor(&self, i: usize) -> Box<dyn AnyActor<Msg = WbaM>> {
        let journal = Journal::in_memory(self.journals[i].clone());
        let rec = Recoverable::new(self.proto(i), journal);
        Box::new(LockstepAdapter::new(ProcessId(i as u32), rec))
    }

    /// Initial actors for all processes, in id order.
    pub fn actors(&self) -> Vec<Box<dyn AnyActor<Msg = WbaM>>> {
        (0..self.n()).map(|i| self.actor(i)).collect()
    }

    /// The rebuilder a cluster runtime calls when a crashed process
    /// rejoins: replays the journal into a fresh state machine, so the
    /// restart cannot contradict anything the pre-crash incarnation
    /// signed.
    ///
    /// # Panics
    ///
    /// The returned closure panics if journal replay fails (in-memory
    /// buffers cannot fail I/O, so this indicates harness misuse).
    pub fn rebuilder(self: &Arc<Self>) -> ActorRebuilder<WbaM> {
        let h = self.clone();
        Arc::new(move |me: ProcessId| {
            let i = me.index();
            let journal = Journal::in_memory(h.journals[i].clone());
            let rec =
                Recoverable::recover(journal, || h.proto(i)).expect("in-memory replay cannot fail");
            let resume_step = rec.resume_step();
            let replayed_records = rec.replayed_records();
            let journal_fsyncs = rec.journal_stats().fsyncs;
            RebuiltActor {
                actor: Box::new(LockstepAdapter::new(me, rec)),
                resume_step,
                replayed_records,
                journal_fsyncs,
            }
        })
    }
}

/// Downcasts an actor built by [`WeakBaRecoveryHarness`] and returns its
/// decision, or `None` if it is a different actor type or undecided.
pub fn recoverable_decision(actor: &dyn AnyActor<Msg = WbaM>) -> Option<Decision<u64>> {
    let a: &LockstepAdapter<RecWbaProc> = actor.as_any().downcast_ref()?;
    a.inner().output()
}

/// One `(signer, equivocation context)` slot bound to two different
/// preimages — the safety violation crash recovery exists to prevent.
#[derive(Clone, Debug)]
pub struct DoubleSign {
    /// Who signed twice.
    pub signer: ProcessId,
    /// The context (domain + slot fields) that was double-bound.
    pub context: Vec<u8>,
    /// The first preimage digest bound to the slot.
    pub first: Digest,
    /// The conflicting digest.
    pub second: Digest,
}

/// Audits a run for equivocation: every signature — journaled by the
/// signer or observed on the wire by anyone — is folded into one
/// `(signer, context) → preimage digest` map. Two different digests in
/// one slot is a double-sign.
///
/// Re-signing the *same* preimage (the deterministic signer's behaviour
/// on replay) is not a conflict; only a differing digest is.
#[derive(Debug, Default)]
pub struct DoubleSignDetector {
    bindings: HashMap<(ProcessId, Vec<u8>), Digest>,
    conflicts: Vec<DoubleSign>,
    observed: u64,
}

impl DoubleSignDetector {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one signature binding.
    pub fn observe(&mut self, signer: ProcessId, context: Vec<u8>, digest: Digest) {
        self.observed += 1;
        match self.bindings.get(&(signer, context.clone())) {
            None => {
                self.bindings.insert((signer, context), digest);
            }
            Some(first) if *first == digest => {}
            Some(first) => {
                self.conflicts.push(DoubleSign { signer, context, first: *first, second: digest });
            }
        }
    }

    /// Folds in every `Signed` record of `signer`'s journal. Returns the
    /// number of signature records scanned.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O errors (impossible for [`MemBuffer`]).
    pub fn scan_journal(&mut self, signer: ProcessId, buf: &MemBuffer) -> std::io::Result<u64> {
        let mut journal = Journal::in_memory(buf.clone());
        let report = journal.replay()?;
        let mut scanned = 0;
        for rec in report.records {
            if let Record::Signed { context, digest } = rec {
                self.observe(signer, context, digest);
                scanned += 1;
            }
        }
        Ok(scanned)
    }

    /// Folds in a weak BA message observed on the wire from `from`,
    /// reconstructing the signing payload the sender must have produced
    /// (votes, decide shares, and help requests carry individual
    /// signatures; certificate messages aggregate shares already audited
    /// at their source).
    pub fn observe_weak_ba_msg(&mut self, session: u64, from: ProcessId, msg: &WbaM) {
        match msg {
            meba_core::WeakBaMsg::Vote { phase, value, .. } => {
                let payload = VoteSig { session, value, level: *phase };
                self.observe(from, payload.context_bytes(), Digest::of(&payload.signing_bytes()));
            }
            meba_core::WeakBaMsg::Decide { phase, value, .. } => {
                let payload = DecideSig { session, value, phase: *phase };
                self.observe(from, payload.context_bytes(), Digest::of(&payload.signing_bytes()));
            }
            meba_core::WeakBaMsg::HelpReq { .. } => {
                let payload = HelpReqSig { session };
                self.observe(from, payload.context_bytes(), Digest::of(&payload.signing_bytes()));
            }
            _ => {}
        }
    }

    /// Bindings recorded so far (including idempotent repeats).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The conflicts found.
    pub fn conflicts(&self) -> &[DoubleSign] {
        &self.conflicts
    }

    /// Asserts no double-sign was recorded.
    ///
    /// # Panics
    ///
    /// Panics with the conflict list if any slot was double-bound.
    pub fn assert_clean(&self) {
        assert!(self.conflicts.is_empty(), "double-sign detected: {:?}", self.conflicts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_flags_conflicting_digest_only() {
        let mut det = DoubleSignDetector::new();
        let ctx = b"meba/weakba/vote:slot".to_vec();
        det.observe(ProcessId(1), ctx.clone(), Digest::of(b"a"));
        det.observe(ProcessId(1), ctx.clone(), Digest::of(b"a")); // idempotent
        assert!(det.conflicts().is_empty());
        det.observe(ProcessId(2), ctx.clone(), Digest::of(b"b")); // other signer
        assert!(det.conflicts().is_empty());
        det.observe(ProcessId(1), ctx, Digest::of(b"b")); // conflict
        assert_eq!(det.conflicts().len(), 1);
        assert_eq!(det.observed(), 4);
    }

    #[test]
    fn detector_reconstructs_wire_payloads() {
        let mut det = DoubleSignDetector::new();
        let (_pki, keys) = trusted_setup(3, 7);
        let sig = keys[0].sign(b"x");
        let vote = |v: u64| meba_core::WeakBaMsg::Vote { phase: 2, value: v, sig: sig.clone() };
        det.observe_weak_ba_msg(0x3a, ProcessId(0), &vote(5));
        det.observe_weak_ba_msg(0x3a, ProcessId(0), &vote(5));
        assert!(det.conflicts().is_empty());
        det.observe_weak_ba_msg(0x3a, ProcessId(0), &vote(6));
        assert_eq!(det.conflicts().len(), 1, "same (session, level), different value");
    }

    #[test]
    fn harness_journal_survives_actor_drop_and_rebuild() {
        use meba_sim::{Round, RoundCtx};
        let h = Arc::new(WeakBaRecoveryHarness::new(&[4, 4, 4]));
        let mut a0 = h.actor(0);
        for r in 0..3 {
            let inbox = Vec::new();
            let mut ctx = RoundCtx::new(Round(r), ProcessId(0), 3, &inbox);
            a0.on_round(&mut ctx);
            drop(ctx.take_outbox());
        }
        drop(a0); // crash: volatile state gone, journal buffer survives
        assert!(!h.journal_buffer(0).is_empty(), "steps were journaled");
        let rb = h.rebuilder()(ProcessId(0));
        assert_eq!(rb.resume_step, 3);
        assert!(rb.replayed_records > 0);
        let mut det = DoubleSignDetector::new();
        det.scan_journal(ProcessId(0), h.journal_buffer(0)).unwrap();
        det.assert_clean();
    }
}
